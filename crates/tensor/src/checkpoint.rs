//! Parameter checkpointing: serialize and restore model state.
//!
//! Long MoE pretraining runs checkpoint constantly; this module provides a
//! simple self-describing binary format for everything that exposes a
//! parameter visitor (layers, whole language models, distributed layers).
//!
//! Format: `b"SMOE"` magic, a `u32` version, a `u32` parameter count, then
//! per parameter: name length + UTF-8 name, rank + dims (`u32` each), and
//! the `f32` little-endian values; the whole buffer is sealed by a
//! trailing little-endian CRC32 (IEEE) of everything before it. Gradients
//! and optimizer state are not saved — a checkpoint restores the *model*,
//! not the training step.
//!
//! The CRC exists because checkpoints are the recovery path of
//! fault-tolerant training (see `schemoe-models`' `ft` module): restoring
//! silently-damaged parameters would be worse than crashing, so [`load`]
//! refuses a payload whose checksum disagrees with its content with
//! [`CheckpointError::Corrupt`].

use std::fmt;

use crate::nn::Param;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"SMOE";
const VERSION: u32 = 2;

/// A parameter visitor: calls the given closure once per [`Param`].
pub type ParamVisitor<'a> = dyn FnMut(&mut dyn FnMut(&mut Param)) + 'a;

/// Errors from decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The payload does not start with the `SMOE` magic or has a bad
    /// version.
    BadHeader,
    /// The payload ended before the declared content.
    Truncated,
    /// The checkpoint's parameters do not match the model's.
    Mismatch {
        /// What went wrong, for diagnostics.
        detail: String,
    },
    /// The trailing CRC32 disagrees with the payload: bytes were damaged
    /// at rest or in transit.
    Corrupt {
        /// The checksum stored in the payload's last four bytes.
        stored: u32,
        /// The checksum recomputed over the content.
        computed: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "not a SMOE v{VERSION} checkpoint"),
            CheckpointError::Truncated => write!(f, "checkpoint payload truncated"),
            CheckpointError::Mismatch { detail } => {
                write!(f, "checkpoint does not match the model: {detail}")
            }
            CheckpointError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "checkpoint corrupt: stored crc32 {stored:#010x}, content hashes to {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes every parameter yielded by `visit` into a checkpoint buffer.
pub fn save(visit: &mut ParamVisitor<'_>) -> Vec<u8> {
    let mut entries: Vec<(String, Vec<usize>, Vec<f32>)> = Vec::new();
    visit(&mut |p: &mut Param| {
        entries.push((
            p.name.clone(),
            p.value.dims().to_vec(),
            p.value.data().to_vec(),
        ));
    });
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, dims, data) in &entries {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &d in dims {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// One parsed checkpoint entry: `(name, dims, data)`.
type Entry = (String, Vec<usize>, Vec<f32>);

/// Parses a checkpoint's entries and verifies its CRC seal, without
/// touching any model. The shared front half of [`load`] and [`verify`].
fn parse(payload: &[u8]) -> Result<Vec<Entry>, CheckpointError> {
    if payload.len() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let (body, seal) = payload.split_at(payload.len() - 4);
    let mut cursor = Cursor { buf: body, pos: 0 };
    if cursor.take(4)? != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    if cursor.u32()? != VERSION {
        return Err(CheckpointError::BadHeader);
    }
    let count = cursor.u32()? as usize;
    let mut entries: Vec<Entry> = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = cursor.u32()? as usize;
        let name = String::from_utf8(cursor.take(name_len)?.to_vec())
            .map_err(|_| CheckpointError::BadHeader)?;
        let rank = cursor.u32()? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(cursor.u32()? as usize);
        }
        let numel: usize = dims.iter().product();
        let raw = cursor.take(numel * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        entries.push((name, dims, data));
    }

    // Verify the seal before any parameter is touched: a structurally
    // parsable but bit-damaged payload must not reach the model. (A
    // truncated payload usually fails the structural parse above first,
    // which keeps `Truncated` the answer for short reads.)
    let stored = u32::from_le_bytes([seal[0], seal[1], seal[2], seal[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(CheckpointError::Corrupt { stored, computed });
    }
    Ok(entries)
}

/// Checks that `payload` is a structurally valid, CRC-sealed checkpoint
/// without applying it to anything.
///
/// The rejoin protocol's parse-then-verify-then-apply discipline hangs on
/// this: a rank receiving state over the fabric verifies the assembled
/// payload *before* its first weight is overwritten, so a torn or damaged
/// transfer rolls back to exactly the pre-transfer state.
pub fn verify(payload: &[u8]) -> Result<(), CheckpointError> {
    parse(payload).map(|_| ())
}

/// Restores a checkpoint into the parameters yielded by `visit`.
///
/// Parameters must appear in the same order with the same names and shapes
/// as at save time (visitor order is deterministic for every model in this
/// workspace). Gradients are zeroed on restore.
pub fn load(payload: &[u8], visit: &mut ParamVisitor<'_>) -> Result<(), CheckpointError> {
    let entries = parse(payload)?;
    let mut idx = 0usize;
    let mut error: Option<CheckpointError> = None;
    visit(&mut |p: &mut Param| {
        if error.is_some() {
            return;
        }
        let Some((name, dims, data)) = entries.get(idx) else {
            error = Some(CheckpointError::Mismatch {
                detail: format!("model has more parameters than the checkpoint ({idx}+)"),
            });
            return;
        };
        if *name != p.name || dims.as_slice() != p.value.dims() {
            error = Some(CheckpointError::Mismatch {
                detail: format!(
                    "parameter {idx}: checkpoint has {name} {dims:?}, model has {} {:?}",
                    p.name,
                    p.value.dims()
                ),
            });
            return;
        }
        p.value = Tensor::from_vec(data.clone(), dims).expect("validated shape");
        p.zero_grad();
        idx += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }
    if idx != entries.len() {
        return Err(CheckpointError::Mismatch {
            detail: format!(
                "checkpoint has {} parameters, model consumed {idx}",
                entries.len()
            ),
        });
    }
    Ok(())
}

/// CRC32 (IEEE 802.3, the zlib/PNG polynomial) over `data`.
///
/// `schemoe-cluster` carries its own copy for wire frames; the two crates
/// are independent leaves of the workspace, so the ~20 lines are
/// duplicated rather than creating a dependency between the tensor
/// library and the communication fabric.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Linear, Module};
    use crate::rng::{self, seeded};

    #[test]
    fn round_trip_restores_exact_values() {
        let mut model = Linear::new(4, 6, &mut seeded(1));
        let x = rng::uniform(&[3, 4], 1.0, &mut seeded(2));
        let before = model.forward(&x);
        let ckpt = save(&mut |f| model.visit_params(f));

        // A freshly initialized model differs...
        let mut restored = Linear::new(4, 6, &mut seeded(99));
        assert!(restored.forward(&x).max_abs_diff(&before).unwrap() > 1e-3);
        // ...until the checkpoint lands.
        load(&ckpt, &mut |f| restored.visit_params(f)).unwrap();
        assert_eq!(restored.forward(&x).data(), before.data());
    }

    #[test]
    fn restore_zeroes_gradients() {
        let mut model = Linear::new(3, 3, &mut seeded(3));
        let ckpt = save(&mut |f| model.visit_params(f));
        let x = rng::uniform(&[2, 3], 1.0, &mut seeded(4));
        let y = model.forward(&x);
        model.backward(&y);
        load(&ckpt, &mut |f| model.visit_params(f)).unwrap();
        model.visit_params(&mut |p| assert!(p.grad.data().iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut a = Linear::new(4, 6, &mut seeded(5));
        let ckpt = save(&mut |f| a.visit_params(f));
        let mut b = Linear::new(4, 7, &mut seeded(5));
        let err = load(&ckpt, &mut |f| b.visit_params(f)).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
    }

    #[test]
    fn garbage_and_truncation_are_rejected() {
        let mut m = Linear::new(2, 2, &mut seeded(6));
        // Too short to even hold the magic plus the CRC seal.
        assert_eq!(
            load(b"nope", &mut |f| m.visit_params(f)).unwrap_err(),
            CheckpointError::Truncated
        );
        // Long enough, but not our magic.
        assert_eq!(
            load(b"nope-nope-nope", &mut |f| m.visit_params(f)).unwrap_err(),
            CheckpointError::BadHeader
        );
        let mut ckpt = save(&mut |f| m.visit_params(f));
        ckpt.truncate(ckpt.len() - 3);
        assert_eq!(
            load(&ckpt, &mut |f| m.visit_params(f)).unwrap_err(),
            CheckpointError::Truncated
        );
    }

    #[test]
    fn crc32_matches_the_reference_check_value() {
        // The canonical IEEE CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn a_single_bit_flip_anywhere_is_detected() {
        let mut model = Linear::new(3, 2, &mut seeded(10));
        let clean = save(&mut |f| model.visit_params(f));
        // Flip one bit in every byte position in turn: header, names,
        // dims, f32 data, and the seal itself must all be covered.
        for pos in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[pos] ^= 0x10;
            let err = load(&damaged, &mut |f| model.visit_params(f)).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Corrupt { .. }
                        | CheckpointError::BadHeader
                        | CheckpointError::Truncated
                ),
                "flip at {pos} slipped through as {err:?}"
            );
        }
        // And the clean payload still restores.
        load(&clean, &mut |f| model.visit_params(f)).unwrap();
    }

    #[test]
    fn bit_flip_in_parameter_data_round_trips_to_corrupt() {
        let mut model = Linear::new(4, 4, &mut seeded(11));
        let clean = save(&mut |f| model.visit_params(f));
        let before: Vec<f32> = {
            let mut v = Vec::new();
            model.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        // Damage an f32 in the middle of the data region (past the header
        // and name, before the seal).
        let mut damaged = clean.clone();
        let mid = clean.len() - 12;
        damaged[mid] ^= 0x01;
        let err = load(&damaged, &mut |f| model.visit_params(f)).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt { .. }),
            "got {err:?}"
        );
        // The failed load must not have modified the model.
        let after: Vec<f32> = {
            let mut v = Vec::new();
            model.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        assert_eq!(before, after, "a corrupt load must leave the model intact");
    }

    #[test]
    fn verify_checks_the_seal_without_touching_a_model() {
        let mut model = Linear::new(3, 3, &mut seeded(12));
        let clean = save(&mut |f| model.visit_params(f));
        verify(&clean).unwrap();
        for pos in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[pos] ^= 0x40;
            assert!(verify(&damaged).is_err(), "flip at {pos} slipped through");
        }
        let mut torn = clean.clone();
        torn.truncate(clean.len() / 2);
        assert!(verify(&torn).is_err());
    }

    #[test]
    fn parameter_count_mismatch_is_rejected() {
        let mut one = Linear::new(2, 2, &mut seeded(7));
        let ckpt = save(&mut |f| one.visit_params(f));
        // A model with extra parameters cannot consume it.
        let mut two_a = Linear::new(2, 2, &mut seeded(7));
        let mut two_b = Linear::new(2, 2, &mut seeded(8));
        let err = load(&ckpt, &mut |f| {
            two_a.visit_params(f);
            two_b.visit_params(f);
        })
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
    }
}
