//! The dense row-major `f32` tensor type.

use std::fmt;

use crate::shape::Shape;

/// Errors produced by tensor construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the requested shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Shape,
        /// Shape of the right-hand operand.
        rhs: Shape,
    },
    /// The operation requires a different rank than the operand has.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Shape,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer of {actual} elements cannot fill shape of {expected}"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs} and {rhs}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got {actual}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is deliberately simple: contiguous storage, eager operations, no
/// views or broadcasting beyond what the MoE stack needs. This keeps the
/// backward passes in [`crate::nn`] easy to audit against the math.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a one-filled tensor of the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![1.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor holding `0.0, 1.0, ..., (n-1) as f32`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            data: (0..n).map(|i| i as f32).collect(),
            shape: Shape::new(&[n]),
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// Returns the tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Returns the flat row-major data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the flat row-major data buffer mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    pub fn get(&self, idx: &[usize]) -> Result<f32, TensorError> {
        self.shape
            .offset(idx)
            .map(|o| self.data[o])
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: idx.to_vec(),
                shape: self.shape.clone(),
            })
    }

    /// Writes the element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) -> Result<(), TensorError> {
        match self.shape.offset(idx) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: idx.to_vec(),
                shape: self.shape.clone(),
            }),
        }
    }

    /// Returns a copy with the same data but a new shape.
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// Reinterprets the tensor in place with a new shape.
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Returns row `r` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Returns row `r` of a rank-2 tensor as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Returns `true` if every element is finite (no NaN or infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns the maximum absolute difference to `other`, or `None` when
    /// shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={}, data[..{}]={:?}{})",
            self.shape,
            preview.len(),
            preview,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).is_ok());
        let err = Tensor::from_vec(vec![1.0, 2.0], &[3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn eye_is_identity() {
        let e = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_eq!(e.get(&[i, j]).unwrap(), expected);
            }
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
        assert!(t.set(&[2, 0], 1.0).is_err());
        assert!(t.get(&[0, 3]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]).unwrap();
        assert_eq!(r.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn rows_are_contiguous() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert_eq!(a.max_abs_diff(&b), None);
        let c = Tensor::full(&[2, 2], 0.5);
        assert_eq!(a.max_abs_diff(&c), Some(0.5));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[3]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }
}
