//! Optimizers: SGD with momentum and Adam.

use crate::nn::{Module, Param};
use crate::tensor::Tensor;

/// A callback that walks every [`Param`] of a model, used by
/// [`Sgd::step_params`] / [`Adam::step_params`] for models that are not
/// themselves [`Module`]s.
pub type ParamWalker<'a> = dyn FnMut(&mut dyn FnMut(&mut Param)) + 'a;

/// Stochastic gradient descent with optional momentum and gradient clipping.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    clip: Option<f32>,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            clip: None,
            velocity: Vec::new(),
        }
    }

    /// Adds heavy-ball momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Clips each parameter's gradient to the given global-norm bound.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        self.clip = Some(max_norm);
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update to every parameter of `module`, then zeroes grads.
    pub fn step<M: Module + ?Sized>(&mut self, module: &mut M) {
        self.step_params(&mut |f| module.visit_params(f));
    }

    /// Materializes one velocity slot per parameter yielded by `visit`
    /// without applying any update, so the optimizer's state can be
    /// visited (or restored from a peer's) before the first step.
    pub fn ensure_state(&mut self, visit: &mut ParamWalker<'_>) {
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        visit(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.dims()));
            }
            idx += 1;
        });
    }

    /// Walks the optimizer's per-parameter state — the momentum velocity
    /// tensors — as pseudo-parameters named `opt.v{i}`, in step order.
    ///
    /// This is how fault-tolerant training ships optimizer state alongside
    /// model weights during a rank rejoin: the velocities ride the same
    /// sealed checkpoint format as real parameters. Mutations made by the
    /// callback to `value` are written back to the velocity.
    pub fn visit_state(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for (i, v) in self.velocity.iter_mut().enumerate() {
            let mut p = Param::new(format!("opt.v{i}"), v.clone());
            f(&mut p);
            *v = p.value;
        }
    }

    /// Like [`Self::step`], but over an arbitrary parameter visitor — for
    /// models (whole networks, embeddings) that are not themselves
    /// [`Module`]s.
    pub fn step_params(&mut self, visit: &mut ParamWalker<'_>) {
        let lr = self.lr;
        let momentum = self.momentum;
        let clip = self.clip;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        visit(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.dims()));
            }
            let scale = clip_scale(&p.grad, clip);
            let vel = &mut velocity[idx];
            for ((v, g), w) in vel
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(p.value.data_mut().iter_mut())
            {
                *v = momentum * *v + g * scale;
                *w -= lr * *v;
            }
            p.zero_grad();
            idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip: Option<f32>,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Clips each parameter's gradient to the given global-norm bound.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        self.clip = Some(max_norm);
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update to every parameter of `module`, then zeroes grads.
    pub fn step<M: Module + ?Sized>(&mut self, module: &mut M) {
        self.step_params(&mut |f| module.visit_params(f));
    }

    /// Like [`Self::step`], but over an arbitrary parameter visitor — for
    /// models (whole networks, embeddings) that are not themselves
    /// [`Module`]s.
    pub fn step_params(&mut self, visit: &mut ParamWalker<'_>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps, clip) = (self.lr, self.beta1, self.beta2, self.eps, self.clip);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        visit(&mut |p: &mut Param| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.dims()));
                vs.push(Tensor::zeros(p.value.dims()));
            }
            let scale = clip_scale(&p.grad, clip);
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for (((mi, vi), g), w) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.grad.data().iter())
                .zip(p.value.data_mut().iter_mut())
            {
                let g = g * scale;
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.zero_grad();
            idx += 1;
        });
    }
}

/// Returns the multiplier that rescales a gradient to satisfy a norm bound.
fn clip_scale(grad: &Tensor, clip: Option<f32>) -> f32 {
    match clip {
        Some(max_norm) => {
            let norm = grad.norm();
            if norm > max_norm {
                max_norm / norm
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Linear, Module, SoftmaxCrossEntropy};
    use crate::rng;

    /// Both optimizers must drive a tiny classification problem to low loss.
    fn train_and_measure(mut stepper: impl FnMut(&mut Linear)) -> f32 {
        let mut rng = rng::seeded(41);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = rng::uniform(&[12, 4], 1.0, &mut rng);
        // Labels derived from a fixed rule so the problem is learnable.
        let targets: Vec<usize> = (0..12)
            .map(|i| (x.row(i)[0] > 0.0) as usize + (x.row(i)[1] > 0.0) as usize)
            .collect();
        let mut loss = SoftmaxCrossEntropy::new();
        let mut last = f32::MAX;
        for _ in 0..300 {
            let y = lin.forward(&x);
            last = loss.forward(&y, &targets);
            let dy = loss.backward();
            lin.backward(&dy);
            stepper(&mut lin);
        }
        last
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt = Sgd::new(0.5).with_momentum(0.9);
        let final_loss = train_and_measure(|m| opt.step(m));
        assert!(final_loss < 0.1, "final loss {final_loss}");
    }

    #[test]
    fn adam_reduces_loss() {
        let mut opt = Adam::new(0.1);
        let final_loss = train_and_measure(|m| opt.step(m));
        assert!(final_loss < 0.1, "final loss {final_loss}");
    }

    #[test]
    fn grad_clip_bounds_update_size() {
        let mut rng = rng::seeded(42);
        let mut lin = Linear::new(2, 2, &mut rng);
        let before = lin.weight().value.clone();
        // Plant a huge gradient.
        lin.visit_params(&mut |p| {
            for g in p.grad.data_mut() {
                *g = 1e6;
            }
        });
        let mut opt = Sgd::new(1.0).with_grad_clip(1.0);
        opt.step(&mut lin);
        let after = &lin.weight().value;
        let delta = after.max_abs_diff(&before).unwrap();
        assert!(delta <= 1.0 + 1e-5, "update magnitude {delta} exceeds clip");
    }

    #[test]
    fn sgd_state_transfer_reproduces_the_donor_trajectory() {
        // The rejoin scenario: a fresh optimizer that receives a stepped
        // donor's velocity through visit_state continues bit-identically.
        let mut rng = rng::seeded(44);
        let mut donor_model = Linear::new(3, 3, &mut rng);
        let mut donor = Sgd::new(0.1).with_momentum(0.9);
        let x = rng::uniform(&[4, 3], 1.0, &mut rng);
        for _ in 0..3 {
            let y = donor_model.forward(&x);
            donor_model.backward(&y);
            donor.step(&mut donor_model);
        }

        // Ship weights and velocity, as the rejoin protocol does.
        let mut weights = Vec::new();
        donor_model.visit_params(&mut |p| weights.push(p.value.clone()));
        let mut velocity = Vec::new();
        donor.visit_state(&mut |p| {
            assert!(p.name.starts_with("opt.v"), "state name {}", p.name);
            velocity.push(p.value.clone());
        });
        assert!(!velocity.is_empty());

        let mut rejoiner_model = Linear::new(3, 3, &mut rng::seeded(45));
        let mut wi = 0;
        rejoiner_model.visit_params(&mut |p| {
            p.value = weights[wi].clone();
            wi += 1;
        });
        let mut rejoiner = Sgd::new(0.1).with_momentum(0.9);
        // Without ensure_state the fresh optimizer has no slots to fill.
        rejoiner.ensure_state(&mut |f| rejoiner_model.visit_params(f));
        let mut vi = 0;
        rejoiner.visit_state(&mut |p| {
            p.value = velocity[vi].clone();
            vi += 1;
        });
        assert_eq!(vi, velocity.len());

        // One more step on each side must agree exactly.
        for (model, opt) in [
            (&mut donor_model, &mut donor),
            (&mut rejoiner_model, &mut rejoiner),
        ] {
            let y = model.forward(&x);
            model.backward(&y);
            opt.step(model);
        }
        let mut donor_after = Vec::new();
        donor_model.visit_params(&mut |p| donor_after.push(p.value.data().to_vec()));
        let mut rejoiner_after = Vec::new();
        rejoiner_model.visit_params(&mut |p| rejoiner_after.push(p.value.data().to_vec()));
        assert_eq!(donor_after, rejoiner_after);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = rng::seeded(43);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.forward(&Tensor::ones(&[1, 2]));
        lin.backward(&Tensor::ones(&[1, 2]));
        let mut opt = Adam::new(0.01);
        opt.step(&mut lin);
        lin.visit_params(&mut |p| assert!(p.grad.data().iter().all(|&g| g == 0.0)));
    }
}
