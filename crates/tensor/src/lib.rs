//! Dense `f32` tensor math and hand-written neural-network layers.
//!
//! This crate is the numerical substrate of ScheMoE-RS. It provides:
//!
//! * [`Tensor`] — a dense, row-major, `f32` n-dimensional array with the
//!   operations MoE training needs (matmul, softmax, layer norm, GELU, ...).
//! * [`nn`] — neural-network modules (linear, embedding, layer norm,
//!   multi-head attention, feed-forward) with *hand-written* backward passes.
//!   There is no autograd tape; every module caches what its backward needs
//!   and the composition order is explicit, which mirrors how the ScheMoE
//!   paper decomposes an MoE layer into schedulable tasks.
//! * [`optim`] — SGD (with momentum) and Adam optimizers over [`nn::Param`].
//! * [`grad_check`] — finite-difference gradient checking used by the test
//!   suite to validate every backward implementation.
//!
//! # Examples
//!
//! ```
//! use schemoe_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

pub mod checkpoint;
pub mod grad_check;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod rng;
pub mod schedule_lr;
pub mod shape;
pub mod snapshot;
pub mod tensor;

pub use shape::Shape;
pub use tensor::{Tensor, TensorError};
