//! Durable snapshot formats: the generation-numbered, CRC-sealed shard
//! each rank persists and the manifest that commits a generation.
//!
//! This module is the *byte layout* only — pure functions from structs
//! to sealed buffers and back, with no filesystem dependency — so the
//! same codecs serve the training loop's snapshot writer, the restore
//! path, and the proptest suite that attacks them with truncation and
//! bitrot. Durability (write-tmp → fsync → rename) lives in
//! `schemoe-cluster::storage`; the commit *rule* lives in the training
//! loop: a manifest for generation `g` is written only after every
//! shard of `g` has acked durable, so a reader that finds a manifest
//! may trust the generation is complete, and an interrupted generation
//! is never loadable because its manifest never existed.
//!
//! A shard carries everything one rank needs to resume: the replicated
//! parameter payload (identical across ranks at a committed step), the
//! rank's own expert payload, and the buddy-replica payloads it hosts
//! for its wards. The hosted replicas are what make a *damaged* shard
//! survivable: if rank `r`'s shard is missing or corrupt, any valid
//! shard supplies the replicated half and the shard of `r`'s buddy
//! supplies `r`'s expert — FoMoE's partial-replication insight applied
//! to disk.
//!
//! Both codecs follow the parse-verify discipline of
//! [`checkpoint`](crate::checkpoint): structural parse first (so short
//! reads surface as [`CheckpointError::Truncated`]), then the trailing
//! CRC32 seal is checked before anything is returned — a decoded value
//! is bit-exact or it does not exist.

use crate::checkpoint::{crc32, CheckpointError};

const SHARD_MAGIC: &[u8; 4] = b"SMSH";
const MANIFEST_MAGIC: &[u8; 4] = b"SMMF";
const VERSION: u32 = 1;

/// Ceiling on any embedded payload or name length, shared with the wire
/// transfer path's paranoia: a damaged length field must not provoke a
/// huge allocation before the CRC check gets its say.
const MAX_SECTION: u32 = 1 << 28;

/// One hosted buddy replica embedded in a shard: the latest verified
/// expert payload of ward `ward`, as of replication quantum `quantum`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReplica {
    /// The rank whose expert this replica restores.
    pub ward: u32,
    /// The replication quantum the payload is current as of.
    pub quantum: u64,
    /// A sealed checkpoint payload of the ward's expert state.
    pub payload: Vec<u8>,
}

/// One rank's durable snapshot shard for one generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Monotone snapshot generation this shard belongs to.
    pub generation: u64,
    /// The rank that wrote the shard.
    pub rank: u32,
    /// World size at snapshot time.
    pub world: u32,
    /// The committed training step the state is exact at.
    pub step: u64,
    /// The job seed, so a resume refuses state from a different run.
    pub seed: u64,
    /// Sealed checkpoint payload of the replicated parameters
    /// (embedding, gate, head + optimizer velocity) — identical across
    /// ranks at a committed step.
    pub replicated: Vec<u8>,
    /// Sealed checkpoint payload of this rank's own expert state
    /// (+ optimizer velocity).
    pub expert: Vec<u8>,
    /// Buddy replicas this rank hosts, one per ward.
    pub replicas: Vec<ShardReplica>,
}

impl Shard {
    /// Serializes the shard into a CRC-sealed buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SHARD_MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.world.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.replicated.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.replicated);
        out.extend_from_slice(&(self.expert.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.expert);
        out.extend_from_slice(&(self.replicas.len() as u32).to_le_bytes());
        for r in &self.replicas {
            out.extend_from_slice(&r.ward.to_le_bytes());
            out.extend_from_slice(&r.quantum.to_le_bytes());
            out.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&r.payload);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and verifies a shard buffer. Returns the shard only if it
    /// is structurally complete *and* its CRC seal matches.
    pub fn decode(payload: &[u8]) -> Result<Shard, CheckpointError> {
        let (body, mut cur) = open_sealed(payload, SHARD_MAGIC)?;
        let generation = cur.u64()?;
        let rank = cur.u32()?;
        let world = cur.u32()?;
        let step = cur.u64()?;
        let seed = cur.u64()?;
        let replicated = cur.section()?;
        let expert = cur.section()?;
        let nreplicas = cur.u32()?;
        if nreplicas > MAX_SECTION {
            return Err(CheckpointError::BadHeader);
        }
        let mut replicas = Vec::with_capacity(nreplicas.min(1024) as usize);
        for _ in 0..nreplicas {
            let ward = cur.u32()?;
            let quantum = cur.u64()?;
            let payload = cur.section()?;
            replicas.push(ShardReplica {
                ward,
                quantum,
                payload,
            });
        }
        check_seal(body, payload)?;
        if rank >= world {
            return Err(CheckpointError::Mismatch {
                detail: format!("shard rank {rank} out of range for world {world}"),
            });
        }
        Ok(Shard {
            generation,
            rank,
            world,
            step,
            seed,
            replicated,
            expert,
            replicas,
        })
    }
}

/// One shard's entry in a manifest: enough to locate the file and to
/// verify, before any state is touched, that what is on disk is the
/// exact buffer whose durable ack the coordinator collected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The rank whose shard this is.
    pub rank: u32,
    /// Shard file name, relative to the snapshot directory.
    pub name: String,
    /// Exact encoded length of the shard file.
    pub len: u32,
    /// CRC32 of the full shard file.
    pub crc: u32,
}

/// The commit record of one snapshot generation. Its *existence* is the
/// commit: the coordinator writes it atomically only after every listed
/// shard acked durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The generation this manifest commits.
    pub generation: u64,
    /// World size at snapshot time.
    pub world: u32,
    /// The committed training step the generation restores to.
    pub step: u64,
    /// The job seed; a resume refuses a manifest from a different run.
    pub seed: u64,
    /// One entry per participating rank.
    pub shards: Vec<ManifestEntry>,
    /// Encoded expert placement active at snapshot time (an opaque
    /// `PLMT` frame owned by the MoE layer), or empty for the static
    /// layout. Written as an optional trailing section: decoders accept
    /// manifests without it (older files read as static), and older
    /// decoders skip it unread — the seal covers it either way.
    pub placement: Vec<u8>,
}

impl Manifest {
    /// Serializes the manifest into a CRC-sealed buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.world.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for s in &self.shards {
            out.extend_from_slice(&s.rank.to_le_bytes());
            out.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
            out.extend_from_slice(&s.crc.to_le_bytes());
        }
        out.extend_from_slice(&(self.placement.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.placement);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and verifies a manifest buffer.
    pub fn decode(payload: &[u8]) -> Result<Manifest, CheckpointError> {
        let (body, mut cur) = open_sealed(payload, MANIFEST_MAGIC)?;
        let generation = cur.u64()?;
        let world = cur.u32()?;
        let step = cur.u64()?;
        let seed = cur.u64()?;
        let count = cur.u32()?;
        if count > MAX_SECTION {
            return Err(CheckpointError::BadHeader);
        }
        let mut shards = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            let rank = cur.u32()?;
            let name_raw = cur.section()?;
            let name = String::from_utf8(name_raw).map_err(|_| CheckpointError::BadHeader)?;
            let len = cur.u32()?;
            let crc = cur.u32()?;
            shards.push(ManifestEntry {
                rank,
                name,
                len,
                crc,
            });
        }
        // Optional trailing placement section: absent in older files,
        // which therefore read back as the static layout.
        let placement = if cur.pos < body.len() {
            cur.section()?
        } else {
            Vec::new()
        };
        check_seal(body, payload)?;
        Ok(Manifest {
            generation,
            world,
            step,
            seed,
            shards,
            placement,
        })
    }

    /// The manifest entry for `rank`, if it participated.
    pub fn entry(&self, rank: u32) -> Option<&ManifestEntry> {
        self.shards.iter().find(|s| s.rank == rank)
    }

    /// Verifies that `bytes` is exactly the shard file this entry
    /// committed: length and whole-file CRC must both match.
    pub fn entry_matches(entry: &ManifestEntry, bytes: &[u8]) -> bool {
        bytes.len() == entry.len as usize && crc32(bytes) == entry.crc
    }
}

/// Canonical shard file name for `(generation, rank)`. Zero-padded so a
/// lexicographic directory sort is also a generation sort.
pub fn shard_file_name(generation: u64, rank: usize) -> String {
    format!("shard-g{generation:08}-r{rank:04}.smsh")
}

/// Canonical manifest file name for a generation.
pub fn manifest_file_name(generation: u64) -> String {
    format!("manifest-g{generation:08}.smmf")
}

/// Parses the generation out of a [`manifest_file_name`]-shaped file
/// name; `None` for anything else (tmp siblings, shards, strangers).
pub fn manifest_generation(file_name: &str) -> Option<u64> {
    let rest = file_name.strip_prefix("manifest-g")?;
    let digits = rest.strip_suffix(".smmf")?;
    digits.parse().ok()
}

/// Parses `(generation, rank)` out of a [`shard_file_name`]-shaped file
/// name.
pub fn shard_file_parts(file_name: &str) -> Option<(u64, usize)> {
    let rest = file_name.strip_prefix("shard-g")?;
    let rest = rest.strip_suffix(".smsh")?;
    let (gen, rank) = rest.split_once("-r")?;
    Some((gen.parse().ok()?, rank.parse().ok()?))
}

/// Splits a sealed buffer into (body, cursor-past-magic-and-version),
/// shared by both codecs.
fn open_sealed<'a>(
    payload: &'a [u8],
    magic: &[u8; 4],
) -> Result<(&'a [u8], Cursor<'a>), CheckpointError> {
    if payload.len() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let body = &payload[..payload.len() - 4];
    let mut cur = Cursor { buf: body, pos: 0 };
    if cur.take(4)? != magic {
        return Err(CheckpointError::BadHeader);
    }
    if cur.u32()? != VERSION {
        return Err(CheckpointError::BadHeader);
    }
    Ok((body, cur))
}

/// Verifies the trailing CRC seal after a successful structural parse —
/// the last gate before a decoded value escapes this module.
fn check_seal(body: &[u8], payload: &[u8]) -> Result<(), CheckpointError> {
    let seal = &payload[payload.len() - 4..];
    let stored = u32::from_le_bytes([seal[0], seal[1], seal[2], seal[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(CheckpointError::Corrupt { stored, computed });
    }
    Ok(())
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A length-prefixed byte section, with the length sanity-bounded
    /// before allocation.
    fn section(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let len = self.u32()?;
        if len > MAX_SECTION {
            return Err(CheckpointError::BadHeader);
        }
        Ok(self.take(len as usize)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_shard() -> Shard {
        Shard {
            generation: 7,
            rank: 2,
            world: 4,
            step: 120,
            seed: 99,
            replicated: vec![1, 2, 3, 4, 5],
            expert: vec![9, 8, 7],
            replicas: vec![
                ShardReplica {
                    ward: 1,
                    quantum: 15,
                    payload: vec![0xAA; 17],
                },
                ShardReplica {
                    ward: 3,
                    quantum: 14,
                    payload: vec![],
                },
            ],
        }
    }

    fn sample_manifest() -> Manifest {
        Manifest {
            generation: 7,
            world: 4,
            step: 120,
            seed: 99,
            shards: (0..4)
                .map(|r| ManifestEntry {
                    rank: r,
                    name: shard_file_name(7, r as usize),
                    len: 100 + r,
                    crc: 0xDEAD_0000 + r,
                })
                .collect(),
            placement: vec![],
        }
    }

    #[test]
    fn shard_and_manifest_round_trip() {
        let s = sample_shard();
        assert_eq!(Shard::decode(&s.encode()).unwrap(), s);
        let m = sample_manifest();
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.entry(2).unwrap().name, shard_file_name(7, 2));
        assert!(back.entry(9).is_none());
    }

    #[test]
    fn manifest_placement_section_round_trips_and_tolerates_absence() {
        let mut m = sample_manifest();
        m.placement = vec![0x50, 0x4C, 0x4D, 0x54, 7, 7, 7];
        let back = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(back.placement, m.placement);

        // A pre-placement manifest: same layout but no trailing section.
        // Re-encode by hand — everything up to the shards, then the seal.
        let plain = sample_manifest();
        let full = plain.encode();
        // Strip the empty placement section (4-byte length) and the old
        // seal, then re-seal.
        let mut old = full[..full.len() - 8].to_vec();
        let crc = crc32(&old);
        old.extend_from_slice(&crc.to_le_bytes());
        let back = Manifest::decode(&old).unwrap();
        assert!(back.placement.is_empty());
        assert_eq!(back.shards, plain.shards);
    }

    #[test]
    fn file_names_parse_back_and_sort_by_generation() {
        assert_eq!(manifest_generation(&manifest_file_name(42)), Some(42));
        assert_eq!(manifest_generation("manifest-g00000042.smmf.tmp"), None);
        assert_eq!(manifest_generation("shard-g00000001-r0000.smsh"), None);
        assert_eq!(shard_file_parts(&shard_file_name(3, 11)), Some((3, 11)));
        assert!(manifest_file_name(9) < manifest_file_name(10));
    }

    #[test]
    fn cross_magic_decode_is_refused() {
        let s = sample_shard();
        assert_eq!(
            Manifest::decode(&s.encode()).unwrap_err(),
            CheckpointError::BadHeader
        );
        let m = sample_manifest();
        assert_eq!(
            Shard::decode(&m.encode()).unwrap_err(),
            CheckpointError::BadHeader
        );
    }

    #[test]
    fn entry_matches_requires_exact_length_and_crc() {
        let bytes = sample_shard().encode();
        let entry = ManifestEntry {
            rank: 2,
            name: shard_file_name(7, 2),
            len: bytes.len() as u32,
            crc: crc32(&bytes),
        };
        assert!(Manifest::entry_matches(&entry, &bytes));
        let mut rotted = bytes.clone();
        rotted[10] ^= 0x40;
        assert!(!Manifest::entry_matches(&entry, &rotted));
        assert!(!Manifest::entry_matches(&entry, &bytes[..bytes.len() - 1]));
    }

    #[test]
    fn shard_with_rank_out_of_world_is_refused() {
        let mut s = sample_shard();
        s.rank = 4;
        assert!(matches!(
            Shard::decode(&s.encode()).unwrap_err(),
            CheckpointError::Mismatch { .. }
        ));
    }

    proptest! {
        #[test]
        fn shard_round_trips_for_arbitrary_contents(
            generation in 0u64..1_000_000,
            rank in 0u32..16,
            step in 0u64..100_000,
            seed in 0u64..=u64::MAX,
            replicated in proptest::collection::vec(0u8..=255, 0..256),
            expert in proptest::collection::vec(0u8..=255, 0..256),
            replicas in proptest::collection::vec(
                (0u32..16, 0u64..=u64::MAX, proptest::collection::vec(0u8..=255, 0..64)),
                0..4
            ),
        ) {
            let s = Shard {
                generation,
                rank,
                world: 16,
                step,
                seed,
                replicated,
                expert,
                replicas: replicas
                    .into_iter()
                    .map(|(ward, quantum, payload)| ShardReplica { ward, quantum, payload })
                    .collect(),
            };
            prop_assert_eq!(Shard::decode(&s.encode()).unwrap(), s);
        }

        #[test]
        fn any_truncation_of_a_shard_is_refused(cut in 0usize..100) {
            let bytes = sample_shard().encode();
            let cut = cut % bytes.len();
            prop_assert!(Shard::decode(&bytes[..cut]).is_err());
        }

        #[test]
        fn any_byte_flip_in_a_shard_is_refused(pos in 0usize..1000, bit in 0u8..8) {
            let mut bytes = sample_shard().encode();
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
            prop_assert!(Shard::decode(&bytes).is_err(), "flip at {} slipped through", pos);
        }

        #[test]
        fn any_byte_flip_in_a_manifest_is_refused(pos in 0usize..1000, bit in 0u8..8) {
            let mut bytes = sample_manifest().encode();
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
            prop_assert!(Manifest::decode(&bytes).is_err(), "flip at {} slipped through", pos);
        }

        #[test]
        fn any_truncation_of_a_manifest_is_refused(cut in 0usize..100) {
            let bytes = sample_manifest().encode();
            let cut = cut % bytes.len();
            prop_assert!(Manifest::decode(&bytes[..cut]).is_err());
        }
    }
}
