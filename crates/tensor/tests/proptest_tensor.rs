//! Property-based tests for tensor algebra invariants.

use proptest::prelude::*;
use schemoe_tensor::Tensor;

/// Strategy: a matrix of the given dimensions with small finite entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).unwrap())
}

proptest! {
    #[test]
    fn matmul_identity_is_noop(a in matrix(4, 4)) {
        let i = Tensor::eye(4);
        let left = i.matmul(&a).unwrap();
        let right = a.matmul(&i).unwrap();
        prop_assert!(left.max_abs_diff(&a).unwrap() < 1e-4);
        prop_assert!(right.max_abs_diff(&a).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)
    ) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-2);
    }

    #[test]
    fn transpose_is_involution(a in matrix(5, 3)) {
        let tt = a.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(tt.data(), a.data());
        prop_assert_eq!(tt.dims(), a.dims());
    }

    #[test]
    fn matmul_t_consistent_with_explicit_transpose(
        a in matrix(3, 5), b in matrix(4, 5)
    ) {
        let fused = a.matmul_t(&b).unwrap();
        let explicit = a.matmul(&b.transpose().unwrap()).unwrap();
        prop_assert!(fused.max_abs_diff(&explicit).unwrap() < 1e-3);
    }

    #[test]
    fn t_matmul_consistent_with_explicit_transpose(
        a in matrix(5, 3), b in matrix(5, 4)
    ) {
        let fused = a.t_matmul(&b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        prop_assert!(fused.max_abs_diff(&explicit).unwrap() < 1e-3);
    }

    #[test]
    fn softmax_rows_are_probability_distributions(a in matrix(6, 8)) {
        let s = a.softmax_rows().unwrap();
        for i in 0..6 {
            let row = s.row(i);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in matrix(2, 5), shift in -50.0f32..50.0) {
        let s1 = a.softmax_rows().unwrap();
        let s2 = a.map(|v| v + shift).softmax_rows().unwrap();
        prop_assert!(s1.max_abs_diff(&s2).unwrap() < 1e-4);
    }

    #[test]
    fn scale_then_sum_commutes(a in matrix(3, 3), s in -5.0f32..5.0) {
        let lhs = a.scale(s).sum();
        let rhs = a.sum() * s;
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn reshape_preserves_sum(a in matrix(4, 6)) {
        let r = a.reshape(&[2, 12]).unwrap();
        prop_assert_eq!(r.sum(), a.sum());
        prop_assert_eq!(r.numel(), a.numel());
    }

    #[test]
    fn sum_rows_matches_total_sum(a in matrix(5, 7)) {
        let s = a.sum_rows().unwrap();
        prop_assert!((s.sum() - a.sum()).abs() < 1e-3 * (1.0 + a.sum().abs()));
    }
}
