//! Fault-path coverage for every collective algorithm.
//!
//! The contract under test: when one rank goes silent (alive but not
//! participating) or dies (its channel endpoints drop), every *other*
//! rank's exchange must fail with a typed [`FabricError`] within its
//! receive deadline — never hang, never panic. Each scenario runs under a
//! watchdog thread so a regression shows up as a loud test failure, not a
//! wedged CI job.
//!
//! The silent rank is parked at full health (its links stay open, so
//! peers see pure [`FabricError::Timeout`]); the dead rank returns
//! immediately (so peers see `Timeout` or
//! [`FabricError::Disconnected`], depending on who checks first). Silence
//! is position-sensitive for the hierarchical algorithms — a node leader
//! failing is a different code path from a member failing — so those run
//! once per role.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::Bytes;
use schemoe_cluster::{Fabric, FabricError, Topology};
use schemoe_collectives::{
    AllReduce, AllToAll, NaiveAllReduce, NcclA2A, OneDimHierA2A, PipeA2A, RingAllReduce,
    TwoDimHierA2A,
};

/// Deadline installed on every live rank's handle.
const DEADLINE: Duration = Duration::from_millis(250);

/// How long a silent (but alive) rank stays parked: comfortably past every
/// live rank's deadline, so peers fail before its links close.
const PARK: Duration = Duration::from_millis(1_500);

/// Outer bound on one whole scenario.
const WATCHDOG: Duration = Duration::from_secs(60);

/// Runs `f` on its own thread, failing the test if it hangs or panics.
fn under_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => v,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name}: collective hung past the {WATCHDOG:?} watchdog")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("{name}: collective panicked instead of returning a typed error")
        }
    }
}

/// An error a live rank may legitimately observe when a peer fails.
fn is_typed_liveness_error(e: &FabricError) -> bool {
    matches!(
        e,
        FabricError::Timeout { .. } | FabricError::Disconnected { .. }
    )
}

/// Runs `alg` on a 2×2 fabric with `faulty` either parked (silent) or
/// returning immediately (dead); asserts every live rank gets a typed
/// error.
fn a2a_with_faulty_rank(alg: Arc<dyn AllToAll>, faulty: usize, dead: bool) {
    let name = alg.name();
    let results = under_watchdog(name, move || {
        Fabric::run(Topology::new(2, 2), move |mut h| {
            let me = h.rank();
            let p = h.world_size();
            if me == faulty {
                if !dead {
                    thread::sleep(PARK);
                }
                return None;
            }
            h.set_recv_deadline(Some(DEADLINE));
            let chunks: Vec<Bytes> = (0..p)
                .map(|j| Bytes::copy_from_slice(&[me as u8, j as u8]))
                .collect();
            Some(alg.all_to_all(&mut h, chunks, 0))
        })
    });
    for (r, res) in results.into_iter().enumerate() {
        if r == faulty {
            continue;
        }
        let err = res
            .expect("live rank ran the exchange")
            .expect_err("the exchange must fail when a peer is gone");
        assert!(
            is_typed_liveness_error(&err),
            "rank {r} under {name}: expected Timeout/Disconnected, got {err}"
        );
    }
}

/// Same scenario for a sum all-reduce.
fn allreduce_with_faulty_rank(alg: Arc<dyn AllReduce>, faulty: usize, dead: bool) {
    let name = alg.name();
    let results = under_watchdog(name, move || {
        Fabric::run(Topology::new(2, 2), move |mut h| {
            let me = h.rank();
            if me == faulty {
                if !dead {
                    thread::sleep(PARK);
                }
                return None;
            }
            h.set_recv_deadline(Some(DEADLINE));
            let mut data = vec![me as f32; 64];
            Some(alg.all_reduce(&mut h, &mut data, 0))
        })
    });
    for (r, res) in results.into_iter().enumerate() {
        if r == faulty {
            continue;
        }
        let err = res
            .expect("live rank ran the allreduce")
            .expect_err("the allreduce must fail when a peer is gone");
        assert!(
            is_typed_liveness_error(&err),
            "rank {r} under {name}: expected Timeout/Disconnected, got {err}"
        );
    }
}

// --- NCCL-style baseline: every rank is structurally identical, so one
// --- silent position plus one dead position covers it.

#[test]
fn nccl_times_out_on_a_silent_rank() {
    a2a_with_faulty_rank(Arc::new(NcclA2A), 1, false);
}

#[test]
fn nccl_errors_when_a_peer_dies() {
    a2a_with_faulty_rank(Arc::new(NcclA2A), 2, true);
}

// --- Pipelined A2A: intra-node and inter-node pairs are distinct stages;
// --- fail a same-node peer and a remote peer.

#[test]
fn pipe_times_out_on_a_silent_same_node_peer() {
    // Ranks 0 and 1 share node 0: rank 0 loses its intra-node partner.
    a2a_with_faulty_rank(Arc::new(PipeA2A::new()), 1, false);
}

#[test]
fn pipe_times_out_on_a_silent_remote_peer() {
    a2a_with_faulty_rank(Arc::new(PipeA2A::new()), 3, false);
}

#[test]
fn pipe_errors_when_a_peer_dies() {
    a2a_with_faulty_rank(Arc::new(PipeA2A::new()), 2, true);
}

// --- 1D-hierarchical: gather → leader exchange → scatter. A dead leader
// --- stalls its whole node *and* the remote leader; a dead member stalls
// --- the gather.

#[test]
fn hier1d_times_out_when_a_node_leader_is_silent() {
    a2a_with_faulty_rank(Arc::new(OneDimHierA2A), 0, false);
}

#[test]
fn hier1d_times_out_when_a_member_is_silent() {
    a2a_with_faulty_rank(Arc::new(OneDimHierA2A), 1, false);
}

#[test]
fn hier1d_times_out_when_the_remote_leader_is_silent() {
    a2a_with_faulty_rank(Arc::new(OneDimHierA2A), 2, false);
}

#[test]
fn hier1d_errors_when_a_leader_dies() {
    a2a_with_faulty_rank(Arc::new(OneDimHierA2A), 0, true);
}

// --- 2D-hierarchical: intra-node regroup then inter-node rail exchange;
// --- fail one rank per phase role.

#[test]
fn hier2d_times_out_when_a_local_peer_is_silent() {
    a2a_with_faulty_rank(Arc::new(TwoDimHierA2A), 1, false);
}

#[test]
fn hier2d_times_out_when_a_rail_peer_is_silent() {
    // Rank 3 is rank 1's inter-node rail partner on a 2×2 topology.
    a2a_with_faulty_rank(Arc::new(TwoDimHierA2A), 3, false);
}

#[test]
fn hier2d_errors_when_a_peer_dies() {
    a2a_with_faulty_rank(Arc::new(TwoDimHierA2A), 3, true);
}

// --- All-reduce: the naive algorithm has a root role; the ring has a
// --- uniform role but two passes over every link.

#[test]
fn naive_allreduce_times_out_when_the_root_is_silent() {
    allreduce_with_faulty_rank(Arc::new(NaiveAllReduce), 0, false);
}

#[test]
fn naive_allreduce_times_out_when_a_leaf_is_silent() {
    allreduce_with_faulty_rank(Arc::new(NaiveAllReduce), 2, false);
}

#[test]
fn ring_allreduce_times_out_on_a_silent_rank() {
    allreduce_with_faulty_rank(Arc::new(RingAllReduce), 1, false);
}

#[test]
fn ring_allreduce_errors_when_a_peer_dies() {
    allreduce_with_faulty_rank(Arc::new(RingAllReduce), 1, true);
}
