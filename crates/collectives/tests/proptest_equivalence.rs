//! Property test: every A2A algorithm is functionally identical.
//!
//! For random topologies and random variable-length payloads, each
//! algorithm's exchange must deliver byte-for-byte what the direct
//! reference exchange delivers. This is the contract that lets ScheMoE
//! swap A2A algorithms without affecting training results.

use bytes::Bytes;
use proptest::prelude::*;
use schemoe_cluster::{Fabric, Topology};
use schemoe_collectives::{
    reference_all_to_all, AllToAll, NcclA2A, OneDimHierA2A, PipeA2A, TwoDimHierA2A, TAG_STRIDE,
};

/// Deterministic payload for (src, dst) derived from a run seed.
fn payload(seed: u64, src: usize, dst: usize) -> Bytes {
    let len = ((seed as usize + src * 7 + dst * 13) % 40) + 1;
    let data: Vec<u8> = (0..len)
        .map(|i| (seed as usize + src * 131 + dst * 17 + i) as u8)
        .collect();
    Bytes::from(data)
}

fn run_alg(alg: &dyn AllToAll, topo: Topology, seed: u64, tag: u64) -> Vec<Vec<Bytes>> {
    Fabric::run(topo, |mut h| {
        let me = h.rank();
        let chunks: Vec<Bytes> = (0..h.world_size()).map(|j| payload(seed, me, j)).collect();
        alg.all_to_all(&mut h, chunks, tag).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_algorithms_match_the_reference(
        nodes in 1usize..4,
        gpus in 1usize..4,
        seed in 0u64..1000,
    ) {
        let topo = Topology::new(nodes, gpus);
        let expected = Fabric::run(topo, |mut h| {
            let me = h.rank();
            let chunks: Vec<Bytes> =
                (0..h.world_size()).map(|j| payload(seed, me, j)).collect();
            reference_all_to_all(&mut h, chunks, 0).unwrap()
        });
        let algs: Vec<Box<dyn AllToAll>> = vec![
            Box::new(NcclA2A),
            Box::new(PipeA2A::new()),
            Box::new(OneDimHierA2A),
            Box::new(TwoDimHierA2A),
        ];
        for (k, alg) in algs.iter().enumerate() {
            let got = run_alg(alg.as_ref(), topo, seed, (k as u64 + 1) * TAG_STRIDE);
            prop_assert_eq!(&got, &expected, "algorithm {} diverged", alg.name());
        }
    }

    /// Conservation law: data destined for another node must cross the
    /// node boundary at least once, so every plan's inter-node byte count
    /// is at least the direct exchange's inter-node payload.
    #[test]
    fn plans_carry_at_least_the_inter_node_payload(
        nodes in 1usize..5,
        gpus in 1usize..5,
        kib in 1u64..10_000,
    ) {
        let topo = Topology::new(nodes, gpus);
        let s = kib * 1024;
        let p = topo.world_size() as u64;
        let m = topo.gpus_per_node() as u64;
        let per_peer = s / p;
        // Each rank sends per_peer to each of the (P−M) ranks off-node.
        let direct_inter = per_peer * (p - m) * p;
        let algs: Vec<Box<dyn AllToAll>> = vec![
            Box::new(NcclA2A),
            Box::new(PipeA2A::new()),
            Box::new(OneDimHierA2A),
            Box::new(TwoDimHierA2A),
        ];
        for alg in &algs {
            let plan = alg.plan(&topo, s);
            let inter = plan.inter_node_bytes(&topo);
            // Integer division of s across peers loses at most p bytes per
            // rank; allow that much slack.
            prop_assert!(
                inter + p * p >= direct_inter,
                "{} plan moves {} inter-node bytes < direct {}",
                alg.name(), inter, direct_inter
            );
        }
    }
}
