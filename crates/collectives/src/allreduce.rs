//! All-reduce collectives for the data-parallel (dense) gradients.
//!
//! MoE models train the non-expert parameters data-parallel, so every
//! step also all-reduces dense gradients (the collective that Lina [20]
//! co-schedules with the MoE all-to-alls). Two algorithms are provided:
//! a naive root-gather/broadcast and the bandwidth-optimal ring.

use bytes::Bytes;
use schemoe_cluster::{FabricError, RankHandle, Topology};

use crate::plan::{A2aPlan, SrOp, StreamAssignment};

/// A sum all-reduce over `f32` buffers.
pub trait AllReduce: Send + Sync {
    /// Stable algorithm name.
    fn name(&self) -> &'static str;

    /// Sums `data` elementwise across all ranks, in place, blocking.
    fn all_reduce(
        &self,
        handle: &mut RankHandle,
        data: &mut [f32],
        tag_base: u64,
    ) -> Result<(), FabricError>;

    /// Compiles the algorithm into a simulatable plan for `input_bytes`
    /// of gradient per rank.
    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan;
}

fn encode(values: &[f32]) -> Bytes {
    let mut buf = Vec::with_capacity(values.len() * 4);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(buf)
}

fn decode_into(payload: &[u8], out: &mut [f32], add: bool) {
    for (i, b) in payload.chunks_exact(4).enumerate() {
        let v = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        if add {
            out[i] += v;
        } else {
            out[i] = v;
        }
    }
}

/// Root-based all-reduce: gather on rank 0, reduce, broadcast.
///
/// Simple and latency-friendly at small sizes; rank 0's link serializes
/// `2(P−1)` full-size messages, so it scales poorly with `P`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveAllReduce;

impl AllReduce for NaiveAllReduce {
    fn name(&self) -> &'static str {
        "naive-allreduce"
    }

    fn all_reduce(
        &self,
        handle: &mut RankHandle,
        data: &mut [f32],
        tag_base: u64,
    ) -> Result<(), FabricError> {
        let p = handle.world_size();
        if p == 1 {
            return Ok(());
        }
        if handle.rank() == 0 {
            for src in 1..p {
                let chunk = handle.recv(src, tag_base)?;
                decode_into(&chunk, data, true);
            }
            let summed = encode(data);
            for dst in 1..p {
                handle.send(dst, tag_base + 1, summed.clone())?;
            }
        } else {
            handle.send(0, tag_base, encode(data))?;
            let summed = handle.recv(0, tag_base + 1)?;
            decode_into(&summed, data, false);
        }
        Ok(())
    }

    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan {
        // Rank 0's ingress then egress carry P−1 full-size messages each;
        // charge them to rank 0's stream, which is the bottleneck.
        let p = topo.world_size();
        let mut gather = Vec::new();
        let mut bcast = Vec::new();
        for r in 1..p {
            gather.push(SrOp {
                owner: 0,
                src: r,
                dst: 0,
                bytes: input_bytes,
                stream: StreamAssignment::Main,
                exclusive_intra: false,
            });
            bcast.push(SrOp {
                owner: 0,
                src: 0,
                dst: r,
                bytes: input_bytes,
                stream: StreamAssignment::Main,
                exclusive_intra: false,
            });
        }
        A2aPlan::new(self.name(), vec![gather, bcast]).with_staging_bytes(input_bytes)
    }
}

/// Ring all-reduce: reduce-scatter then all-gather, `2(P−1)` steps of
/// `1/P`-size messages — the bandwidth-optimal classic.
#[derive(Clone, Copy, Debug, Default)]
pub struct RingAllReduce;

impl RingAllReduce {
    /// Chunk boundaries: `P` contiguous ranges covering `len`.
    fn bounds(len: usize, p: usize) -> Vec<(usize, usize)> {
        let base = len / p;
        let rem = len % p;
        let mut out = Vec::with_capacity(p);
        let mut start = 0;
        for i in 0..p {
            let size = base + usize::from(i < rem);
            out.push((start, start + size));
            start += size;
        }
        out
    }
}

impl AllReduce for RingAllReduce {
    fn name(&self) -> &'static str {
        "ring-allreduce"
    }

    fn all_reduce(
        &self,
        handle: &mut RankHandle,
        data: &mut [f32],
        tag_base: u64,
    ) -> Result<(), FabricError> {
        let p = handle.world_size();
        if p == 1 {
            return Ok(());
        }
        let me = handle.rank();
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        let bounds = Self::bounds(data.len(), p);

        // Reduce-scatter: after P−1 steps, rank r owns the full sum of
        // chunk (r+1) mod p.
        for step in 0..p - 1 {
            let send_chunk = (me + p - step) % p;
            let recv_chunk = (me + p - step - 1) % p;
            let (s0, s1) = bounds[send_chunk];
            handle.send(next, tag_base + step as u64, encode(&data[s0..s1]))?;
            let payload = handle.recv(prev, tag_base + step as u64)?;
            let (r0, r1) = bounds[recv_chunk];
            for (i, b) in payload.chunks_exact(4).enumerate() {
                data[r0 + i] += f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
                debug_assert!(r0 + i < r1);
            }
        }
        // All-gather: circulate the finished chunks.
        for step in 0..p - 1 {
            let send_chunk = (me + 1 + p - step) % p;
            let recv_chunk = (me + p - step) % p;
            let (s0, s1) = bounds[send_chunk];
            handle.send(next, tag_base + (p + step) as u64, encode(&data[s0..s1]))?;
            let payload = handle.recv(prev, tag_base + (p + step) as u64)?;
            let (r0, _r1) = bounds[recv_chunk];
            decode_into(&payload, &mut data[r0..], false);
        }
        Ok(())
    }

    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan {
        // 2(P−1) synchronous ring steps; each rank forwards bytes/P to its
        // successor per step. Every step is one phase (the ring is
        // bulk-synchronous: step i+1 needs step i's data).
        let p = topo.world_size();
        let per_step = input_bytes / p as u64;
        let mut phases = Vec::with_capacity(2 * (p - 1));
        for _ in 0..2 * (p.saturating_sub(1)) {
            let ops = topo
                .ranks()
                .map(|src| SrOp {
                    owner: src,
                    src,
                    dst: (src + 1) % p,
                    bytes: per_step,
                    stream: StreamAssignment::Main,
                    exclusive_intra: false,
                })
                .collect();
            phases.push(ops);
        }
        A2aPlan::new(self.name(), phases).with_staging_bytes(2 * input_bytes / p as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_cluster::{Fabric, HardwareProfile};

    fn run_allreduce(alg: &dyn AllReduce, topo: Topology, len: usize) -> Vec<Vec<f32>> {
        Fabric::run(topo, |mut h| {
            let me = h.rank();
            // Distinct, recomputable values per (rank, index).
            let mut v: Vec<f32> = (0..len).map(|i| (me * 1000 + i) as f32 * 0.25).collect();
            alg.all_reduce(&mut h, &mut v, 0).unwrap();
            v
        })
    }

    fn expected(p: usize, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (0..p).map(|r| (r * 1000 + i) as f32 * 0.25).sum())
            .collect()
    }

    #[test]
    fn naive_allreduce_sums_correctly() {
        let topo = Topology::new(2, 2);
        let results = run_allreduce(&NaiveAllReduce, topo, 10);
        let want = expected(4, 10);
        for (r, got) in results.iter().enumerate() {
            assert_eq!(got, &want, "rank {r}");
        }
    }

    #[test]
    fn ring_allreduce_sums_correctly() {
        for (nodes, gpus, len) in [(2usize, 2usize, 16usize), (3, 2, 7), (1, 5, 23), (1, 1, 4)] {
            let topo = Topology::new(nodes, gpus);
            let p = topo.world_size();
            let results = run_allreduce(&RingAllReduce, topo, len);
            let want = expected(p, len);
            for (r, got) in results.iter().enumerate() {
                for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (g - w).abs() < 1e-3,
                        "{nodes}x{gpus} len {len} rank {r} idx {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_handles_len_smaller_than_world() {
        // Chunks of size zero must not break the ring.
        let topo = Topology::new(1, 4);
        let results = run_allreduce(&RingAllReduce, topo, 2);
        let want = expected(4, 2);
        for got in results {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn ring_beats_naive_at_scale_in_the_simulator() {
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let bytes = 100_000_000u64;
        let ring = RingAllReduce
            .plan(&topo, bytes)
            .simulate(&topo, &hw)
            .unwrap()
            .makespan();
        let naive = NaiveAllReduce
            .plan(&topo, bytes)
            .simulate(&topo, &hw)
            .unwrap()
            .makespan();
        assert!(
            ring < naive,
            "ring {ring} should beat the root bottleneck {naive} at 100 MB"
        );
    }

    #[test]
    fn bounds_partition_exactly() {
        for (len, p) in [(10usize, 3usize), (4, 4), (2, 5), (100, 7)] {
            let b = RingAllReduce::bounds(len, p);
            assert_eq!(b.len(), p);
            assert_eq!(b[0].0, 0);
            assert_eq!(b[p - 1].1, len);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }
}
