//! Simulatable all-to-all plans: phases of send/recv pairs on streams.

use schemoe_cluster::{HardwareProfile, Rank, Topology};
use schemoe_netsim::{SimError, SimTime, StreamSim, Trace};

/// Which of a rank's two communication streams an operation is issued on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamAssignment {
    /// The rank's primary stream (stream 0). Sequential algorithms put
    /// everything here.
    Main,
    /// The rank's secondary stream (stream 1). Pipe-A2A issues inter-node
    /// pairs here so they overlap with intra-node pairs on [`Self::Main`].
    Secondary,
}

/// One send/recv pair `SR(src, dst)` within a plan.
#[derive(Clone, Copy, Debug)]
pub struct SrOp {
    /// The rank whose stream executes (and is occupied by) this pair.
    /// Usually the sender; gather patterns charge the receiver instead,
    /// because its ingress link is the serializing resource.
    pub owner: Rank,
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Message size in bytes.
    pub bytes: u64,
    /// Stream assignment on the owner.
    pub stream: StreamAssignment,
    /// `true` when the op runs in a phase with no concurrent inter-node
    /// traffic, earning the faster exclusive intra-node rate.
    pub exclusive_intra: bool,
}

impl SrOp {
    /// Simulated duration of this pair under `hw`.
    pub fn duration(&self, topo: &Topology, hw: &HardwareProfile) -> SimTime {
        if self.src == self.dst {
            hw.self_copy(self.bytes)
        } else if topo.same_node(self.src, self.dst) {
            if self.exclusive_intra {
                hw.intra_sr_exclusive(self.bytes)
            } else {
                hw.intra_sr(self.bytes)
            }
        } else {
            hw.inter_sr(self.bytes)
        }
    }

    /// Whether the pair crosses nodes.
    pub fn is_inter_node(&self, topo: &Topology) -> bool {
        !topo.same_node(self.src, self.dst)
    }
}

/// A compiled all-to-all: phases of [`SrOp`]s plus memory metadata.
///
/// Within a phase, each rank's ops execute in listed order on their
/// assigned streams; a synchronization barrier (costing
/// [`HardwareProfile::phase_sync`]) separates consecutive phases, which is
/// how hierarchical algorithms serialize their stages.
#[derive(Clone, Debug)]
pub struct A2aPlan {
    name: String,
    phases: Vec<Vec<SrOp>>,
    staging_bytes: u64,
    join_overhead: SimTime,
}

impl A2aPlan {
    /// Creates a plan.
    pub fn new(name: impl Into<String>, phases: Vec<Vec<SrOp>>) -> Self {
        A2aPlan {
            name: name.into(),
            phases,
            staging_bytes: 0,
            join_overhead: SimTime::ZERO,
        }
    }

    /// Sets the per-GPU staging-buffer requirement, builder style.
    pub fn with_staging_bytes(mut self, bytes: u64) -> Self {
        self.staging_bytes = bytes;
        self
    }

    /// Sets a fixed end-of-collective overhead (e.g. multi-stream join),
    /// builder style.
    pub fn with_join_overhead(mut self, overhead: SimTime) -> Self {
        self.join_overhead = overhead;
        self
    }

    /// Algorithm name this plan was compiled from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phase-major operation list.
    pub fn phases(&self) -> &[Vec<SrOp>] {
        &self.phases
    }

    /// Per-GPU staging-buffer bytes beyond input and output tensors.
    pub fn staging_bytes(&self) -> u64 {
        self.staging_bytes
    }

    /// Fixed end-of-collective overhead to add to the simulated makespan.
    pub fn join_overhead(&self) -> SimTime {
        self.join_overhead
    }

    /// Total bytes crossing node boundaries (one direction counted once).
    pub fn inter_node_bytes(&self, topo: &Topology) -> u64 {
        self.phases
            .iter()
            .flatten()
            .filter(|op| op.is_inter_node(topo))
            .map(|op| op.bytes)
            .sum()
    }

    /// Runs the plan against a hardware profile.
    ///
    /// Each rank gets two streams; phase barriers are modelled as a
    /// `phase_sync`-long op on a dedicated sync stream that every
    /// next-phase op waits on.
    pub fn simulate(&self, topo: &Topology, hw: &HardwareProfile) -> Result<Trace, SimError> {
        let p = topo.world_size();
        let mut sim = StreamSim::new();
        let mut main = Vec::with_capacity(p);
        let mut secondary = Vec::with_capacity(p);
        for r in 0..p {
            main.push(sim.stream(format!("gpu{r}.main")));
            secondary.push(sim.stream(format!("gpu{r}.aux")));
        }
        let sync_stream = sim.stream("sync");

        let mut prev_barrier = None;
        for (pi, phase) in self.phases.iter().enumerate() {
            let mut phase_ops = Vec::with_capacity(phase.len());
            for op in phase {
                let stream = match op.stream {
                    StreamAssignment::Main => main[op.owner],
                    StreamAssignment::Secondary => secondary[op.owner],
                };
                let deps: &[schemoe_netsim::OpId] = match &prev_barrier {
                    Some(b) => std::slice::from_ref(b),
                    None => &[],
                };
                let id = sim.push(
                    stream,
                    op.duration(topo, hw),
                    deps,
                    format!("p{pi}:sr({},{})", op.src, op.dst),
                );
                phase_ops.push(id);
            }
            if pi + 1 < self.phases.len() {
                prev_barrier =
                    Some(sim.push(sync_stream, hw.phase_sync, &phase_ops, format!("sync{pi}")));
            }
        }
        sim.run()
    }
}

/// Splits `total` bytes evenly across `parts`, assigning the remainder to
/// the earliest parts so sizes never differ by more than one byte.
pub fn split_bytes(total: u64, parts: usize) -> Vec<u64> {
    let parts = parts.max(1) as u64;
    let base = total / parts;
    let rem = total % parts;
    (0..parts).map(|i| base + u64::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareProfile {
        HardwareProfile::paper_testbed()
    }

    #[test]
    fn single_phase_plan_runs_per_rank_sequentially() {
        let topo = Topology::new(1, 2);
        // Rank 0 does two intra pairs on Main: they serialize.
        let ops = vec![
            SrOp {
                owner: 0,
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                stream: StreamAssignment::Main,
                exclusive_intra: false,
            },
            SrOp {
                owner: 0,
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                stream: StreamAssignment::Main,
                exclusive_intra: false,
            },
        ];
        let plan = A2aPlan::new("test", vec![ops]);
        let trace = plan.simulate(&topo, &hw()).unwrap();
        let one = hw().intra_sr(1_000_000);
        assert!((trace.makespan().as_secs() - 2.0 * one.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn secondary_stream_overlaps_with_main() {
        let topo = Topology::new(2, 2);
        let mk = |stream, dst| SrOp {
            owner: 0,
            src: 0,
            dst,
            bytes: 10_000_000,
            stream,
            exclusive_intra: false,
        };
        let plan = A2aPlan::new(
            "test",
            vec![vec![
                mk(StreamAssignment::Main, 1),
                mk(StreamAssignment::Secondary, 2),
            ]],
        );
        let trace = plan.simulate(&topo, &hw()).unwrap();
        let intra = hw().intra_sr(10_000_000);
        let inter = hw().inter_sr(10_000_000);
        assert!(
            (trace.makespan().as_secs() - intra.max(inter).as_secs()).abs() < 1e-9,
            "streams must overlap"
        );
    }

    #[test]
    fn phase_barrier_serializes_and_costs_sync() {
        let topo = Topology::new(1, 2);
        let op = SrOp {
            owner: 0,
            src: 0,
            dst: 1,
            bytes: 1_000_000,
            stream: StreamAssignment::Main,
            exclusive_intra: true,
        };
        let plan = A2aPlan::new("test", vec![vec![op], vec![op]]);
        let trace = plan.simulate(&topo, &hw()).unwrap();
        let one = hw().intra_sr_exclusive(1_000_000);
        let expected = one.as_secs() * 2.0 + hw().phase_sync.as_secs();
        assert!((trace.makespan().as_secs() - expected).abs() < 1e-9);
    }

    #[test]
    fn exclusive_intra_rate_is_faster() {
        let topo = Topology::new(1, 2);
        let base = SrOp {
            owner: 0,
            src: 0,
            dst: 1,
            bytes: 100_000_000,
            stream: StreamAssignment::Main,
            exclusive_intra: false,
        };
        let shared = base.duration(&topo, &hw());
        let exclusive = SrOp {
            exclusive_intra: true,
            ..base
        }
        .duration(&topo, &hw());
        assert!(exclusive < shared);
    }

    #[test]
    fn split_bytes_is_balanced_and_complete() {
        let parts = split_bytes(10, 3);
        assert_eq!(parts.iter().sum::<u64>(), 10);
        assert_eq!(parts, vec![4, 3, 3]);
        assert_eq!(split_bytes(9, 3), vec![3, 3, 3]);
        assert_eq!(split_bytes(0, 4), vec![0, 0, 0, 0]);
    }
}
