//! NCCL-style sequential all-to-all.

use bytes::Bytes;
use schemoe_cluster::{FabricError, RankHandle, Topology};

use crate::plan::{A2aPlan, SrOp, StreamAssignment};
use crate::AllToAll;

/// The baseline all-to-all: rank `i` executes its `P` send/recv pairs
/// sequentially on one stream, in ring order `i, i+1, ..., i-1`.
///
/// This matches the cost shape of NCCL's default A2A on the paper's testbed
/// (Eq. 17): intra-node pairs and inter-node pairs serialize, so neither
/// interconnect is ever idle-free.
#[derive(Clone, Copy, Debug, Default)]
pub struct NcclA2A;

impl AllToAll for NcclA2A {
    fn name(&self) -> &'static str {
        "nccl-a2a"
    }

    fn all_to_all(
        &self,
        handle: &mut RankHandle,
        chunks: Vec<Bytes>,
        tag_base: u64,
    ) -> Result<Vec<Bytes>, FabricError> {
        let p = handle.world_size();
        assert_eq!(chunks.len(), p, "one chunk per destination rank required");
        let _span = crate::coll_span("nccl", tag_base, &chunks);
        let me = handle.rank();
        let mut out: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
        let mut chunks: Vec<Option<Bytes>> = chunks.into_iter().map(Some).collect();
        // Ring order avoids every rank hammering rank 0 first.
        for step in 0..p {
            let peer = (me + step) % p;
            let payload = chunks[peer].take().expect("each peer visited once");
            if peer == me {
                out[me] = Some(payload);
            } else {
                handle.send(peer, tag_base, payload)?;
            }
        }
        for step in 0..p {
            let peer = (me + step) % p;
            if peer != me {
                out[peer] = Some(handle.recv(peer, tag_base)?);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("all peers received"))
            .collect())
    }

    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan {
        let p = topo.world_size();
        let per_peer = input_bytes / p as u64;
        let mut ops = Vec::with_capacity(p * p);
        for src in topo.ranks() {
            for step in 0..p {
                let dst = (src + step) % p;
                ops.push(SrOp {
                    owner: src,
                    src,
                    dst,
                    bytes: per_peer,
                    stream: StreamAssignment::Main,
                    exclusive_intra: false,
                });
            }
        }
        A2aPlan::new(self.name(), vec![ops])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_cluster::{Fabric, HardwareProfile};

    #[test]
    fn plan_time_matches_eq17() {
        // t = self + (M-1)·t1 + (P-M)·t2 for every rank in parallel.
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let s: u64 = 320_000_000;
        let per = s / 32;
        let plan = NcclA2A.plan(&topo, s);
        let trace = plan.simulate(&topo, &hw).unwrap();
        let expected = hw.self_copy(per).as_secs()
            + 3.0 * hw.intra_sr(per).as_secs()
            + 28.0 * hw.inter_sr(per).as_secs();
        assert!(
            (trace.makespan().as_secs() - expected).abs() < 1e-9,
            "sim {} vs closed form {}",
            trace.makespan().as_secs(),
            expected
        );
    }

    #[test]
    fn functional_exchange_matches_reference() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank() as u8;
            let chunks: Vec<Bytes> = (0..h.world_size())
                .map(|j| Bytes::copy_from_slice(&[me, j as u8, 0xAB]))
                .collect();
            NcclA2A.all_to_all(&mut h, chunks, 0).unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(payload.as_ref(), &[j as u8, me as u8, 0xAB]);
            }
        }
    }
}
