//! 2D-hierarchical all-to-all (Tutel / DeepSpeed-MoE style).

use std::collections::HashMap;

use bytes::Bytes;
use schemoe_cluster::{FabricError, Rank, RankHandle, Topology};

use crate::plan::{A2aPlan, SrOp, StreamAssignment};
use crate::AllToAll;

/// 2D-hierarchical all-to-all: an intra-node phase regroups every rank's
/// payload by destination *local index*, then an inter-node phase
/// exchanges along same-local-index "rails".
///
/// Message counts drop from `P−1` to `(M−1) + (N−1)` per rank, which wins
/// when latency dominates; but the intra phase moves `(M−1)/M` of the full
/// payload over the intra-node links and the two phases serialize, which
/// is why Pipe-A2A overtakes it decisively at large sizes (Fig. 9c).
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoDimHierA2A;

impl AllToAll for TwoDimHierA2A {
    fn name(&self) -> &'static str {
        "2dh-a2a"
    }

    fn all_to_all(
        &self,
        handle: &mut RankHandle,
        chunks: Vec<Bytes>,
        tag_base: u64,
    ) -> Result<Vec<Bytes>, FabricError> {
        let topo = handle.topology();
        let p = topo.world_size();
        assert_eq!(chunks.len(), p, "one chunk per destination rank required");
        let _span = crate::coll_span("2dh", tag_base, &chunks);
        let me = handle.rank();
        let my_node = topo.node_of(me);
        let my_local = topo.local_rank(me);
        // Tags: phase 1 = tag_base + dst_global; phase 2 = tag_base + P + src_global.
        let t1 = |dst: usize| tag_base + dst as u64;
        let t2 = |src: usize| tag_base + p as u64 + src as u64;

        // Phase 1 (intra): route each chunk to the local rank whose local
        // index matches the chunk's destination local index.
        let mut staged: HashMap<(Rank, Rank), Bytes> = HashMap::new();
        for (dst, chunk) in chunks.into_iter().enumerate() {
            let via = topo.rank_of(my_node, topo.local_rank(dst));
            if via == me {
                staged.insert((me, dst), chunk);
            } else {
                handle.send(via, t1(dst), chunk)?;
            }
        }
        for src in topo.node_ranks(my_node) {
            if src == me {
                continue;
            }
            // From each local peer: one chunk per node, destined to the
            // rank with my local index on that node.
            for dst_node in 0..topo.nodes() {
                let dst = topo.rank_of(dst_node, my_local);
                let chunk = handle.recv(src, t1(dst))?;
                staged.insert((src, dst), chunk);
            }
        }

        // Phase 2 (inter): exchange along the rail of my local index.
        let mut out: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
        for dst_node in 0..topo.nodes() {
            let dst = topo.rank_of(dst_node, my_local);
            for src in topo.node_ranks(my_node) {
                let chunk = staged.remove(&(src, dst)).expect("phase 1 complete");
                if dst == me {
                    out[src] = Some(chunk);
                } else {
                    handle.send(dst, t2(src), chunk)?;
                }
            }
        }
        for src_node in 0..topo.nodes() {
            if src_node == my_node {
                continue;
            }
            for src in topo.node_ranks(src_node) {
                let chunk = handle.recv(topo.rank_of(src_node, my_local), t2(src))?;
                out[src] = Some(chunk);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("complete output"))
            .collect())
    }

    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan {
        let p = topo.world_size();
        let m = topo.gpus_per_node();
        let n = topo.nodes();
        let per_peer = input_bytes / p as u64;

        // Phase 1 (intra): M−1 messages of N·per_peer plus a local keep.
        let intra_msg = per_peer * n as u64;
        let mut intra = Vec::new();
        for src in topo.ranks() {
            let node = topo.node_of(src);
            for step in 0..m {
                let dst = topo.rank_of(node, (topo.local_rank(src) + step) % m);
                intra.push(SrOp {
                    owner: src,
                    src,
                    dst,
                    bytes: intra_msg,
                    stream: StreamAssignment::Main,
                    exclusive_intra: true,
                });
            }
        }

        // Phase 2 (inter): N−1 messages of M·per_peer along the rail.
        let inter_msg = per_peer * m as u64;
        let mut inter = Vec::new();
        for src in topo.ranks() {
            let (node, local) = (topo.node_of(src), topo.local_rank(src));
            for step in 0..n {
                let dst = topo.rank_of((node + step) % n, local);
                inter.push(SrOp {
                    owner: src,
                    src,
                    dst,
                    bytes: inter_msg,
                    stream: StreamAssignment::Main,
                    exclusive_intra: false,
                });
            }
        }

        // Staging: the full regrouped payload between phases.
        A2aPlan::new(self.name(), vec![intra, inter]).with_staging_bytes(input_bytes)
    }

    fn staging_bytes(&self, _topo: &Topology, input_bytes: u64) -> u64 {
        input_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{a2a_time, NcclA2A, PipeA2A};
    use schemoe_cluster::{Fabric, HardwareProfile};

    #[test]
    fn functional_exchange_matches_reference() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank() as u8;
            let chunks: Vec<Bytes> = (0..h.world_size())
                .map(|j| Bytes::copy_from_slice(&[me, j as u8]))
                .collect();
            TwoDimHierA2A.all_to_all(&mut h, chunks, 0).unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(payload.as_ref(), &[j as u8, me as u8]);
            }
        }
    }

    #[test]
    fn functional_exchange_on_asymmetric_topology() {
        let topo = Topology::new(3, 4);
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank() as u8;
            let chunks: Vec<Bytes> = (0..h.world_size())
                .map(|j| Bytes::copy_from_slice(&[me, j as u8, 0x5A]))
                .collect();
            TwoDimHierA2A
                .all_to_all(&mut h, chunks, 7 * crate::TAG_STRIDE)
                .unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(payload.as_ref(), &[j as u8, me as u8, 0x5A]);
            }
        }
    }

    #[test]
    fn comparable_to_nccl_at_median_and_worse_at_large() {
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        // Small (Fig. 9a): 2DH's fewer messages keep it within range of
        // NCCL (our calibration puts the 2DH/NCCL crossover earlier in the
        // median band than the paper's figure; see EXPERIMENTS.md).
        let s = 1_000_000u64;
        let two = a2a_time(&TwoDimHierA2A, &topo, &hw, s).unwrap();
        let nccl = a2a_time(&NcclA2A, &topo, &hw, s).unwrap();
        let ratio = two / nccl;
        assert!((0.5..1.5).contains(&ratio), "small ratio {ratio:.2}");
        // Median: at most ~NCCL × the large-regime constant.
        let s = 100_000_000u64;
        let two = a2a_time(&TwoDimHierA2A, &topo, &hw, s).unwrap();
        let nccl = a2a_time(&NcclA2A, &topo, &hw, s).unwrap();
        let ratio = two / nccl;
        assert!((0.8..1.6).contains(&ratio), "upper-median ratio {ratio:.2}");
        // Large (Fig. 9c): Pipe-A2A wins by ≈2×.
        let s = 2_000_000_000u64;
        let two = a2a_time(&TwoDimHierA2A, &topo, &hw, s).unwrap();
        let pipe = a2a_time(&PipeA2A::new(), &topo, &hw, s).unwrap();
        let speedup = two / pipe;
        assert!(
            (1.6..2.5).contains(&speedup),
            "Pipe over 2DH at 2 GB should be ≈2×, got {speedup:.2}"
        );
    }

    #[test]
    fn fewer_messages_than_nccl() {
        let topo = Topology::paper_testbed();
        let plan2d = TwoDimHierA2A.plan(&topo, 32_000_000);
        let plan_nccl = NcclA2A.plan(&topo, 32_000_000);
        let count = |p: &crate::A2aPlan| p.phases().iter().map(Vec::len).sum::<usize>();
        assert!(count(&plan2d) < count(&plan_nccl));
    }
}
