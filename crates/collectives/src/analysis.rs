//! Closed-form performance analysis of Pipe-A2A (paper §7, Eq. 16–18).

use schemoe_cluster::{HardwareProfile, Topology};
use schemoe_netsim::SimTime;

/// Total intra-node communication time `M · t1` for one rank's exchange of
/// `input_bytes` (per-peer message = `input_bytes / P`).
pub fn t_intra(topo: &Topology, hw: &HardwareProfile, input_bytes: u64) -> SimTime {
    let per_peer = input_bytes / topo.world_size() as u64;
    let m = topo.gpus_per_node();
    hw.self_copy(per_peer) + hw.intra_sr(per_peer) * (m - 1) as f64
}

/// Total inter-node communication time `(P − M) · t2` for one rank.
pub fn t_inter(topo: &Topology, hw: &HardwareProfile, input_bytes: u64) -> SimTime {
    let per_peer = input_bytes / topo.world_size() as u64;
    let pm = topo.world_size() - topo.gpus_per_node();
    hw.inter_sr(per_peer) * pm as f64
}

/// Eq. 17: the sequential (NCCL-style) time `M·t1 + (P−M)·t2`.
pub fn t_nccl_a2a(topo: &Topology, hw: &HardwareProfile, input_bytes: u64) -> SimTime {
    t_intra(topo, hw, input_bytes) + t_inter(topo, hw, input_bytes)
}

/// Eq. 16: the pipelined time `max(M·t1, (P−M)·t2)`.
pub fn t_pipe_a2a(topo: &Topology, hw: &HardwareProfile, input_bytes: u64) -> SimTime {
    t_intra(topo, hw, input_bytes).max(t_inter(topo, hw, input_bytes))
}

/// Eq. 18: the theoretical maximum speedup of Pipe-A2A over the
/// sequential execution, `(M·t1 + (P−M)·t2) / max(M·t1, (P−M)·t2)`.
///
/// Bounded by 2, approached when intra and inter totals are equal; near 1
/// when one side dominates (the paper's NVLink discussion).
pub fn max_speedup(topo: &Topology, hw: &HardwareProfile, input_bytes: u64) -> f64 {
    t_nccl_a2a(topo, hw, input_bytes) / t_pipe_a2a(topo, hw, input_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_between_1_and_2() {
        let topo = Topology::paper_testbed();
        for hw in [
            HardwareProfile::paper_testbed(),
            HardwareProfile::nvlink_dgx(),
            HardwareProfile::ethernet_cluster(),
        ] {
            for s in [1_000u64, 1_000_000, 1_000_000_000] {
                let sp = max_speedup(&topo, &hw, s);
                assert!((1.0..=2.0).contains(&sp), "{} at {s}: {sp}", hw.name);
            }
        }
    }

    #[test]
    fn paper_testbed_reaches_about_1_4x_at_large_sizes() {
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let sp = max_speedup(&topo, &hw, 2_000_000_000);
        assert!((1.3..1.6).contains(&sp), "Eq. 18 speedup {sp:.2}");
    }

    #[test]
    fn nvlink_testbed_gains_almost_nothing() {
        // §7: when t_intra ≪ t_inter the max speedup collapses toward 1.
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::nvlink_dgx();
        let sp = max_speedup(&topo, &hw, 2_000_000_000);
        assert!(sp < 1.1, "NVLink speedup should be marginal, got {sp:.3}");
    }

    #[test]
    fn closed_form_matches_simulated_plan() {
        use crate::{a2a_time, AllToAll, NcclA2A, PipeA2A};
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let s = 640_000_000u64;
        let nccl_sim = a2a_time(&NcclA2A, &topo, &hw, s).unwrap().as_secs();
        let nccl_eq = t_nccl_a2a(&topo, &hw, s).as_secs();
        assert!((nccl_sim - nccl_eq).abs() / nccl_eq < 1e-6);
        let pipe_sim = a2a_time(&PipeA2A::new(), &topo, &hw, s).unwrap().as_secs();
        let pipe_eq = t_pipe_a2a(&topo, &hw, s).as_secs()
            + PipeA2A::new().plan(&topo, s).join_overhead().as_secs();
        assert!((pipe_sim - pipe_eq).abs() / pipe_eq < 1e-6);
    }
}
