//! Imbalanced all-to-all: plans from a per-pair traffic matrix.
//!
//! The uniform plans elsewhere in this crate assume every rank sends
//! `S/P` to every peer, but the paper's §2.1 is explicit that routing is
//! dynamic: "the number of assigned tokens for each expert is different
//! and the same expert may have a different number of tokens at different
//! training iterations ... the workloads of experts [can be] extremely
//! unbalanced". This module compiles A2A plans from an explicit
//! `[src][dst]` byte matrix, generates skewed matrices from routing
//! statistics, and quantifies the straggler effect that motivates both the
//! capacity factor (Eq. 1) and Faster-MoE's BERT OOM.

use rand::rngs::SmallRng;
use rand::Rng;
use schemoe_cluster::{HardwareProfile, Topology};
use schemoe_netsim::SimTime;

use crate::plan::{A2aPlan, SrOp, StreamAssignment};

/// A per-pair traffic matrix: `bytes[src][dst]`.
#[derive(Clone, Debug)]
pub struct TrafficMatrix {
    bytes: Vec<Vec<u64>>,
}

impl TrafficMatrix {
    /// Builds a matrix; every row must have `world_size` entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(bytes: Vec<Vec<u64>>) -> Self {
        let p = bytes.len();
        assert!(
            bytes.iter().all(|row| row.len() == p),
            "matrix must be square"
        );
        TrafficMatrix { bytes }
    }

    /// The uniform matrix: every pair carries `total_per_rank / P`.
    pub fn uniform(p: usize, total_per_rank: u64) -> Self {
        let per = total_per_rank / p as u64;
        TrafficMatrix {
            bytes: vec![vec![per; p]; p],
        }
    }

    /// A hot-expert matrix: a fraction `hot_share` of every rank's traffic
    /// is routed to `hot_rank`'s expert, the rest spreads evenly.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= hot_share <= 1.0` and `hot_rank < p`.
    pub fn hot_expert(p: usize, total_per_rank: u64, hot_rank: usize, hot_share: f64) -> Self {
        assert!((0.0..=1.0).contains(&hot_share), "hot_share out of range");
        assert!(hot_rank < p, "hot_rank out of range");
        let hot = (total_per_rank as f64 * hot_share) as u64;
        let rest = (total_per_rank - hot) / p as u64;
        let mut bytes = vec![vec![rest; p]; p];
        for row in bytes.iter_mut() {
            row[hot_rank] += hot;
        }
        TrafficMatrix { bytes }
    }

    /// A randomly skewed matrix: per-destination weights drawn from a
    /// heavy-tailed distribution (power of a uniform), normalized per row.
    pub fn random_skewed(
        p: usize,
        total_per_rank: u64,
        skew_power: f64,
        rng: &mut SmallRng,
    ) -> Self {
        let mut bytes = Vec::with_capacity(p);
        for _ in 0..p {
            let weights: Vec<f64> = (0..p)
                .map(|_| rng.gen_range(0.0f64..1.0).powf(skew_power))
                .collect();
            let sum: f64 = weights.iter().sum();
            let row: Vec<u64> = weights
                .iter()
                .map(|w| (total_per_rank as f64 * w / sum) as u64)
                .collect();
            bytes.push(row);
        }
        TrafficMatrix { bytes }
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.bytes.len()
    }

    /// Bytes from `src` to `dst`.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src][dst]
    }

    /// Total bytes received by `dst` (its expert's inbound tokens).
    pub fn received_by(&self, dst: usize) -> u64 {
        self.bytes.iter().map(|row| row[dst]).sum()
    }

    /// Max-over-mean of per-destination inbound bytes (1.0 = balanced).
    pub fn imbalance(&self) -> f64 {
        let p = self.world_size();
        let inbound: Vec<u64> = (0..p).map(|d| self.received_by(d)).collect();
        let total: u64 = inbound.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / p as f64;
        inbound.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// Clamps every destination's inbound traffic to `cap` bytes,
    /// mirroring the capacity factor: each sender's contribution to an
    /// over-subscribed destination is scaled down proportionally.
    pub fn with_capacity(&self, cap: u64) -> TrafficMatrix {
        let p = self.world_size();
        let mut out = self.bytes.clone();
        for d in 0..p {
            let inbound = self.received_by(d);
            if inbound > cap {
                let scale = cap as f64 / inbound as f64;
                for row in out.iter_mut() {
                    row[d] = (row[d] as f64 * scale) as u64;
                }
            }
        }
        TrafficMatrix { bytes: out }
    }

    /// Compiles a sequential (NCCL-style) plan from this matrix.
    pub fn nccl_plan(&self, topo: &Topology) -> A2aPlan {
        let p = topo.world_size();
        assert_eq!(p, self.world_size(), "matrix/topology mismatch");
        let mut ops = Vec::with_capacity(p * p);
        for src in topo.ranks() {
            for step in 0..p {
                let dst = (src + step) % p;
                ops.push(SrOp {
                    owner: src,
                    src,
                    dst,
                    bytes: self.get(src, dst),
                    stream: StreamAssignment::Main,
                    exclusive_intra: false,
                });
            }
        }
        A2aPlan::new("nccl-a2a(matrix)", vec![ops])
    }

    /// Compiles a Pipe-A2A plan from this matrix.
    pub fn pipe_plan(&self, topo: &Topology) -> A2aPlan {
        let p = topo.world_size();
        assert_eq!(p, self.world_size(), "matrix/topology mismatch");
        let mut ops = Vec::with_capacity(p * p);
        for src in topo.ranks() {
            for step in 0..p {
                let dst = (src + step) % p;
                if topo.same_node(src, dst) {
                    ops.push(SrOp {
                        owner: src,
                        src,
                        dst,
                        bytes: self.get(src, dst),
                        stream: StreamAssignment::Main,
                        exclusive_intra: false,
                    });
                }
            }
            for step in 0..p {
                let dst = (src + step) % p;
                if !topo.same_node(src, dst) {
                    ops.push(SrOp {
                        owner: src,
                        src,
                        dst,
                        bytes: self.get(src, dst),
                        stream: StreamAssignment::Secondary,
                        exclusive_intra: false,
                    });
                }
            }
        }
        A2aPlan::new("pipe-a2a(matrix)", vec![ops]).with_join_overhead(SimTime::from_us(150.0))
    }
}

/// The straggler factor of a matrix under an algorithm: makespan divided
/// by the makespan of the balanced matrix with the same total volume.
pub fn straggler_factor(matrix: &TrafficMatrix, topo: &Topology, hw: &HardwareProfile) -> f64 {
    let p = matrix.world_size() as u64;
    let total: u64 = (0..matrix.world_size())
        .map(|d| matrix.received_by(d))
        .sum();
    let uniform = TrafficMatrix::uniform(matrix.world_size(), total / p);
    let skewed_t = matrix
        .nccl_plan(topo)
        .simulate(topo, hw)
        .expect("valid")
        .makespan();
    let uniform_t = uniform
        .nccl_plan(topo)
        .simulate(topo, hw)
        .expect("valid")
        .makespan();
    skewed_t / uniform_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_tensor_seed::seeded;

    // A tiny local shim to avoid a dev-dependency cycle: the crate's tests
    // only need a deterministic SmallRng.
    mod schemoe_tensor_seed {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        pub fn seeded(seed: u64) -> SmallRng {
            SmallRng::seed_from_u64(seed)
        }
    }

    use crate::AllToAll;

    fn env() -> (Topology, HardwareProfile) {
        (Topology::paper_testbed(), HardwareProfile::paper_testbed())
    }

    #[test]
    fn uniform_matrix_is_balanced() {
        let m = TrafficMatrix::uniform(8, 8_000_000);
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(m.received_by(3), 8_000_000);
    }

    #[test]
    fn hot_expert_concentrates_inbound_traffic() {
        let m = TrafficMatrix::hot_expert(8, 8_000_000, 2, 0.5);
        assert!(m.imbalance() > 3.0, "imbalance {}", m.imbalance());
        assert!(m.received_by(2) > 4 * m.received_by(0));
    }

    #[test]
    fn capacity_clamp_restores_balance() {
        let p = 8;
        let total = 8_000_000u64;
        let m = TrafficMatrix::hot_expert(p, total, 0, 0.75);
        // Eq. 1 with f=1.25: cap = 1.25 × the balanced per-expert share.
        let fair_share = (total * p as u64) as f64 / p as f64;
        let cap = (1.25 * fair_share) as u64;
        let clamped = m.with_capacity(cap);
        // The hot expert's inbound drops to at most f × the fair share
        // (capacity drops traffic, so the post-clamp mean shrinks — the
        // bound is against the *original* fair share, as in Eq. 1).
        assert!(clamped.received_by(0) <= cap);
        assert!(clamped.received_by(0) as f64 / fair_share <= 1.26);
        // Non-hot destinations are untouched.
        assert_eq!(clamped.get(1, 3), m.get(1, 3));
    }

    #[test]
    fn stragglers_slow_the_whole_collective() {
        let (topo, hw) = env();
        let balanced = TrafficMatrix::uniform(32, 64_000_000);
        assert!((straggler_factor(&balanced, &topo, &hw) - 1.0).abs() < 1e-9);
        let skewed = TrafficMatrix::hot_expert(32, 64_000_000, 5, 0.6);
        let factor = straggler_factor(&skewed, &topo, &hw);
        assert!(factor > 1.5, "hot expert should straggle: {factor:.2}");
        // Capacity clamping (the paper's Eq. 1 defence) restores most of it.
        let cap = (1.2 * 64_000_000.0) as u64;
        let fixed = straggler_factor(&skewed.with_capacity(cap), &topo, &hw);
        assert!(
            fixed < factor * 0.75,
            "capacity should tame stragglers: {fixed:.2}"
        );
    }

    #[test]
    fn random_skew_grows_with_the_power() {
        let mut rng = seeded(5);
        let mild = TrafficMatrix::random_skewed(16, 1_000_000, 1.0, &mut rng);
        let harsh = TrafficMatrix::random_skewed(16, 1_000_000, 6.0, &mut rng);
        assert!(harsh.imbalance() > mild.imbalance());
    }

    #[test]
    fn matrix_plans_match_uniform_plans_on_uniform_traffic() {
        let (topo, hw) = env();
        let s = 64_000_000u64;
        let m = TrafficMatrix::uniform(32, s);
        let matrix_t = m.nccl_plan(&topo).simulate(&topo, &hw).unwrap().makespan();
        let uniform_t = crate::NcclA2A
            .plan(&topo, s)
            .simulate(&topo, &hw)
            .unwrap()
            .makespan();
        let rel = (matrix_t.as_secs() - uniform_t.as_secs()).abs() / uniform_t.as_secs();
        assert!(rel < 1e-6, "matrix and uniform plans diverge: {rel}");
    }

    #[test]
    fn pipe_still_beats_nccl_under_skew() {
        let (topo, hw) = env();
        let m = TrafficMatrix::hot_expert(32, 640_000_000, 3, 0.4);
        let nccl = m.nccl_plan(&topo).simulate(&topo, &hw).unwrap().makespan();
        let pipe =
            m.pipe_plan(&topo).simulate(&topo, &hw).unwrap().makespan() + SimTime::from_us(150.0);
        assert!(pipe < nccl);
    }
}
