//! All-to-all collective algorithms (the paper's `AbsAlltoAll`).
//!
//! Four algorithms are implemented, matching §5 and the Fig. 9 evaluation:
//!
//! * [`NcclA2A`] — the NCCL-style baseline: every rank performs its `P`
//!   send/recv pairs sequentially on one stream (paper Eq. 17).
//! * [`OneDimHierA2A`] — Hetu's 1D-hierarchical algorithm: gather onto a
//!   node leader, leader-to-leader exchange, scatter. Few inter-node
//!   messages, but the leader stages `M×` the data (the OOM mechanism of
//!   Fig. 9c).
//! * [`TwoDimHierA2A`] — Tutel/DeepSpeed-MoE's 2D-hierarchical algorithm:
//!   an intra-node phase regroups data by destination local index, then an
//!   inter-node phase exchanges along same-local-index "rails".
//! * [`PipeA2A`] — the paper's contribution: intra-node pairs are issued on
//!   one stream and inter-node pairs on another, so the two kinds of link
//!   are busy *simultaneously* (paper Eq. 16, Fig. 7).
//!
//! Every algorithm exists in two coupled forms behind the one [`AllToAll`]
//! trait: a **functional** implementation moving real bytes over the
//! in-process [`schemoe_cluster::fabric`] (tested for exact equivalence
//! against the direct exchange), and a **plan** ([`A2aPlan`]) of
//! send/recv pairs on streams that the discrete-event simulator times
//! against a [`HardwareProfile`]. The plan is derived from the same phase
//! structure the functional code executes, so what we time is what we
//! tested.

pub mod allreduce;
pub mod analysis;
mod hier1d;
mod hier2d;
pub mod imbalance;
mod nccl;
mod pipe;
pub mod plan;
pub mod primitives;

pub use allreduce::{AllReduce, NaiveAllReduce, RingAllReduce};
pub use hier1d::OneDimHierA2A;
pub use hier2d::TwoDimHierA2A;
pub use imbalance::{straggler_factor, TrafficMatrix};
pub use nccl::NcclA2A;
pub use pipe::PipeA2A;
pub use plan::{A2aPlan, SrOp, StreamAssignment};

use bytes::Bytes;
use schemoe_cluster::{FabricError, HardwareProfile, RankHandle, Topology};
use schemoe_netsim::{SimError, SimTime};

/// Tag-space stride reserved per collective invocation.
///
/// Callers that issue several all-to-alls on the same fabric must step
/// their `tag_base` by at least this much between invocations.
pub const TAG_STRIDE: u64 = 1 << 24;

/// Tag lanes carved out of one [`TAG_STRIDE`] window by the MoE layer.
///
/// A single MoE layer invocation owns `[tag_base, tag_base + TAG_STRIDE)`
/// and quarters it into four lanes — one per logical exchange of the
/// forward/backward pass. Within a lane, the overlapped pipeline offsets
/// by the chunk index (see [`chunk_tag`]), so the `r` in-flight chunk
/// exchanges of ScheMoE's pipelining never collide. The serial path is the
/// degenerate `chunk = 0` case of the same scheme, which is what keeps the
/// two paths wire-compatible.
pub mod lanes {
    use super::TAG_STRIDE;

    /// Forward dispatch: tokens travel to their experts' owner ranks.
    pub const LANE_DISPATCH: u64 = 0;
    /// Forward combine: expert outputs travel back to the token owners.
    pub const LANE_COMBINE: u64 = TAG_STRIDE / 4;
    /// Backward: output gradients travel to the expert owner ranks.
    pub const LANE_BWD_GRAD: u64 = TAG_STRIDE / 2;
    /// Backward: input gradients travel back to the token owners.
    pub const LANE_BWD_RETURN: u64 = 3 * (TAG_STRIDE / 4);

    /// The lane a tag falls in, as a stable display name. Used to label
    /// recorded collective spans per lane.
    pub fn lane_name(tag: u64) -> &'static str {
        match (tag % TAG_STRIDE) / (TAG_STRIDE / 4) {
            0 => "dispatch",
            1 => "combine",
            2 => "bwd_grad",
            _ => "bwd_return",
        }
    }
}

/// Opens the per-lane observability span every functional exchange records:
/// category `"coll"`, name `"{algorithm}:{lane}"`, size = total payload
/// bytes this rank contributes. No-op (and allocation-free) while the
/// recorder is disabled.
fn coll_span(alg: &str, tag: u64, chunks: &[Bytes]) -> schemoe_obs::SpanGuard {
    if !schemoe_obs::enabled() {
        return schemoe_obs::span("coll", String::new());
    }
    let bytes: usize = chunks.iter().map(Bytes::len).sum();
    schemoe_obs::span_sized(
        "coll",
        format!("{alg}:{}", lanes::lane_name(tag)),
        bytes as f64,
    )
}

/// Hard ceiling on the pipeline partition degree `r`.
///
/// A lane is `TAG_STRIDE / 4` tags wide and the serial path's hosted
/// failover legs occupy `lane + 1 + rank` (ranks ≤ 64), so 4096 chunks per
/// lane leaves both schemes collision-free with orders of magnitude to
/// spare. Configuration layers cap degrees here at construction so a
/// misconfigured degree fails loudly instead of silently colliding tags
/// across lanes in a release build.
pub const MAX_PARTITION_DEGREE: usize = 4096;

/// The tag for chunk `chunk` of the exchange in `lane`, under `tag_base`.
///
/// # Panics
///
/// Panics (in every build profile) if `chunk` would overflow its lane —
/// a collision here silently crosses gradient and activation traffic, so
/// the guard must not compile away in release builds.
pub fn chunk_tag(tag_base: u64, lane: u64, chunk: usize) -> u64 {
    assert!(
        chunk < MAX_PARTITION_DEGREE && (chunk as u64) < TAG_STRIDE / 4,
        "chunk {chunk} overflows its lane (max degree {MAX_PARTITION_DEGREE})"
    );
    tag_base + lane + chunk as u64
}

/// The `AbsAlltoAll` abstraction: a complete exchange where rank `i`'s
/// `chunks[j]` ends up at rank `j` as `received[i]`.
pub trait AllToAll: Send + Sync {
    /// Stable algorithm name used in reports and registries.
    fn name(&self) -> &'static str;

    /// Executes the exchange on the functional fabric.
    ///
    /// `chunks[j]` is this rank's payload for rank `j` (length must be the
    /// world size); the result's element `j` is the payload rank `j` sent
    /// to this rank. `tag_base` namespaces this invocation's messages; use
    /// multiples of [`TAG_STRIDE`].
    fn all_to_all(
        &self,
        handle: &mut RankHandle,
        chunks: Vec<Bytes>,
        tag_base: u64,
    ) -> Result<Vec<Bytes>, FabricError>;

    /// Compiles the algorithm into a simulatable plan for a uniform
    /// exchange of `input_bytes` total per rank.
    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan;

    /// Peak per-GPU staging-buffer requirement for the exchange, beyond
    /// the caller's own input and output tensors.
    fn staging_bytes(&self, _topo: &Topology, _input_bytes: u64) -> u64 {
        0
    }
}

/// Simulated wall time of one exchange of `input_bytes` per rank.
///
/// Convenience wrapper: compile the plan and run it against `hw`.
pub fn a2a_time(
    alg: &dyn AllToAll,
    topo: &Topology,
    hw: &HardwareProfile,
    input_bytes: u64,
) -> Result<SimTime, SimError> {
    let plan = alg.plan(topo, input_bytes);
    Ok(plan.simulate(topo, hw)?.makespan() + plan.join_overhead())
}

/// Whether an exchange of `input_bytes` fits in device memory.
///
/// Accounts for the caller's input and output tensors plus the algorithm's
/// staging buffers against the profile's capacity, leaving `reserved` bytes
/// for the rest of the application.
pub fn a2a_fits_memory(
    alg: &dyn AllToAll,
    topo: &Topology,
    hw: &HardwareProfile,
    input_bytes: u64,
    reserved: u64,
) -> bool {
    let mut budget = schemoe_cluster::MemoryBudget::new(hw.gpu_mem_bytes);
    budget
        .add("a2a input", input_bytes)
        .add("a2a output", input_bytes)
        .add("staging", alg.staging_bytes(topo, input_bytes))
        .add("reserved", reserved);
    budget.fits()
}

/// Reference all-to-all used as the correctness oracle in tests: a direct
/// tagged exchange with no algorithmic structure.
pub fn reference_all_to_all(
    handle: &mut RankHandle,
    chunks: Vec<Bytes>,
    tag_base: u64,
) -> Result<Vec<Bytes>, FabricError> {
    let p = handle.world_size();
    assert_eq!(chunks.len(), p, "one chunk per destination rank required");
    let _span = coll_span("ref", tag_base, &chunks);
    for (j, chunk) in chunks.into_iter().enumerate() {
        handle.send(j, tag_base, chunk)?;
    }
    let mut out = Vec::with_capacity(p);
    for j in 0..p {
        out.push(handle.recv(j, tag_base)?);
    }
    Ok(out)
}

/// Direct tagged exchange with a liveness deadline on every receive.
///
/// Identical routing to [`reference_all_to_all`], but each receive gives up
/// with [`FabricError::Timeout`] after `timeout` instead of hanging on a
/// silent peer. This is the per-chunk exchange the overlapped MoE pipeline
/// issues on its communication worker: with `r` chunks in flight the cost
/// of a wedged peer is a loud error within one deadline, not a stuck job.
pub fn reference_all_to_all_timeout(
    handle: &mut RankHandle,
    chunks: Vec<Bytes>,
    tag: u64,
    timeout: std::time::Duration,
) -> Result<Vec<Bytes>, FabricError> {
    let p = handle.world_size();
    assert_eq!(chunks.len(), p, "one chunk per destination rank required");
    let _span = coll_span("ref", tag, &chunks);
    for (j, chunk) in chunks.into_iter().enumerate() {
        handle.send(j, tag, chunk)?;
    }
    let mut out = Vec::with_capacity(p);
    for j in 0..p {
        out.push(handle.recv_timeout(j, tag, timeout)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_cluster::Fabric;

    #[test]
    fn reference_exchange_routes_correctly() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank() as u8;
            let chunks: Vec<Bytes> = (0..h.world_size())
                .map(|j| Bytes::copy_from_slice(&[me, j as u8]))
                .collect();
            reference_all_to_all(&mut h, chunks, 0).unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(payload.as_ref(), &[j as u8, me as u8]);
            }
        }
    }

    #[test]
    fn timeout_exchange_matches_reference() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank() as u8;
            let chunks: Vec<Bytes> = (0..h.world_size())
                .map(|j| Bytes::copy_from_slice(&[me, j as u8]))
                .collect();
            reference_all_to_all_timeout(
                &mut h,
                chunks,
                chunk_tag(0, lanes::LANE_DISPATCH, 3),
                std::time::Duration::from_secs(10),
            )
            .unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(payload.as_ref(), &[j as u8, me as u8]);
            }
        }
    }

    #[test]
    fn chunk_tags_never_collide_across_lanes() {
        // Every (lane, chunk) pair within one tag_base window is distinct,
        // and windows themselves stay disjoint.
        let lanes_all = [
            lanes::LANE_DISPATCH,
            lanes::LANE_COMBINE,
            lanes::LANE_BWD_GRAD,
            lanes::LANE_BWD_RETURN,
        ];
        let mut seen = std::collections::HashSet::new();
        for base in [0, TAG_STRIDE, 7 * TAG_STRIDE] {
            for lane in lanes_all {
                for chunk in 0..64 {
                    assert!(seen.insert(chunk_tag(base, lane, chunk)));
                }
            }
        }
    }
}
