//! 1D-hierarchical all-to-all (HetuMoE style).

use std::collections::HashMap;

use bytes::Bytes;
use schemoe_cluster::{FabricError, Rank, RankHandle, Topology};

use crate::plan::{A2aPlan, SrOp, StreamAssignment};
use crate::AllToAll;

/// 1D-hierarchical all-to-all: gather every rank's full payload onto its
/// node leader, exchange between leaders only, then scatter.
///
/// The inter-node message count drops from `P−M` per rank to `N−1` per
/// *node*, but the leader stages `M×` the per-rank payload in both
/// directions — the memory-concentration behaviour behind the OOM the
/// paper observes at large message sizes (Fig. 9c) — and the gather and
/// scatter phases move almost the entire node payload over the (slow)
/// intra-node links, which is why 1DH loses at every size on PCIe-class
/// testbeds (Fig. 9a–b).
#[derive(Clone, Copy, Debug, Default)]
pub struct OneDimHierA2A;

impl OneDimHierA2A {
    fn leader_of(topo: &Topology, rank: Rank) -> Rank {
        topo.rank_of(topo.node_of(rank), 0)
    }
}

impl AllToAll for OneDimHierA2A {
    fn name(&self) -> &'static str {
        "1dh-a2a"
    }

    fn all_to_all(
        &self,
        handle: &mut RankHandle,
        chunks: Vec<Bytes>,
        tag_base: u64,
    ) -> Result<Vec<Bytes>, FabricError> {
        let topo = handle.topology();
        let p = topo.world_size();
        assert_eq!(chunks.len(), p, "one chunk per destination rank required");
        let _span = crate::coll_span("1dh", tag_base, &chunks);
        let me = handle.rank();
        let my_node = topo.node_of(me);
        let leader = Self::leader_of(&topo, me);
        let is_leader = me == leader;
        // Tag layout within this invocation's namespace:
        //   gather:  tag_base + dst            (dst < P)
        //   exchange: tag_base + P + src*P+dst (< P + P²)
        //   scatter: tag_base + P + P² + src   (< 2P + P²)
        let t_gather = |dst: usize| tag_base + dst as u64;
        let t_xchg = |src: usize, dst: usize| tag_base + p as u64 + (src * p + dst) as u64;
        let t_scatter = |src: usize| tag_base + (p + p * p) as u64 + src as u64;

        if !is_leader {
            // Phase 1: ship everything to the leader.
            for (dst, chunk) in chunks.into_iter().enumerate() {
                handle.send(leader, t_gather(dst), chunk)?;
            }
            // Phase 3: receive my whole output from the leader.
            let mut out = Vec::with_capacity(p);
            for src in 0..p {
                out.push(handle.recv(leader, t_scatter(src))?);
            }
            return Ok(out);
        }

        // Leader: collect (src, dst) -> chunk for every src on this node.
        let mut staged: HashMap<(Rank, Rank), Bytes> = HashMap::new();
        for (dst, chunk) in chunks.into_iter().enumerate() {
            staged.insert((me, dst), chunk);
        }
        for src in topo.node_ranks(my_node) {
            if src == me {
                continue;
            }
            for dst in 0..p {
                let chunk = handle.recv(src, t_gather(dst))?;
                staged.insert((src, dst), chunk);
            }
        }

        // Phase 2: leader-to-leader exchange of node-to-node bundles.
        for dst_node in 0..topo.nodes() {
            if dst_node == my_node {
                continue;
            }
            let peer_leader = topo.rank_of(dst_node, 0);
            for src in topo.node_ranks(my_node) {
                for dst in topo.node_ranks(dst_node) {
                    let chunk = staged
                        .remove(&(src, dst))
                        .expect("gathered every local chunk");
                    handle.send(peer_leader, t_xchg(src, dst), chunk)?;
                }
            }
        }
        for src_node in 0..topo.nodes() {
            if src_node == my_node {
                continue;
            }
            let peer_leader = topo.rank_of(src_node, 0);
            for src in topo.node_ranks(src_node) {
                for dst in topo.node_ranks(my_node) {
                    let chunk = handle.recv(peer_leader, t_xchg(src, dst))?;
                    staged.insert((src, dst), chunk);
                }
            }
        }

        // Phase 3: deliver every destination's output.
        let mut my_out: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
        for dst in topo.node_ranks(my_node) {
            for src in 0..p {
                let chunk = staged.remove(&(src, dst)).expect("exchange complete");
                if dst == me {
                    my_out[src] = Some(chunk);
                } else {
                    handle.send(dst, t_scatter(src), chunk)?;
                }
            }
        }
        Ok(my_out
            .into_iter()
            .map(|o| o.expect("complete output"))
            .collect())
    }

    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan {
        let p = topo.world_size();
        let m = topo.gpus_per_node();
        let n = topo.nodes();
        let per_peer = input_bytes / p as u64;

        // Phase 1: each non-leader ships its whole payload to the leader;
        // the leader's ingress link serializes the arrivals.
        let mut gather = Vec::new();
        for node in 0..n {
            let leader = topo.rank_of(node, 0);
            for src in topo.node_ranks(node) {
                if src != leader {
                    gather.push(SrOp {
                        owner: leader,
                        src,
                        dst: leader,
                        bytes: input_bytes,
                        stream: StreamAssignment::Main,
                        exclusive_intra: true,
                    });
                }
            }
        }

        // Phase 2: leaders exchange M²·per_peer per node pair.
        let bundle = per_peer * (m * m) as u64;
        let mut exchange = Vec::new();
        for src_node in 0..n {
            let src_leader = topo.rank_of(src_node, 0);
            for step in 1..n {
                let dst_node = (src_node + step) % n;
                exchange.push(SrOp {
                    owner: src_leader,
                    src: src_leader,
                    dst: topo.rank_of(dst_node, 0),
                    bytes: bundle,
                    stream: StreamAssignment::Main,
                    exclusive_intra: false,
                });
            }
        }

        // Phase 3: scatter each non-leader's full output back.
        let mut scatter = Vec::new();
        for node in 0..n {
            let leader = topo.rank_of(node, 0);
            for dst in topo.node_ranks(node) {
                if dst != leader {
                    scatter.push(SrOp {
                        owner: leader,
                        src: leader,
                        dst,
                        bytes: per_peer * p as u64,
                        stream: StreamAssignment::Main,
                        exclusive_intra: true,
                    });
                }
            }
        }

        // Leader staging: the gathered node payload plus the exchanged
        // inbound bundles, both ≈ M × the per-rank payload.
        let staging = 2 * input_bytes * m as u64;
        A2aPlan::new(self.name(), vec![gather, exchange, scatter]).with_staging_bytes(staging)
    }

    fn staging_bytes(&self, topo: &Topology, input_bytes: u64) -> u64 {
        2 * input_bytes * topo.gpus_per_node() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{a2a_fits_memory, a2a_time, NcclA2A};
    use schemoe_cluster::{Fabric, HardwareProfile};

    #[test]
    fn functional_exchange_matches_reference() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank() as u8;
            let chunks: Vec<Bytes> = (0..h.world_size())
                .map(|j| Bytes::copy_from_slice(&[me, j as u8, me ^ j as u8]))
                .collect();
            OneDimHierA2A.all_to_all(&mut h, chunks, 0).unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(
                    payload.as_ref(),
                    &[j as u8, me as u8, (j ^ me) as u8],
                    "rank {me} slot {j}"
                );
            }
        }
    }

    #[test]
    fn functional_exchange_with_three_nodes() {
        let topo = Topology::new(3, 2);
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank() as u8;
            let chunks: Vec<Bytes> = (0..h.world_size())
                .map(|j| Bytes::copy_from_slice(&[me * 10 + j as u8]))
                .collect();
            OneDimHierA2A.all_to_all(&mut h, chunks, 0).unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(payload.as_ref(), &[(j * 10 + me) as u8]);
            }
        }
    }

    #[test]
    fn slower_than_nccl_on_paper_testbed() {
        // The gather/scatter phases move the full node payload over PCIe:
        // 1DH loses at small and median sizes (Fig. 9a–b).
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        for s in [1_000_000u64, 100_000_000] {
            let hier = a2a_time(&OneDimHierA2A, &topo, &hw, s).unwrap();
            let nccl = a2a_time(&NcclA2A, &topo, &hw, s).unwrap();
            assert!(
                hier > nccl,
                "at {s} bytes 1DH ({hier}) must lose to NCCL ({nccl})"
            );
        }
    }

    #[test]
    fn leader_staging_causes_oom_at_large_sizes() {
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        // 200 MB fits; 2 GB does not (staging is 2·M·S = 16 GB).
        assert!(a2a_fits_memory(
            &OneDimHierA2A,
            &topo,
            &hw,
            200_000_000,
            1 << 30
        ));
        assert!(!a2a_fits_memory(
            &OneDimHierA2A,
            &topo,
            &hw,
            2_000_000_000,
            1 << 30
        ));
        // NCCL at the same size is fine.
        assert!(a2a_fits_memory(
            &NcclA2A,
            &topo,
            &hw,
            2_000_000_000,
            1 << 30
        ));
    }
}
