//! One-to-all and all-to-one collective primitives.
//!
//! The hierarchical A2A algorithms and the data-parallel path are built
//! from broadcast / all-gather / reduce-scatter patterns; this module
//! provides them as first-class collectives with both functional and
//! simulated forms, completing the substrate a distributed training stack
//! needs (parameter broadcast at startup, all-gather for evaluation,
//! reduce-scatter as the first half of the ring all-reduce).

use bytes::Bytes;
use schemoe_cluster::{FabricError, Rank, RankHandle, Topology};

use crate::plan::{A2aPlan, SrOp, StreamAssignment};

/// Broadcasts `payload` from `root` to every rank (binomial tree).
///
/// Returns the payload on every rank (including the root). The tree gives
/// `⌈log₂ P⌉` rounds instead of the root's `P−1` serialized sends.
pub fn broadcast(
    handle: &mut RankHandle,
    root: Rank,
    payload: Option<Bytes>,
    tag: u64,
) -> Result<Bytes, FabricError> {
    let p = handle.world_size();
    let me = handle.rank();
    // Work in a rotated space where the root is virtual rank 0. In round
    // j (k = 2^j), every virtual rank v < k that already holds the data
    // sends to v + k; v receives in the round where k is its highest set
    // bit, from v − k (v with that bit cleared).
    let vrank = (me + p - root) % p;
    let data = if vrank == 0 {
        payload.expect("root must supply the payload")
    } else {
        let msb = usize::BITS - 1 - vrank.leading_zeros();
        let parent_v = vrank & !(1usize << msb);
        let parent = (parent_v + root) % p;
        handle.recv(parent, tag)?
    };
    // Forward in the rounds after the one that delivered to us.
    let first_round = if vrank == 0 {
        1usize
    } else {
        1usize << (usize::BITS - vrank.leading_zeros())
    };
    let mut k = first_round;
    while k < p {
        let child_v = vrank + k;
        if child_v < p {
            let child = (child_v + root) % p;
            handle.send(child, tag, data.clone())?;
        }
        k <<= 1;
    }
    Ok(data)
}

/// All-gather: every rank contributes `mine`; returns all contributions in
/// rank order (ring algorithm, `P−1` rounds of neighbour forwarding).
pub fn all_gather(
    handle: &mut RankHandle,
    mine: Bytes,
    tag: u64,
) -> Result<Vec<Bytes>, FabricError> {
    let p = handle.world_size();
    let me = handle.rank();
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    let mut out: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
    out[me] = Some(mine.clone());
    let mut carry = mine;
    for step in 0..p - 1 {
        handle.send(next, tag + step as u64, carry)?;
        carry = handle.recv(prev, tag + step as u64)?;
        let origin = (me + p - 1 - step) % p;
        out[origin] = Some(carry.clone());
    }
    Ok(out
        .into_iter()
        .map(|o| o.expect("ring delivered all"))
        .collect())
}

/// Reduce-scatter over f32 buffers: after the call, this rank's slice
/// `chunks[rank]` holds the elementwise sum of every rank's `chunks[rank]`.
///
/// `data` is interpreted as `P` contiguous chunks (the last padded chunk
/// may be shorter); returns this rank's reduced chunk.
pub fn reduce_scatter(
    handle: &mut RankHandle,
    data: &[f32],
    tag: u64,
) -> Result<Vec<f32>, FabricError> {
    let p = handle.world_size();
    let me = handle.rank();
    if p == 1 {
        return Ok(data.to_vec());
    }
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    let bounds = chunk_bounds(data.len(), p);
    let mut work = data.to_vec();
    // Ring reduce-scatter: after P−1 steps rank r owns the sum of chunk r.
    for step in 0..p - 1 {
        let send_chunk = (me + p - step) % p;
        let recv_chunk = (me + p - step - 1) % p;
        let (s0, s1) = bounds[send_chunk];
        let mut buf = Vec::with_capacity((s1 - s0) * 4);
        for &v in &work[s0..s1] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        handle.send(next, tag + step as u64, Bytes::from(buf))?;
        let payload = handle.recv(prev, tag + step as u64)?;
        let (r0, _) = bounds[recv_chunk];
        for (i, b) in payload.chunks_exact(4).enumerate() {
            work[r0 + i] += f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
    }
    // My owned chunk is (me + 1) % p after the rotation completes at...
    // After P−1 steps the chunk each rank holds fully reduced is
    // (me + p - (p-1)) % p = (me + 1) % p.
    let owned = (me + 1) % p;
    let (o0, o1) = bounds[owned];
    Ok(work[o0..o1].to_vec())
}

/// `P` contiguous chunk ranges covering `len`.
pub fn chunk_bounds(len: usize, p: usize) -> Vec<(usize, usize)> {
    let base = len / p;
    let rem = len % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let size = base + usize::from(i < rem);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Simulatable plan for a binomial-tree broadcast of `bytes` from rank 0.
pub fn broadcast_plan(topo: &Topology, bytes: u64) -> A2aPlan {
    let p = topo.world_size();
    let mut phases = Vec::new();
    let mut k = 1usize;
    while k < p {
        // Round k: every rank below k already holds the data and forwards.
        let ops: Vec<SrOp> = (0..k)
            .filter(|v| v + k < p)
            .map(|v| SrOp {
                owner: v,
                src: v,
                dst: v + k,
                bytes,
                stream: StreamAssignment::Main,
                exclusive_intra: false,
            })
            .collect();
        if !ops.is_empty() {
            phases.push(ops);
        }
        k <<= 1;
    }
    A2aPlan::new("binomial-broadcast", phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemoe_cluster::{Fabric, HardwareProfile};

    #[test]
    fn broadcast_reaches_every_rank_from_any_root() {
        for (nodes, gpus) in [(1usize, 2usize), (2, 2), (2, 3), (1, 8)] {
            let topo = Topology::new(nodes, gpus);
            for root in [0usize, topo.world_size() - 1] {
                let results = Fabric::run(topo, |mut h| {
                    let payload = (h.rank() == root).then(|| Bytes::from(format!("from-{root}")));
                    broadcast(&mut h, root, payload, 3).unwrap()
                });
                for (r, got) in results.iter().enumerate() {
                    assert_eq!(
                        got.as_ref(),
                        format!("from-{root}").as_bytes(),
                        "rank {r} root {root} on {nodes}x{gpus}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let topo = Topology::new(2, 3);
        let results = Fabric::run(topo, |mut h| {
            let mine = Bytes::from(vec![h.rank() as u8; 3]);
            all_gather(&mut h, mine, 0).unwrap()
        });
        for got in &results {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(payload.as_ref(), &[j as u8; 3]);
            }
        }
    }

    #[test]
    fn reduce_scatter_sums_owned_chunks() {
        let topo = Topology::new(1, 4);
        let len = 11; // uneven chunks exercise the remainder logic
        let results = Fabric::run(topo, |mut h| {
            let data: Vec<f32> = (0..len).map(|i| (h.rank() * 100 + i) as f32).collect();
            reduce_scatter(&mut h, &data, 0).unwrap()
        });
        let bounds = chunk_bounds(len, 4);
        for (me, got) in results.iter().enumerate() {
            let owned = (me + 1) % 4;
            let (o0, o1) = bounds[owned];
            assert_eq!(got.len(), o1 - o0);
            for (i, v) in got.iter().enumerate() {
                let idx = o0 + i;
                let want: f32 = (0..4).map(|r| (r * 100 + idx) as f32).sum();
                assert_eq!(*v, want, "rank {me} owned chunk {owned} idx {idx}");
            }
        }
    }

    #[test]
    fn broadcast_plan_is_logarithmic() {
        let topo = Topology::paper_testbed();
        let plan = broadcast_plan(&topo, 1_000_000);
        // 32 ranks -> 5 rounds.
        assert_eq!(plan.phases().len(), 5);
        let total_ops: usize = plan.phases().iter().map(Vec::len).sum();
        assert_eq!(total_ops, 31, "each non-root rank receives exactly once");
        // And it beats the root's sequential P-1 sends in the simulator.
        let hw = HardwareProfile::paper_testbed();
        let tree = plan.simulate(&topo, &hw).unwrap().makespan();
        let flat: f64 = 31.0 * hw.inter_sr(1_000_000).as_secs();
        assert!(tree.as_secs() < flat);
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for (len, p) in [(11usize, 4usize), (4, 4), (3, 5), (64, 8)] {
            let b = chunk_bounds(len, p);
            assert_eq!(b[0].0, 0);
            assert_eq!(b[p - 1].1, len);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }
}
