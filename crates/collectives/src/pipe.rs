//! Pipe-A2A: the paper's pipelined all-to-all (§5).

use bytes::Bytes;
use schemoe_cluster::{FabricError, RankHandle, Topology};
use schemoe_netsim::SimTime;

use crate::plan::{A2aPlan, SrOp, StreamAssignment};
use crate::AllToAll;

/// Pipelined all-to-all: intra-node send/recv pairs run on an
/// "Intra-Stream" while inter-node pairs run concurrently on an
/// "Inter-Stream" (paper Fig. 7).
///
/// Data movement is identical to [`crate::NcclA2A`]; only the issue order
/// and stream assignment change, so the simulated time follows the paper's
/// Eq. 16, `max(M·t1, (P−M)·t2)`, instead of Eq. 17's sum. A fixed
/// dual-stream join overhead is charged at the end, which is why the gain
/// at small message sizes is only a few percent (Fig. 9a).
#[derive(Clone, Copy, Debug)]
pub struct PipeA2A {
    join_overhead: SimTime,
}

impl PipeA2A {
    /// Creates the algorithm with the default 150 µs dual-stream join cost.
    pub fn new() -> Self {
        PipeA2A {
            join_overhead: SimTime::from_us(150.0),
        }
    }

    /// Overrides the dual-stream join overhead.
    pub fn with_join_overhead(mut self, overhead: SimTime) -> Self {
        self.join_overhead = overhead;
        self
    }
}

impl Default for PipeA2A {
    fn default() -> Self {
        Self::new()
    }
}

impl AllToAll for PipeA2A {
    fn name(&self) -> &'static str {
        "pipe-a2a"
    }

    fn all_to_all(
        &self,
        handle: &mut RankHandle,
        chunks: Vec<Bytes>,
        tag_base: u64,
    ) -> Result<Vec<Bytes>, FabricError> {
        let p = handle.world_size();
        assert_eq!(chunks.len(), p, "one chunk per destination rank required");
        let _span = crate::coll_span("pipe", tag_base, &chunks);
        let me = handle.rank();
        let topo = handle.topology();
        let mut out: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
        let mut chunks: Vec<Option<Bytes>> = chunks.into_iter().map(Some).collect();
        // Issue order mirrors the two streams: all intra-node peers first
        // (they complete on the fast local links), then inter-node peers.
        // Over the fabric both orders are functionally identical; keeping
        // the order explicit documents the algorithm and exercises the
        // same code path the plan encodes.
        let mut peers: Vec<usize> = (0..p).map(|s| (me + s) % p).collect();
        peers.sort_by_key(|&j| !topo.same_node(me, j));
        for &peer in &peers {
            let payload = chunks[peer].take().expect("each peer visited once");
            if peer == me {
                out[me] = Some(payload);
            } else {
                handle.send(peer, tag_base, payload)?;
            }
        }
        for &peer in &peers {
            if peer != me {
                out[peer] = Some(handle.recv(peer, tag_base)?);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("all peers received"))
            .collect())
    }

    fn plan(&self, topo: &Topology, input_bytes: u64) -> A2aPlan {
        let p = topo.world_size();
        let per_peer = input_bytes / p as u64;
        let mut ops = Vec::with_capacity(p * p);
        for src in topo.ranks() {
            // Intra pairs (and the self copy) on Main = Intra-Stream.
            for step in 0..p {
                let dst = (src + step) % p;
                if topo.same_node(src, dst) {
                    ops.push(SrOp {
                        owner: src,
                        src,
                        dst,
                        bytes: per_peer,
                        stream: StreamAssignment::Main,
                        exclusive_intra: false,
                    });
                }
            }
            // Inter pairs on Secondary = Inter-Stream.
            for step in 0..p {
                let dst = (src + step) % p;
                if !topo.same_node(src, dst) {
                    ops.push(SrOp {
                        owner: src,
                        src,
                        dst,
                        bytes: per_peer,
                        stream: StreamAssignment::Secondary,
                        exclusive_intra: false,
                    });
                }
            }
        }
        A2aPlan::new(self.name(), vec![ops]).with_join_overhead(self.join_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NcclA2A;
    use schemoe_cluster::{Fabric, HardwareProfile};

    #[test]
    fn plan_time_matches_eq16_plus_join() {
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let s: u64 = 640_000_000;
        let per = s / 32;
        let alg = PipeA2A::new();
        let t = crate::a2a_time(&alg, &topo, &hw, s).unwrap();
        let intra = hw.self_copy(per).as_secs() + 3.0 * hw.intra_sr(per).as_secs();
        let inter = 28.0 * hw.inter_sr(per).as_secs();
        let expected = intra.max(inter) + alg.join_overhead.as_secs();
        assert!(
            (t.as_secs() - expected).abs() < 1e-9,
            "sim {} vs closed form {}",
            t.as_secs(),
            expected
        );
    }

    #[test]
    fn beats_nccl_at_large_sizes() {
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let s: u64 = 2_000_000_000;
        let pipe = crate::a2a_time(&PipeA2A::new(), &topo, &hw, s).unwrap();
        let nccl = crate::a2a_time(&NcclA2A, &topo, &hw, s).unwrap();
        let speedup = nccl / pipe;
        assert!(
            (1.25..1.6).contains(&speedup),
            "Pipe-A2A speedup over NCCL at 2 GB should be ≈1.4×, got {speedup:.2}"
        );
    }

    #[test]
    fn small_sizes_gain_little() {
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        let s: u64 = 1_000_000;
        let pipe = crate::a2a_time(&PipeA2A::new(), &topo, &hw, s).unwrap();
        let nccl = crate::a2a_time(&NcclA2A, &topo, &hw, s).unwrap();
        let speedup = nccl / pipe;
        assert!(
            (0.95..1.25).contains(&speedup),
            "small-message speedup should be marginal, got {speedup:.2}"
        );
    }

    #[test]
    fn functional_exchange_matches_reference() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let me = h.rank() as u8;
            let chunks: Vec<Bytes> = (0..h.world_size())
                .map(|j| Bytes::copy_from_slice(&[me * 16 + j as u8]))
                .collect();
            PipeA2A::new().all_to_all(&mut h, chunks, 0).unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            for (j, payload) in got.iter().enumerate() {
                assert_eq!(payload.as_ref(), &[(j * 16 + me) as u8]);
            }
        }
    }
}
