//! Layer shape descriptors shared by every system implementation.

use std::time::Duration;

use schemoe_cluster::{AdaptiveDeadline, FaultPlan};
use schemoe_compression::{Compressor, Fp16Compressor, NoCompression};
use schemoe_models::{DomainMap, FtConfig};
use schemoe_moe::DistributedMoeLayer;
use serde::{Deserialize, Serialize};

/// The size parameters of one MoE layer on one GPU (paper Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerShape {
    /// Tokens per GPU per step, `B × L`.
    pub tokens_per_gpu: usize,
    /// Embedding size `M`.
    pub model_dim: usize,
    /// Expert hidden size `H`.
    pub hidden_dim: usize,
    /// Total experts `E`.
    pub experts: usize,
    /// Top-k routing.
    pub k: usize,
    /// Capacity factor `f`.
    pub capacity_factor: f64,
}

impl LayerShape {
    /// Assigned tokens per GPU after capacity padding, `f · k · B · L`.
    pub fn assigned_tokens(&self) -> usize {
        (self.capacity_factor * self.k as f64 * self.tokens_per_gpu as f64).ceil() as usize
    }

    /// Per-GPU A2A payload in bytes (Eq. 2, fp32).
    pub fn a2a_bytes(&self) -> u64 {
        self.assigned_tokens() as u64 * self.model_dim as u64 * 4
    }

    /// Forward expert FLOPs per GPU (two GEMMs over the assigned tokens).
    pub fn expert_flops(&self) -> u64 {
        4 * self.assigned_tokens() as u64 * self.model_dim as u64 * self.hidden_dim as u64
    }

    /// Per-GPU expert weight bytes with experts sharded over `world` GPUs
    /// (fp32 value + grad + two Adam moments).
    pub fn expert_state_bytes(&self, world: usize) -> u64 {
        let local = self.experts.div_ceil(world).max(1) as u64;
        let params =
            (2 * self.model_dim * self.hidden_dim + self.model_dim + self.hidden_dim) as u64;
        local * params * 16
    }

    /// A `schemoe-scheduler` cost descriptor for this shape.
    pub fn costs(&self, compression_ratio: f64) -> schemoe_scheduler::MoeLayerCosts {
        schemoe_scheduler::MoeLayerCosts {
            tokens: self.assigned_tokens(),
            model_dim: self.model_dim,
            hidden_dim: self.hidden_dim,
            compression_ratio,
        }
    }
}

/// A serializable description of a deterministic fault-injection campaign.
///
/// This is the manifest form of [`schemoe_cluster::FaultPlan`]: a flat,
/// `Copy`, serde-friendly record of uniform link faults and at most one
/// rank kill, so chaos experiments can be specified in configuration
/// files and replayed bit-identically from the same seed. Experiments
/// needing per-link asymmetry build a [`FaultPlan`] directly with its
/// builder API.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the fault lottery; same seed, same faults, any thread
    /// interleaving.
    pub seed: u64,
    /// Probability that a message silently vanishes.
    pub drop_prob: f64,
    /// Probability that a message is stalled by `delay_ms`.
    pub delay_prob: f64,
    /// Stall duration for delayed messages, in milliseconds.
    pub delay_ms: u64,
    /// Probability that a payload bit is flipped in transit (caught by the
    /// wire CRC as [`schemoe_cluster::FabricError::Corrupt`]).
    pub corrupt_prob: f64,
    /// Rank to kill, if any.
    pub kill_rank: Option<usize>,
    /// The kill fires once the victim has issued this many sends.
    pub kill_after_sends: u64,
    /// Rank whose pipe reopens after death, if any — the elastic-membership
    /// scenario: the rank re-announces itself and rejoins under a fresh
    /// membership epoch.
    pub revive_rank: Option<usize>,
    /// The revival fires once the dead rank has issued this many send
    /// *attempts* (probes while dead count), so the dead window is
    /// `[kill_after_sends, revive_after_sends)` in the victim's own
    /// attempt counter — pure in the plan, never in wall clock.
    pub revive_after_sends: u64,
    /// Default receive deadline installed on every handle, in
    /// milliseconds — under faults a lost message must become a loud
    /// `Timeout`, never a hang.
    pub recv_deadline_ms: u64,
    /// Liveness-board poll slice, in milliseconds: how often a deadlined
    /// receive interrupts its wait to check whether the awaited peer has
    /// posted its own death. Smaller slices fail faster against a
    /// provably-dead peer at the cost of more wakeups.
    pub board_poll_ms: u64,
}

impl FaultSpec {
    /// A fault-free campaign with the given seed and a 1 s deadline.
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_ms: 0,
            corrupt_prob: 0.0,
            kill_rank: None,
            kill_after_sends: 0,
            revive_rank: None,
            revive_after_sends: 0,
            recv_deadline_ms: 1_000,
            board_poll_ms: 5,
        }
    }

    /// Sets the uniform drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the uniform delay probability and duration.
    pub fn with_delay(mut self, p: f64, ms: u64) -> Self {
        self.delay_prob = p;
        self.delay_ms = ms;
        self
    }

    /// Sets the uniform corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Kills `rank` after it has issued `sends` sends.
    pub fn with_kill(mut self, rank: usize, sends: u64) -> Self {
        self.kill_rank = Some(rank);
        self.kill_after_sends = sends;
        self
    }

    /// Reopens `rank`'s pipe once it has issued `sends` send attempts
    /// (typically `kill_after_sends` plus a dead window).
    pub fn with_revive(mut self, rank: usize, sends: u64) -> Self {
        self.revive_rank = Some(rank);
        self.revive_after_sends = sends;
        self
    }

    /// Overrides the default receive deadline.
    pub fn with_recv_deadline_ms(mut self, ms: u64) -> Self {
        self.recv_deadline_ms = ms;
        self
    }

    /// Overrides the liveness-board poll slice.
    pub fn with_board_poll_ms(mut self, ms: u64) -> Self {
        self.board_poll_ms = ms;
        self
    }

    /// Materializes the runtime [`FaultPlan`] this spec describes.
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::seeded(self.seed)
            .with_drop_prob(self.drop_prob)
            .with_delay(self.delay_prob, Duration::from_millis(self.delay_ms))
            .with_corrupt_prob(self.corrupt_prob)
            .with_recv_deadline(Duration::from_millis(self.recv_deadline_ms))
            .with_board_poll(Duration::from_millis(self.board_poll_ms));
        if let Some(rank) = self.kill_rank {
            plan = plan.kill_after(rank, self.kill_after_sends);
        }
        if let Some(rank) = self.revive_rank {
            plan = plan.revive_after(rank, self.revive_after_sends);
        }
        plan
    }
}

/// Buddy-replication policy: how often each rank streams its expert state
/// (weights + optimizer velocity) to its ring buddy at `(rank + 1) mod n`.
///
/// Replication trades bandwidth for staleness: with `interval == K` the
/// buddy's warm copy lags the live expert by at most `K` committed steps,
/// which is exactly the training the cluster loses when a rank dies and
/// its buddy activates the replica. `interval == 0` disables replication
/// (the PR 3 behaviour: a dead rank's expert is an expert-shaped hole
/// until rejoin).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaSpec {
    /// Replication quantum in committed steps; `0` disables.
    pub interval: usize,
    /// Optional per-rank failure-domain labels (rack, host, power feed).
    /// When present, each rank's buddy becomes the next rank in a
    /// *different* domain (`schemoe_models::buddy_of`), so losing one
    /// whole domain never takes an expert together with its replica.
    /// `None` keeps the plain `(rank + 1) mod n` ring.
    pub domains: Option<DomainMap>,
}

impl ReplicaSpec {
    /// Replicate every `interval` committed steps.
    pub fn every(interval: usize) -> Self {
        ReplicaSpec {
            interval,
            domains: None,
        }
    }

    /// Steers buddy placement with per-rank failure-domain labels (one
    /// label per rank, up to 16 domains, up to 64 ranks).
    pub fn with_domains(mut self, labels: &[u8]) -> Self {
        self.domains = Some(DomainMap::from_labels(labels));
        self
    }

    /// Applies this policy to a fault-tolerant trainer configuration.
    pub fn apply(&self, mut cfg: FtConfig) -> FtConfig {
        cfg.replica_interval = self.interval;
        cfg.replica_domains = self.domains;
        cfg
    }
}

/// Recovery policy of the fault-tolerant training loop
/// (`schemoe_models::ft`): how patiently a step is retried, how often the
/// model is checkpointed, how eagerly revived ranks are re-admitted, and
/// how straggler deadlines adapt to the observed receive-wait tail.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoverySpec {
    /// Transient-fault retries per step before a silent peer is presumed
    /// dead.
    pub retry_budget: u32,
    /// Base backoff between retries, in milliseconds.
    pub backoff_ms: u64,
    /// Checkpoint cadence in committed steps.
    pub checkpoint_every: usize,
    /// Committed-step cadence at which survivors poll for rejoin
    /// announcements from revived ranks. `0` disables elastic rejoin.
    pub rejoin_check_every: usize,
    /// Adaptive straggler-deadline margin: the per-link receive deadline
    /// stretches to `p99 × margin` of that link's observed waits, clamped
    /// below. `0.0` (the default) keeps deadlines fixed.
    pub deadline_margin: f64,
    /// Lower clamp of the adapted deadline, in milliseconds.
    pub deadline_floor_ms: u64,
    /// Upper clamp of the adapted deadline, in milliseconds — past this a
    /// straggler is indistinguishable from a dead rank and the vote takes
    /// over.
    pub deadline_ceiling_ms: u64,
    /// Observed waits a link must accumulate before its deadline adapts;
    /// until then the configured deadline applies unchanged.
    pub deadline_min_samples: u64,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        RecoverySpec {
            retry_budget: 3,
            backoff_ms: 2,
            checkpoint_every: 5,
            rejoin_check_every: 2,
            deadline_margin: 0.0,
            deadline_floor_ms: 100,
            deadline_ceiling_ms: 5_000,
            deadline_min_samples: 32,
        }
    }
}

impl RecoverySpec {
    /// Enables adaptive straggler deadlines with the given p99 margin.
    pub fn with_deadline_margin(mut self, margin: f64) -> Self {
        self.deadline_margin = margin;
        self
    }

    /// The adaptive-deadline policy this spec describes, if enabled.
    pub fn adaptive_deadline(&self) -> Option<AdaptiveDeadline> {
        (self.deadline_margin > 0.0).then(|| AdaptiveDeadline {
            margin: self.deadline_margin,
            floor: Duration::from_millis(self.deadline_floor_ms),
            ceiling: Duration::from_millis(self.deadline_ceiling_ms),
            min_samples: self.deadline_min_samples,
        })
    }

    /// Applies this policy to a fault-tolerant trainer configuration.
    pub fn apply(&self, mut cfg: FtConfig) -> FtConfig {
        cfg.retry_budget = self.retry_budget;
        cfg.backoff_ms = self.backoff_ms;
        cfg.checkpoint_every = self.checkpoint_every;
        cfg.rejoin_check_every = self.rejoin_check_every;
        cfg.adaptive_deadline = self.adaptive_deadline();
        cfg
    }
}

/// Runtime configuration of the functional ScheMoE layer.
///
/// Bundles the execution knobs of [`DistributedMoeLayer`] — the paper's
/// pipelining degree `r`, the liveness deadline that turns a silent peer
/// into a loud [`schemoe_cluster::FabricError::Timeout`], and the wire
/// codec — so systems, benches, and experiment manifests configure the
/// layer through one serializable value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheMoeConfig {
    /// Token-pipeline partition degree `r`; 1 = serial execution.
    pub partition_degree: usize,
    /// Liveness deadline for pipelined receives, in milliseconds
    /// (`None` = block indefinitely, as plain `recv` does).
    pub recv_timeout_ms: Option<u64>,
    /// Compress A2A payloads to fp16 on the wire.
    pub fp16_wire: bool,
    /// Turn on the [`schemoe_obs`] span/counter recorder when the layer is
    /// configured, so forwards produce a measured timeline ([`take`] it
    /// with [`schemoe_obs::take`] and export via
    /// [`FuncTrace::to_chrome_trace`](schemoe_obs::FuncTrace::to_chrome_trace)).
    pub trace: bool,
    /// Deterministic fault-injection campaign to run the fabric under;
    /// `None` (the default) leaves the wire untouched and costs nothing.
    pub faults: Option<FaultSpec>,
    /// Retry/backoff/checkpoint policy for fault-tolerant training.
    pub recovery: RecoverySpec,
}

impl ScheMoeConfig {
    /// Serial execution, no compression: the reference configuration.
    pub fn serial() -> Self {
        ScheMoeConfig {
            partition_degree: 1,
            recv_timeout_ms: None,
            fp16_wire: false,
            trace: false,
            faults: None,
            recovery: RecoverySpec::default(),
        }
    }

    /// Pipelined execution at degree `r` with a 30 s liveness deadline.
    ///
    /// # Panics
    ///
    /// Panics if `r` exceeds
    /// [`MAX_PARTITION_DEGREE`](schemoe_collectives::MAX_PARTITION_DEGREE):
    /// past that the per-chunk tags would overflow their lane and collide
    /// with another lane's traffic, so the bound is enforced at
    /// construction instead of at the first collective call.
    pub fn overlapped(r: usize) -> Self {
        assert!(
            r <= schemoe_collectives::MAX_PARTITION_DEGREE,
            "partition degree {r} exceeds MAX_PARTITION_DEGREE \
             ({}); larger degrees would collide chunk tags across lanes",
            schemoe_collectives::MAX_PARTITION_DEGREE
        );
        ScheMoeConfig {
            partition_degree: r,
            recv_timeout_ms: Some(30_000),
            fp16_wire: false,
            trace: false,
            faults: None,
            recovery: RecoverySpec::default(),
        }
    }

    /// Runs the fabric under the given fault campaign.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Overrides the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoverySpec) -> Self {
        self.recovery = recovery;
        self
    }

    /// The runtime fault plan, if a campaign is configured.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.map(|s| s.to_plan())
    }

    /// Enables fp16 wire compression.
    pub fn with_fp16_wire(mut self) -> Self {
        self.fp16_wire = true;
        self
    }

    /// Enables the span/counter recorder (see [`schemoe_obs`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// The receive deadline as a [`Duration`].
    pub fn recv_timeout(&self) -> Option<Duration> {
        self.recv_timeout_ms.map(Duration::from_millis)
    }

    /// The wire codec this configuration selects.
    pub fn compressor(&self) -> Box<dyn Compressor> {
        if self.fp16_wire {
            Box::new(Fp16Compressor)
        } else {
            Box::new(NoCompression)
        }
    }

    /// Applies the execution knobs to a constructed layer.
    ///
    /// With [`trace`](Self::trace) set this also switches the process-wide
    /// recorder on; it stays on (recording every configured layer) until
    /// [`schemoe_obs::disable`] is called.
    pub fn configure(&self, layer: DistributedMoeLayer) -> DistributedMoeLayer {
        if self.trace {
            schemoe_obs::enable();
        }
        let mut layer = layer.with_partition_degree(self.partition_degree);
        if let Some(t) = self.recv_timeout() {
            layer = layer.with_recv_timeout(t);
        }
        layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> LayerShape {
        LayerShape {
            tokens_per_gpu: 4096,
            model_dim: 512,
            hidden_dim: 1024,
            experts: 32,
            k: 2,
            capacity_factor: 1.25,
        }
    }

    #[test]
    fn derived_quantities_follow_the_formulas() {
        let s = shape();
        assert_eq!(s.assigned_tokens(), (1.25f64 * 2.0 * 4096.0) as usize);
        assert_eq!(s.a2a_bytes(), s.assigned_tokens() as u64 * 512 * 4);
        assert_eq!(
            s.expert_flops(),
            4 * s.assigned_tokens() as u64 * 512 * 1024
        );
    }

    #[test]
    fn expert_state_shards_across_the_world() {
        let s = shape();
        // 32 experts on 32 GPUs: one local expert.
        let one = s.expert_state_bytes(32);
        // On 8 GPUs: four local experts.
        assert_eq!(s.expert_state_bytes(8), 4 * one);
    }

    #[test]
    fn serde_round_trip() {
        // Configs are serializable so experiment manifests can be saved.
        let s = shape();
        let json = serde_json_like(&s);
        assert!(json.contains("tokens_per_gpu"));
    }

    /// Minimal serialization smoke test without a JSON dependency: the
    /// `Serialize` impl is exercised through a debug formatter comparison.
    fn serde_json_like(s: &LayerShape) -> String {
        format!("{s:?}")
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PARTITION_DEGREE")]
    fn overlapped_caps_the_partition_degree() {
        // One past the lane capacity must fail loudly at construction.
        ScheMoeConfig::overlapped(schemoe_collectives::MAX_PARTITION_DEGREE + 1);
    }

    #[test]
    fn schemoe_config_constructors() {
        let serial = ScheMoeConfig::serial();
        assert_eq!(serial.partition_degree, 1);
        assert_eq!(serial.recv_timeout(), None);
        assert_eq!(serial.compressor().name(), "fp32");

        let over = ScheMoeConfig::overlapped(4).with_fp16_wire();
        assert_eq!(over.partition_degree, 4);
        assert_eq!(over.recv_timeout(), Some(Duration::from_secs(30)));
        assert_eq!(over.compressor().name(), "fp16");
    }

    #[test]
    fn fault_spec_materializes_an_equivalent_plan() {
        let spec = FaultSpec::seeded(42)
            .with_drop(0.25)
            .with_corrupt(0.1)
            .with_kill(2, 17)
            .with_recv_deadline_ms(250);
        let plan = spec.to_plan();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.kill_threshold(2), Some(17));
        assert_eq!(plan.kill_threshold(0), None);
        assert_eq!(plan.recv_deadline(), Some(Duration::from_millis(250)));
        // The spec is the manifest of the plan: the same seed and probs
        // must reproduce the exact same fault lottery.
        let direct = schemoe_cluster::FaultPlan::seeded(42)
            .with_drop_prob(0.25)
            .with_corrupt_prob(0.1);
        for idx in 0..256 {
            assert_eq!(plan.decide(0, 1, idx), direct.decide(0, 1, idx));
        }
    }

    #[test]
    fn recovery_spec_applies_to_an_ft_config() {
        let rec = RecoverySpec {
            retry_budget: 7,
            backoff_ms: 11,
            checkpoint_every: 3,
            rejoin_check_every: 4,
            ..RecoverySpec::default()
        }
        .with_deadline_margin(1.5);
        let ft = rec.apply(schemoe_models::FtConfig::tiny(10));
        assert_eq!(ft.retry_budget, 7);
        assert_eq!(ft.backoff_ms, 11);
        assert_eq!(ft.checkpoint_every, 3);
        assert_eq!(ft.rejoin_check_every, 4);
        let policy = ft.adaptive_deadline.expect("margin > 0 enables the policy");
        assert_eq!(policy.margin, 1.5);
        assert_eq!(policy.floor, Duration::from_millis(100));
        assert_eq!(policy.ceiling, Duration::from_millis(5_000));
        assert_eq!(policy.min_samples, 32);
        assert_eq!(ft.steps, 10, "non-recovery fields untouched");

        // The default spec keeps deadlines fixed.
        assert_eq!(RecoverySpec::default().adaptive_deadline(), None);
    }

    #[test]
    fn replica_spec_applies_to_an_ft_config() {
        let ft = ReplicaSpec::every(8).apply(schemoe_models::FtConfig::tiny(10));
        assert_eq!(ft.replica_interval, 8);
        assert_eq!(ft.replica_domains, None, "domain steering is opt-in");
        // Replication is opt-in: the default spec and the default config
        // both leave it disabled.
        assert_eq!(ReplicaSpec::default().interval, 0);
        assert_eq!(schemoe_models::FtConfig::tiny(10).replica_interval, 0);
    }

    #[test]
    fn replica_spec_threads_failure_domains_into_buddy_placement() {
        let ft = ReplicaSpec::every(4)
            .with_domains(&[0, 0, 1, 1])
            .apply(schemoe_models::FtConfig::tiny(10));
        let domains = ft.replica_domains.expect("domains must thread through");
        // The buddy of every rank crosses the domain boundary: losing all
        // of domain 0 (ranks 0 and 1) leaves both of its experts' replicas
        // in domain 1, and vice versa.
        for rank in 0..4 {
            let buddy = schemoe_models::buddy_of(rank, 4, Some(&domains));
            assert_ne!(
                domains.label(rank),
                domains.label(buddy),
                "rank {rank} must replicate into another domain"
            );
        }
    }

    #[test]
    fn fault_spec_threads_the_board_poll_slice() {
        let spec = FaultSpec::seeded(4);
        assert_eq!(spec.board_poll_ms, 5, "default slice unchanged");
        let plan = spec.with_board_poll_ms(250).to_plan();
        assert_eq!(plan.board_poll(), Duration::from_millis(250));
    }

    #[test]
    fn fault_spec_carries_a_revival_schedule() {
        let spec = FaultSpec::seeded(8).with_kill(3, 100).with_revive(3, 160);
        let plan = spec.to_plan();
        assert_eq!(plan.kill_threshold(3), Some(100));
        assert_eq!(plan.revive_threshold(3), Some(160));
        // Dead exactly inside the window, alive on both sides of it.
        assert!(plan.rank_alive(3, 99));
        assert!(!plan.rank_alive(3, 100));
        assert!(!plan.rank_alive(3, 159));
        assert!(plan.rank_alive(3, 160));
    }

    #[test]
    fn config_carries_an_optional_fault_campaign() {
        let cfg = ScheMoeConfig::serial();
        assert!(cfg.fault_plan().is_none(), "faults are opt-in");
        let cfg = cfg.with_faults(FaultSpec::seeded(9).with_drop(0.5));
        let plan = cfg.fault_plan().expect("campaign configured");
        assert_eq!(plan.seed(), 9);
    }

    #[test]
    fn schemoe_config_configures_a_layer() {
        use schemoe_moe::{Expert, FfExpert, TopKGate};
        use schemoe_tensor::rng::seeded;
        let cfg = ScheMoeConfig::overlapped(4);
        let gate = TopKGate::new(8, 2, 1, 2.0, &mut seeded(1));
        let experts: Vec<Box<dyn Expert>> = vec![Box::new(FfExpert::new(8, 16, &mut seeded(2)))];
        let layer = DistributedMoeLayer::new(
            gate,
            experts,
            cfg.compressor(),
            Box::new(schemoe_collectives::NcclA2A),
        );
        let layer = cfg.configure(layer);
        assert_eq!(layer.partition_degree(), 4);
    }
}
