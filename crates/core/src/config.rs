//! Layer shape descriptors shared by every system implementation.

use serde::{Deserialize, Serialize};

/// The size parameters of one MoE layer on one GPU (paper Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerShape {
    /// Tokens per GPU per step, `B × L`.
    pub tokens_per_gpu: usize,
    /// Embedding size `M`.
    pub model_dim: usize,
    /// Expert hidden size `H`.
    pub hidden_dim: usize,
    /// Total experts `E`.
    pub experts: usize,
    /// Top-k routing.
    pub k: usize,
    /// Capacity factor `f`.
    pub capacity_factor: f64,
}

impl LayerShape {
    /// Assigned tokens per GPU after capacity padding, `f · k · B · L`.
    pub fn assigned_tokens(&self) -> usize {
        (self.capacity_factor * self.k as f64 * self.tokens_per_gpu as f64).ceil() as usize
    }

    /// Per-GPU A2A payload in bytes (Eq. 2, fp32).
    pub fn a2a_bytes(&self) -> u64 {
        self.assigned_tokens() as u64 * self.model_dim as u64 * 4
    }

    /// Forward expert FLOPs per GPU (two GEMMs over the assigned tokens).
    pub fn expert_flops(&self) -> u64 {
        4 * self.assigned_tokens() as u64 * self.model_dim as u64 * self.hidden_dim as u64
    }

    /// Per-GPU expert weight bytes with experts sharded over `world` GPUs
    /// (fp32 value + grad + two Adam moments).
    pub fn expert_state_bytes(&self, world: usize) -> u64 {
        let local = self.experts.div_ceil(world).max(1) as u64;
        let params =
            (2 * self.model_dim * self.hidden_dim + self.model_dim + self.hidden_dim) as u64;
        local * params * 16
    }

    /// A `schemoe-scheduler` cost descriptor for this shape.
    pub fn costs(&self, compression_ratio: f64) -> schemoe_scheduler::MoeLayerCosts {
        schemoe_scheduler::MoeLayerCosts {
            tokens: self.assigned_tokens(),
            model_dim: self.model_dim,
            hidden_dim: self.hidden_dim,
            compression_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> LayerShape {
        LayerShape {
            tokens_per_gpu: 4096,
            model_dim: 512,
            hidden_dim: 1024,
            experts: 32,
            k: 2,
            capacity_factor: 1.25,
        }
    }

    #[test]
    fn derived_quantities_follow_the_formulas() {
        let s = shape();
        assert_eq!(s.assigned_tokens(), (1.25f64 * 2.0 * 4096.0) as usize);
        assert_eq!(s.a2a_bytes(), s.assigned_tokens() as u64 * 512 * 4);
        assert_eq!(s.expert_flops(), 4 * s.assigned_tokens() as u64 * 512 * 1024);
    }

    #[test]
    fn expert_state_shards_across_the_world() {
        let s = shape();
        // 32 experts on 32 GPUs: one local expert.
        let one = s.expert_state_bytes(32);
        // On 8 GPUs: four local experts.
        assert_eq!(s.expert_state_bytes(8), 4 * one);
    }

    #[test]
    fn serde_round_trip() {
        // Configs are serializable so experiment manifests can be saved.
        let s = shape();
        let json = serde_json_like(&s);
        assert!(json.contains("tokens_per_gpu"));
    }

    /// Minimal serialization smoke test without a JSON dependency: the
    /// `Serialize` impl is exercised through a debug formatter comparison.
    fn serde_json_like(s: &LayerShape) -> String {
        format!("{s:?}")
    }
}
