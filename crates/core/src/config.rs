//! Layer shape descriptors shared by every system implementation.

use std::time::Duration;

use schemoe_compression::{Compressor, Fp16Compressor, NoCompression};
use schemoe_moe::DistributedMoeLayer;
use serde::{Deserialize, Serialize};

/// The size parameters of one MoE layer on one GPU (paper Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerShape {
    /// Tokens per GPU per step, `B × L`.
    pub tokens_per_gpu: usize,
    /// Embedding size `M`.
    pub model_dim: usize,
    /// Expert hidden size `H`.
    pub hidden_dim: usize,
    /// Total experts `E`.
    pub experts: usize,
    /// Top-k routing.
    pub k: usize,
    /// Capacity factor `f`.
    pub capacity_factor: f64,
}

impl LayerShape {
    /// Assigned tokens per GPU after capacity padding, `f · k · B · L`.
    pub fn assigned_tokens(&self) -> usize {
        (self.capacity_factor * self.k as f64 * self.tokens_per_gpu as f64).ceil() as usize
    }

    /// Per-GPU A2A payload in bytes (Eq. 2, fp32).
    pub fn a2a_bytes(&self) -> u64 {
        self.assigned_tokens() as u64 * self.model_dim as u64 * 4
    }

    /// Forward expert FLOPs per GPU (two GEMMs over the assigned tokens).
    pub fn expert_flops(&self) -> u64 {
        4 * self.assigned_tokens() as u64 * self.model_dim as u64 * self.hidden_dim as u64
    }

    /// Per-GPU expert weight bytes with experts sharded over `world` GPUs
    /// (fp32 value + grad + two Adam moments).
    pub fn expert_state_bytes(&self, world: usize) -> u64 {
        let local = self.experts.div_ceil(world).max(1) as u64;
        let params =
            (2 * self.model_dim * self.hidden_dim + self.model_dim + self.hidden_dim) as u64;
        local * params * 16
    }

    /// A `schemoe-scheduler` cost descriptor for this shape.
    pub fn costs(&self, compression_ratio: f64) -> schemoe_scheduler::MoeLayerCosts {
        schemoe_scheduler::MoeLayerCosts {
            tokens: self.assigned_tokens(),
            model_dim: self.model_dim,
            hidden_dim: self.hidden_dim,
            compression_ratio,
        }
    }
}

/// Runtime configuration of the functional ScheMoE layer.
///
/// Bundles the execution knobs of [`DistributedMoeLayer`] — the paper's
/// pipelining degree `r`, the liveness deadline that turns a silent peer
/// into a loud [`schemoe_cluster::FabricError::Timeout`], and the wire
/// codec — so systems, benches, and experiment manifests configure the
/// layer through one serializable value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheMoeConfig {
    /// Token-pipeline partition degree `r`; 1 = serial execution.
    pub partition_degree: usize,
    /// Liveness deadline for pipelined receives, in milliseconds
    /// (`None` = block indefinitely, as plain `recv` does).
    pub recv_timeout_ms: Option<u64>,
    /// Compress A2A payloads to fp16 on the wire.
    pub fp16_wire: bool,
    /// Turn on the [`schemoe_obs`] span/counter recorder when the layer is
    /// configured, so forwards produce a measured timeline ([`take`] it
    /// with [`schemoe_obs::take`] and export via
    /// [`FuncTrace::to_chrome_trace`](schemoe_obs::FuncTrace::to_chrome_trace)).
    pub trace: bool,
}

impl ScheMoeConfig {
    /// Serial execution, no compression: the reference configuration.
    pub fn serial() -> Self {
        ScheMoeConfig {
            partition_degree: 1,
            recv_timeout_ms: None,
            fp16_wire: false,
            trace: false,
        }
    }

    /// Pipelined execution at degree `r` with a 30 s liveness deadline.
    pub fn overlapped(r: usize) -> Self {
        ScheMoeConfig {
            partition_degree: r,
            recv_timeout_ms: Some(30_000),
            fp16_wire: false,
            trace: false,
        }
    }

    /// Enables fp16 wire compression.
    pub fn with_fp16_wire(mut self) -> Self {
        self.fp16_wire = true;
        self
    }

    /// Enables the span/counter recorder (see [`schemoe_obs`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// The receive deadline as a [`Duration`].
    pub fn recv_timeout(&self) -> Option<Duration> {
        self.recv_timeout_ms.map(Duration::from_millis)
    }

    /// The wire codec this configuration selects.
    pub fn compressor(&self) -> Box<dyn Compressor> {
        if self.fp16_wire {
            Box::new(Fp16Compressor)
        } else {
            Box::new(NoCompression)
        }
    }

    /// Applies the execution knobs to a constructed layer.
    ///
    /// With [`trace`](Self::trace) set this also switches the process-wide
    /// recorder on; it stays on (recording every configured layer) until
    /// [`schemoe_obs::disable`] is called.
    pub fn configure(&self, layer: DistributedMoeLayer) -> DistributedMoeLayer {
        if self.trace {
            schemoe_obs::enable();
        }
        let mut layer = layer.with_partition_degree(self.partition_degree);
        if let Some(t) = self.recv_timeout() {
            layer = layer.with_recv_timeout(t);
        }
        layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> LayerShape {
        LayerShape {
            tokens_per_gpu: 4096,
            model_dim: 512,
            hidden_dim: 1024,
            experts: 32,
            k: 2,
            capacity_factor: 1.25,
        }
    }

    #[test]
    fn derived_quantities_follow_the_formulas() {
        let s = shape();
        assert_eq!(s.assigned_tokens(), (1.25f64 * 2.0 * 4096.0) as usize);
        assert_eq!(s.a2a_bytes(), s.assigned_tokens() as u64 * 512 * 4);
        assert_eq!(
            s.expert_flops(),
            4 * s.assigned_tokens() as u64 * 512 * 1024
        );
    }

    #[test]
    fn expert_state_shards_across_the_world() {
        let s = shape();
        // 32 experts on 32 GPUs: one local expert.
        let one = s.expert_state_bytes(32);
        // On 8 GPUs: four local experts.
        assert_eq!(s.expert_state_bytes(8), 4 * one);
    }

    #[test]
    fn serde_round_trip() {
        // Configs are serializable so experiment manifests can be saved.
        let s = shape();
        let json = serde_json_like(&s);
        assert!(json.contains("tokens_per_gpu"));
    }

    /// Minimal serialization smoke test without a JSON dependency: the
    /// `Serialize` impl is exercised through a debug formatter comparison.
    fn serde_json_like(s: &LayerShape) -> String {
        format!("{s:?}")
    }

    #[test]
    fn schemoe_config_constructors() {
        let serial = ScheMoeConfig::serial();
        assert_eq!(serial.partition_degree, 1);
        assert_eq!(serial.recv_timeout(), None);
        assert_eq!(serial.compressor().name(), "fp32");

        let over = ScheMoeConfig::overlapped(4).with_fp16_wire();
        assert_eq!(over.partition_degree, 4);
        assert_eq!(over.recv_timeout(), Some(Duration::from_secs(30)));
        assert_eq!(over.compressor().name(), "fp16");
    }

    #[test]
    fn schemoe_config_configures_a_layer() {
        use schemoe_moe::{Expert, FfExpert, TopKGate};
        use schemoe_tensor::rng::seeded;
        let cfg = ScheMoeConfig::overlapped(4);
        let gate = TopKGate::new(8, 2, 1, 2.0, &mut seeded(1));
        let experts: Vec<Box<dyn Expert>> = vec![Box::new(FfExpert::new(8, 16, &mut seeded(2)))];
        let layer = DistributedMoeLayer::new(
            gate,
            experts,
            cfg.compressor(),
            Box::new(schemoe_collectives::NcclA2A),
        );
        let layer = cfg.configure(layer);
        assert_eq!(layer.partition_degree(), 4);
    }
}
