//! The system zoo: ScheMoE and the baselines it is evaluated against.

use schemoe_cluster::{HardwareProfile, Topology};
use schemoe_collectives::{AllToAll, NcclA2A, PipeA2A};
use schemoe_netsim::SimTime;
use schemoe_scheduler::backward::backward_task_set;
use schemoe_scheduler::schedules::{naive_makespan, optsche};
use schemoe_scheduler::Schedule;

use crate::config::{LayerShape, ScheMoeConfig};

/// A complete MoE execution strategy: codec + A2A algorithm + schedule.
///
/// Implementations answer two questions the benchmarks need: how long does
/// one MoE layer pass take on given hardware, and how much GPU memory do
/// its communication buffers pin. The `expert_flops_scale` parameter
/// distinguishes forward (1×) from backward (2×: dW and dX GEMMs) passes.
pub trait MoeSystem: Send + Sync {
    /// System name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Compression ratio applied to A2A payloads (1.0 = none).
    fn compression_ratio(&self) -> f64 {
        1.0
    }

    /// The A2A algorithm the system uses.
    fn a2a(&self) -> Box<dyn AllToAll>;

    /// The input-partition degree and schedule used for a layer.
    fn schedule(
        &self,
        shape: &LayerShape,
        topo: &Topology,
        hw: &HardwareProfile,
    ) -> Option<(usize, Schedule)>;

    /// Simulated time of one MoE layer pass.
    ///
    /// With no schedule (`None`) tasks run with zero overlap (Eq. 10).
    fn layer_time_scaled(
        &self,
        shape: &LayerShape,
        topo: &Topology,
        hw: &HardwareProfile,
        expert_flops_scale: f64,
    ) -> SimTime {
        let costs = shape.costs(self.compression_ratio());
        let a2a = self.a2a();
        // A scale of 2.0 is the backward pass: same wire volume, doubled
        // expert GEMMs, reversed dependencies (which OptSche handles
        // unchanged; see `schemoe_scheduler::backward`).
        match self.schedule(shape, topo, hw) {
            Some((r, schedule)) => {
                let fwd = costs.task_set(topo, hw, a2a.as_ref(), r);
                let tasks = backward_task_set(&fwd, expert_flops_scale);
                schedule
                    .makespan(&tasks)
                    .expect("system schedules are dependency-valid")
            }
            None => {
                let fwd = costs.task_set(topo, hw, a2a.as_ref(), 1);
                naive_makespan(&backward_task_set(&fwd, expert_flops_scale))
            }
        }
    }

    /// Forward-pass layer time.
    fn layer_time(&self, shape: &LayerShape, topo: &Topology, hw: &HardwareProfile) -> SimTime {
        self.layer_time_scaled(shape, topo, hw, 1.0)
    }

    /// Per-GPU bytes of dispatch/combine buffers pinned per MoE layer
    /// (held for the backward pass, so they accumulate across layers).
    fn layer_buffer_bytes(&self, shape: &LayerShape, _topo: &Topology) -> u64 {
        // Capacity-limited systems buffer exactly the padded payload, in
        // and out.
        2 * shape.a2a_bytes()
    }
}

/// The no-optimization baseline: fp32, NCCL A2A, zero overlap.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveSystem;

impl NaiveSystem {
    /// Creates the baseline.
    pub fn new() -> Self {
        NaiveSystem
    }
}

impl MoeSystem for NaiveSystem {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn a2a(&self) -> Box<dyn AllToAll> {
        Box::new(NcclA2A)
    }

    fn schedule(
        &self,
        _: &LayerShape,
        _: &Topology,
        _: &HardwareProfile,
    ) -> Option<(usize, Schedule)> {
        None
    }
}

/// Emulation of Tutel's execution strategy: fp32 payloads, NCCL all-to-all
/// (Tutel's default collective at this scale — its 2DH algorithm is the
/// opt-in large-scale path benchmarked separately in Fig. 9), and the
/// Fig. 3(b) chunk pipeline with a heuristically chosen degree (Tutel
/// searches a small `r` space; paper §8 notes the search "may be
/// sub-optimal"). With no compression tasks the chunk pipeline's order
/// coincides with OptSche's middle section, so the baseline is not
/// handicapped by a strawman schedule — its deficit comes from fp32
/// payloads and the sequential A2A, exactly as in the ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TutelEmu;

impl TutelEmu {
    /// Creates the emulation.
    pub fn new() -> Self {
        TutelEmu
    }
}

impl MoeSystem for TutelEmu {
    fn name(&self) -> &'static str {
        "Tutel"
    }

    fn a2a(&self) -> Box<dyn AllToAll> {
        Box::new(NcclA2A)
    }

    fn schedule(
        &self,
        shape: &LayerShape,
        topo: &Topology,
        hw: &HardwareProfile,
    ) -> Option<(usize, Schedule)> {
        // Heuristic degree search over {1, 2, 4, 8} with the chunk
        // pipeline, minimizing predicted makespan.
        let costs = shape.costs(1.0);
        let a2a = self.a2a();
        let mut best: Option<(usize, SimTime)> = None;
        for r in [1usize, 2, 4, 8] {
            let tasks = costs.task_set(topo, hw, a2a.as_ref(), r);
            let m = optsche(r).makespan(&tasks).expect("valid");
            if best.is_none_or(|(_, bm)| m < bm) {
                best = Some((r, m));
            }
        }
        let (r, _) = best.expect("searched at least one degree");
        Some((r, optsche(r)))
    }
}

/// Emulation of Faster-MoE: fp32 payloads, NCCL A2A, fixed pipeline degree
/// 2 (paper §8: "Faster-MoE only allows a pipeline degree of 2"), and no
/// capacity limit on dispatch buffers — the mechanism behind its
/// BERT-Large-MoE OOM (Table 8, "improper handling of imbalanced tokens").
#[derive(Clone, Copy, Debug, Default)]
pub struct FasterMoeEmu;

impl FasterMoeEmu {
    /// Creates the emulation.
    pub fn new() -> Self {
        FasterMoeEmu
    }
}

impl MoeSystem for FasterMoeEmu {
    fn name(&self) -> &'static str {
        "Faster-MoE"
    }

    fn a2a(&self) -> Box<dyn AllToAll> {
        Box::new(NcclA2A)
    }

    fn schedule(
        &self,
        _: &LayerShape,
        _: &Topology,
        _: &HardwareProfile,
    ) -> Option<(usize, Schedule)> {
        Some((2, optsche(2)))
    }

    fn layer_buffer_bytes(&self, shape: &LayerShape, _topo: &Topology) -> u64 {
        // Without a capacity cap, receive buffers grow with the worst
        // observed imbalance instead of the f-bounded padding; a 4×
        // headroom reproduces the reported behaviour (fits CT-MoE-24,
        // fails BERT-Large-MoE).
        const IMBALANCE_HEADROOM: u64 = 4;
        2 * shape.tokens_per_gpu as u64
            * shape.k as u64
            * shape.model_dim as u64
            * 4
            * IMBALANCE_HEADROOM
    }
}

/// The full ScheMoE system: ZFP-compressed payloads, Pipe-A2A, and the
/// OptSche schedule with an adaptive partition degree.
#[derive(Clone, Copy, Debug)]
pub struct ScheMoeSystem {
    compression_ratio: f64,
    /// Candidate partition degrees for the adaptive search. Degree 1 is
    /// included: on latency-bound payloads chunking costs more than the
    /// overlap it buys, and the adaptive profiler is what notices.
    degrees: [usize; 4],
}

impl ScheMoeSystem {
    /// The paper's configuration: ZFP at 4×, degrees {1, 2, 4, 8}.
    pub fn default_config() -> Self {
        ScheMoeSystem {
            compression_ratio: 4.0,
            degrees: [1, 2, 4, 8],
        }
    }

    /// ScheMoE without compression (the `w/o ZFP` ablation arm).
    pub fn without_compression() -> Self {
        ScheMoeSystem {
            compression_ratio: 1.0,
            degrees: [1, 2, 4, 8],
        }
    }

    /// Overrides the compression ratio.
    pub fn with_compression_ratio(mut self, ratio: f64) -> Self {
        self.compression_ratio = ratio;
        self
    }

    /// The functional-layer configuration for `shape` on this cluster:
    /// the partition degree the simulator search selects, a 30 s liveness
    /// deadline, and fp16 wire compression whenever the system compresses.
    ///
    /// This is the bridge from the performance substrate to the functional
    /// one — the degree that minimizes *predicted* layer time is the degree
    /// the real [`schemoe_moe::DistributedMoeLayer`] pipeline runs at.
    pub fn functional_config(
        &self,
        shape: &LayerShape,
        topo: &Topology,
        hw: &HardwareProfile,
    ) -> ScheMoeConfig {
        let (r, _) = self
            .schedule(shape, topo, hw)
            .expect("ScheMoE always schedules");
        let cfg = ScheMoeConfig::overlapped(r);
        if self.compression_ratio > 1.0 {
            cfg.with_fp16_wire()
        } else {
            cfg
        }
    }
}

impl MoeSystem for ScheMoeSystem {
    fn name(&self) -> &'static str {
        "ScheMoE"
    }

    fn compression_ratio(&self) -> f64 {
        self.compression_ratio
    }

    fn a2a(&self) -> Box<dyn AllToAll> {
        Box::new(PipeA2A::new())
    }

    fn schedule(
        &self,
        shape: &LayerShape,
        topo: &Topology,
        hw: &HardwareProfile,
    ) -> Option<(usize, Schedule)> {
        // OptSche gives the optimal order for any fixed r (Theorem 1);
        // choosing r is the orthogonal problem the paper defers to
        // profiling — here: pick the degree with the best predicted time.
        let costs = shape.costs(self.compression_ratio);
        let a2a = self.a2a();
        let mut best: Option<(usize, SimTime)> = None;
        for &r in &self.degrees {
            let tasks = costs.task_set(topo, hw, a2a.as_ref(), r);
            let m = optsche(r).makespan(&tasks).expect("valid");
            if best.is_none_or(|(_, bm)| m < bm) {
                best = Some((r, m));
            }
        }
        let (r, _) = best.expect("searched at least one degree");
        Some((r, optsche(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ablation_shape() -> LayerShape {
        // Table 10: B=8, f=1.2, L=2048, H=M=8192, k=2, E=32.
        LayerShape {
            tokens_per_gpu: 8 * 2048,
            model_dim: 8192,
            hidden_dim: 8192,
            experts: 32,
            k: 2,
            capacity_factor: 1.2,
        }
    }

    fn env() -> (Topology, HardwareProfile) {
        (Topology::paper_testbed(), HardwareProfile::paper_testbed())
    }

    #[test]
    fn functional_config_mirrors_the_degree_search() {
        let (topo, hw) = env();
        let shape = ablation_shape();
        let sys = ScheMoeSystem::default_config();
        let (r, _) = sys.schedule(&shape, &topo, &hw).unwrap();
        let cfg = sys.functional_config(&shape, &topo, &hw);
        assert_eq!(cfg.partition_degree, r);
        assert!(cfg.fp16_wire, "compressing system selects a wire codec");
        assert!(
            cfg.recv_timeout().is_some(),
            "pipeline always has a deadline"
        );
        let plain = ScheMoeSystem::without_compression().functional_config(&shape, &topo, &hw);
        assert!(!plain.fp16_wire);
    }

    #[test]
    fn schemoe_beats_every_baseline_on_the_ablation_layer() {
        let (topo, hw) = env();
        let shape = ablation_shape();
        let schemoe = ScheMoeSystem::default_config().layer_time(&shape, &topo, &hw);
        for sys in [&NaiveSystem as &dyn MoeSystem, &TutelEmu, &FasterMoeEmu] {
            let t = sys.layer_time(&shape, &topo, &hw);
            assert!(
                schemoe < t,
                "ScheMoE {schemoe} must beat {} {t}",
                sys.name()
            );
        }
    }

    #[test]
    fn naive_time_matches_table10_scale() {
        // Table 10: Naive ≈ 2401 ms (forward pass of the ablation layer).
        let (topo, hw) = env();
        let t = NaiveSystem
            .layer_time(&ablation_shape(), &topo, &hw)
            .as_ms();
        assert!(
            (1400.0..3400.0).contains(&t),
            "Naive ablation-layer time {t:.0} ms should be near 2.4 s"
        );
    }

    #[test]
    fn ablation_speedup_is_about_2_4x() {
        let (topo, hw) = env();
        let shape = ablation_shape();
        let naive = NaiveSystem.layer_time(&shape, &topo, &hw);
        let schemoe = ScheMoeSystem::default_config().layer_time(&shape, &topo, &hw);
        let speedup = naive / schemoe;
        assert!(
            (1.9..3.1).contains(&speedup),
            "full-system speedup should be ≈2.4×, got {speedup:.2}"
        );
    }

    #[test]
    fn backward_pass_is_slower_than_forward() {
        let (topo, hw) = env();
        let shape = ablation_shape();
        let sys = ScheMoeSystem::default_config();
        let fwd = sys.layer_time_scaled(&shape, &topo, &hw, 1.0);
        let bwd = sys.layer_time_scaled(&shape, &topo, &hw, 2.0);
        assert!(bwd > fwd);
    }

    #[test]
    fn fastermoe_buffers_blow_up_without_capacity() {
        let (topo, _) = env();
        let shape = ablation_shape();
        let capped = TutelEmu.layer_buffer_bytes(&shape, &topo);
        let uncapped = FasterMoeEmu.layer_buffer_bytes(&shape, &topo);
        // Headroom provisioning is 4/f ≈ 3.3× larger.
        assert!(
            uncapped > 2 * capped,
            "uncapped {uncapped} vs capped {capped}"
        );
    }

    #[test]
    fn tutel_degree_search_prefers_pipelining() {
        let (topo, hw) = env();
        let shape = ablation_shape();
        let (r, _) = TutelEmu.schedule(&shape, &topo, &hw).unwrap();
        assert!(
            r >= 2,
            "on a comm-heavy layer Tutel should pipeline, chose r={r}"
        );
    }
}
