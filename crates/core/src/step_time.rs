//! End-to-end training-step time and memory estimation for whole models.

use std::fmt;

use schemoe_cluster::{HardwareProfile, MemoryBudget, Topology};
use schemoe_models::MoeModelConfig;
use schemoe_netsim::SimTime;

use crate::config::LayerShape;
use crate::systems::MoeSystem;

/// Why a step-time estimate could not be produced.
#[derive(Debug, Clone)]
pub enum StepTimeError {
    /// The per-GPU memory requirement exceeds the device.
    OutOfMemory {
        /// The offending budget (itemized).
        budget: MemoryBudget,
    },
}

impl fmt::Display for StepTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepTimeError::OutOfMemory { budget } => {
                write!(f, "out of GPU memory:\n{budget}")
            }
        }
    }
}

impl std::error::Error for StepTimeError {}

/// Breakdown of one training step (forward + backward over all layers).
#[derive(Clone, Debug)]
pub struct StepEstimate {
    /// Total step time.
    pub step: SimTime,
    /// Time inside MoE layers (A2A + compression + experts), both passes.
    pub moe: SimTime,
    /// Time attributable to A2A operations alone (4 per layer per step,
    /// measured as if unoverlapped — matching how Table 1 reports "A2A
    /// time").
    pub a2a: SimTime,
    /// Dense (attention, norms, gate) compute plus framework overhead.
    pub dense: SimTime,
    /// Peak per-GPU memory.
    pub memory: MemoryBudget,
}

impl StepEstimate {
    /// The A2A share of the step (Table 1's "Ratio" column).
    pub fn a2a_ratio(&self) -> f64 {
        self.a2a / self.step
    }
}

/// Estimates one training step of `model` under `system` on the cluster.
///
/// Layer accounting: each of the model's layers runs its MoE layer forward
/// (1× expert FLOPs) and backward (2×: dW and dX), two dense-attention
/// passes (backward ≈ 2× forward FLOPs), and a fixed per-direction
/// framework overhead from the hardware profile. Memory accounts for
/// sharded expert state, dense state, activations, and the system's
/// per-layer dispatch buffers (pinned across all layers for backward).
pub fn model_step_time(
    system: &dyn MoeSystem,
    model: &MoeModelConfig,
    topo: &Topology,
    hw: &HardwareProfile,
) -> Result<StepEstimate, StepTimeError> {
    let shape = LayerShape {
        tokens_per_gpu: model.tokens_per_gpu,
        model_dim: model.model_dim,
        hidden_dim: model.hidden_dim,
        experts: model.experts,
        k: model.k,
        capacity_factor: model.capacity_factor,
    };

    // Memory first: a model that does not fit produces no timing.
    let mut budget = MemoryBudget::new(hw.gpu_mem_bytes);
    budget.add(
        "model state (params+grads+Adam)",
        model.memory_per_gpu(topo.world_size()),
    );
    budget.add(
        "dispatch/combine buffers",
        model.layers as u64 * system.layer_buffer_bytes(&shape, topo),
    );
    if !budget.fits() {
        return Err(StepTimeError::OutOfMemory { budget });
    }

    // MoE layer times: forward + backward.
    let moe_fwd = system.layer_time_scaled(&shape, topo, hw, 1.0);
    let moe_bwd = system.layer_time_scaled(&shape, topo, hw, 2.0);
    let moe = (moe_fwd + moe_bwd) * model.layers as f64;

    // Unoverlapped A2A accounting (Table 1 style): 4 A2As per layer per
    // step at the system's wire size.
    let a2a_alg = system.a2a();
    let wire = (shape.a2a_bytes() as f64 / system.compression_ratio()) as u64;
    let one_a2a = schemoe_collectives::a2a_time(a2a_alg.as_ref(), topo, hw, wire)
        .expect("uniform plans are valid");
    let a2a = one_a2a * (4 * model.layers) as f64;

    // Dense compute: attention etc., forward + ~2× backward, plus the
    // per-direction framework overhead.
    let dense_fwd = hw.gemm.time(model.dense_flops());
    let dense = (dense_fwd * 3.0 + hw.layer_overhead * 2.0) * model.layers as f64;

    Ok(StepEstimate {
        step: moe + dense,
        moe,
        a2a,
        dense,
        memory: budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{FasterMoeEmu, ScheMoeSystem, TutelEmu};

    fn env() -> (Topology, HardwareProfile) {
        (Topology::paper_testbed(), HardwareProfile::paper_testbed())
    }

    #[test]
    fn table1_step_time_and_ratio_are_close() {
        // Table 1, CT-MoE-12 on Tutel: step ≈ 497 ms, A2A ratio ≈ 50.8%.
        let (topo, hw) = env();
        let model = MoeModelConfig::ct_moe(12);
        let est = model_step_time(&TutelEmu, &model, &topo, &hw).unwrap();
        let step_ms = est.step.as_ms();
        assert!(
            (350.0..650.0).contains(&step_ms),
            "CT-MoE-12 step {step_ms:.0} ms vs paper 497 ms"
        );
        let ratio = est.a2a_ratio();
        assert!(
            (0.35..0.75).contains(&ratio),
            "A2A ratio {ratio:.2} vs paper 0.51"
        );
    }

    #[test]
    fn step_time_grows_with_layers() {
        let (topo, hw) = env();
        let t12 = model_step_time(&TutelEmu, &MoeModelConfig::ct_moe(12), &topo, &hw)
            .unwrap()
            .step;
        let t24 = model_step_time(&TutelEmu, &MoeModelConfig::ct_moe(24), &topo, &hw)
            .unwrap()
            .step;
        let ratio = t24 / t12;
        assert!((1.8..2.2).contains(&ratio), "24/12 layer ratio {ratio:.2}");
    }

    #[test]
    fn schemoe_beats_tutel_and_fastermoe_on_ct_moe() {
        // Table 7's ordering: ScheMoE < Tutel < Faster-MoE on CT-MoE-x.
        let (topo, hw) = env();
        for layers in [12, 16, 20, 24] {
            let model = MoeModelConfig::ct_moe(layers);
            // Table 7 compares scheduling + Pipe-A2A; ZFP's contribution is
            // isolated in the Table 10 ablation (see EXPERIMENTS.md).
            let s = model_step_time(&ScheMoeSystem::without_compression(), &model, &topo, &hw)
                .unwrap()
                .step;
            let t = model_step_time(&TutelEmu, &model, &topo, &hw).unwrap().step;
            let f = model_step_time(&FasterMoeEmu, &model, &topo, &hw)
                .unwrap()
                .step;
            assert!(s < t, "x={layers}: ScheMoE {s} !< Tutel {t}");
            assert!(t < f, "x={layers}: Tutel {t} !< Faster-MoE {f}");
            let speedup = t / s;
            assert!(
                (1.05..1.45).contains(&speedup),
                "x={layers}: speedup over Tutel {speedup:.2} vs paper 1.09–1.17"
            );
        }
    }

    #[test]
    fn fastermoe_goes_oom_on_bert_large_moe() {
        // Table 8: Faster-MoE runs OOM; Tutel and ScheMoE fit.
        let (topo, hw) = env();
        let model = MoeModelConfig::bert_large_moe();
        assert!(matches!(
            model_step_time(&FasterMoeEmu, &model, &topo, &hw),
            Err(StepTimeError::OutOfMemory { .. })
        ));
        let tutel = model_step_time(&TutelEmu, &model, &topo, &hw).unwrap();
        let schemoe =
            model_step_time(&ScheMoeSystem::default_config(), &model, &topo, &hw).unwrap();
        let speedup = tutel.step / schemoe.step;
        assert!(
            (1.05..1.5).contains(&speedup),
            "BERT speedup {speedup:.2} vs paper 1.16×"
        );
    }
}
