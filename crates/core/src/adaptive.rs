//! The profiler-driven adaptive ScheMoE (§3.2's loop, closed).
//!
//! The paper's Profiler measures each task type on the running cluster,
//! fits performance models, and lets the Scheduler pick execution
//! parameters from *predictions* instead of re-measuring every
//! configuration. [`AdaptiveScheMoe`] does exactly that, in two modes:
//!
//! * **Calibrated**: a calibration phase records task timings at a
//!   handful of probe sizes, per-kind linear models are fitted, and from
//!   then on the partition degree `r` is chosen from model predictions
//!   alone — no simulation of candidate degrees at decision time.
//! * **Online**: spans measured during the run itself are ingested per
//!   step ([`observe_step`](AdaptiveScheMoe::observe_step)); after a
//!   warm-up that cycles through the candidate degrees (so every kind is
//!   sampled at ≥ 2 sizes and the linear models become identifiable),
//!   [`choose_degree_online`](AdaptiveScheMoe::choose_degree_online)
//!   re-picks `r` each step from the fitted models over the *whole*
//!   training step — forward and backward pipelines.
//!
//! Two invariants guard the known r=8 regression: an unmeasured task kind
//! is *unknown*, never free (missing coverage keeps the current degree or
//! falls back to serial, it cannot justify more pipelining), and `r = 1`
//! is always in the candidate set, so an overlapped degree is only chosen
//! when the model says it strictly beats serial.

use std::collections::HashMap;

use schemoe_cluster::{HardwareProfile, Topology};
use schemoe_collectives::{AllToAll, PipeA2A};
use schemoe_netsim::SimTime;
use schemoe_obs::FuncTrace;
use schemoe_scheduler::schedules::optsche;
use schemoe_scheduler::{span_kind, MoeLayerCosts, Profiler, TaskKind, TaskSet};

use crate::config::LayerShape;

/// ScheMoE with a profiler-backed degree decision.
pub struct AdaptiveScheMoe {
    profiler: Profiler,
    compression_ratio: f64,
    degrees: Vec<usize>,
    calibrated: bool,
    /// Degree in force until the online models take over (and the
    /// fallback whenever coverage is missing).
    configured: usize,
    /// Steps to observe before trusting the online models.
    warmup_steps: usize,
    /// Steps ingested via [`Self::observe_step`].
    steps_seen: usize,
    /// Per-kind full-step size (sum of that kind's span sizes within one
    /// step — degree-invariant: `r` chunks of `S/r` sum to `S`).
    full_sizes: HashMap<TaskKind, f64>,
    /// Pipeline granularity of the overlapped backward, when it differs
    /// from the forward degree. The functional layer's backward chunks
    /// per *source rank*, so any `r > 1` runs the same backward pipeline;
    /// `None` falls back to chunking the backward by `r` (the purely
    /// simulated regime).
    backward_chunks: Option<usize>,
}

impl AdaptiveScheMoe {
    /// Creates an uncalibrated instance (ZFP ratio, degrees {1, 2, 4, 8},
    /// warm-up of one step per candidate degree).
    pub fn new() -> Self {
        let degrees = vec![1, 2, 4, 8];
        AdaptiveScheMoe {
            profiler: Profiler::new(),
            compression_ratio: 4.0,
            warmup_steps: degrees.len(),
            degrees,
            calibrated: false,
            configured: 1,
            steps_seen: 0,
            full_sizes: HashMap::new(),
            backward_chunks: None,
        }
    }

    /// Declares the overlapped backward's pipeline granularity (the world
    /// size: one chunk per source rank). With this set, every `r > 1`
    /// candidate is modelled with the same per-source backward pipeline
    /// and only the forward half varies with `r` — matching what the
    /// functional layer actually executes.
    pub fn set_backward_chunks(&mut self, chunks: usize) {
        self.backward_chunks = Some(chunks.max(1));
    }

    /// Overrides the candidate degree set (1 is always added back at
    /// decision time — the never-lose-to-serial clamp is not optional).
    pub fn with_degrees(mut self, degrees: Vec<usize>) -> Self {
        assert!(!degrees.is_empty(), "at least one candidate degree");
        self.warmup_steps = degrees.len().max(2);
        self.degrees = degrees;
        self
    }

    /// Overrides the warm-up length (in observed steps).
    pub fn with_warmup(mut self, steps: usize) -> Self {
        self.warmup_steps = steps;
        self
    }

    /// Sets the degree used during warm-up and whenever model coverage is
    /// missing.
    pub fn set_configured_degree(&mut self, r: usize) {
        self.configured = r;
    }

    /// The candidate degrees, with serial guaranteed present, ascending.
    fn candidates(&self) -> Vec<usize> {
        let mut cands = self.degrees.clone();
        if !cands.contains(&1) {
            cands.push(1);
        }
        cands.sort_unstable();
        cands.dedup();
        cands
    }

    /// Whether [`Self::calibrate`] has run (or measured samples have been
    /// recorded).
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Read access to the fitted profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Records one externally measured `(size, time)` sample for `kind`
    /// and marks the instance calibrated. This is the measured-data
    /// entry point tests and custom calibration harnesses use; bulk
    /// ingestion from a trace goes through [`Self::observe_step`].
    pub fn record_sample(&mut self, kind: TaskKind, size: f64, t: SimTime) {
        self.profiler.record(kind, size, t);
        self.calibrated = true;
    }

    /// Runs the profiling phase: times every task kind at several probe
    /// sizes on the target cluster (here: the simulator standing in for
    /// the wall clock, exactly as the real system's profiler stands in
    /// front of CUDA events) and records the samples.
    ///
    /// The combine half (`C2`/`A2`/`D2`) is recorded independently of the
    /// dispatch half, and the backward kinds independently of the forward
    /// ones: gradient A2As travel uncompressed (raw activation bytes on
    /// the wire) and the expert backward runs the dX+dW pair (2× the
    /// forward GEMMs).
    pub fn calibrate(&mut self, topo: &Topology, hw: &HardwareProfile) {
        let probe_tokens = [512usize, 2048, 8192, 32768];
        let (m, h) = (1024usize, 4096usize);
        for &tokens in &probe_tokens {
            let costs = MoeLayerCosts {
                tokens,
                model_dim: m,
                hidden_dim: h,
                compression_ratio: self.compression_ratio,
            };
            let tasks = costs.task_set(topo, hw, &PipeA2A::new(), 1);
            // Gradient exchanges skip the codec, so their wire time is the
            // uncompressed A2A's.
            let raw = MoeLayerCosts {
                compression_ratio: 1.0,
                ..costs
            };
            let raw_tasks = raw.task_set(topo, hw, &PipeA2A::new(), 1);
            let bytes = costs.a2a_bytes() as f64;
            let wire = costs.wire_bytes() as f64;
            let flops = costs.expert_flops() as f64;
            // Forward, dispatch and combine sides each from their own
            // task durations.
            for (kind, size) in [
                (TaskKind::Compress1, bytes),
                (TaskKind::AllToAll1, wire),
                (TaskKind::Decompress1, bytes),
                (TaskKind::Expert, flops),
                (TaskKind::Compress2, bytes),
                (TaskKind::AllToAll2, wire),
                (TaskKind::Decompress2, bytes),
            ] {
                self.profiler.record(kind, size, tasks.duration(kind, 0));
            }
            // Backward: raw-wire A2As, 2× expert, codec-free grad builds
            // costed like the forward encode/decode of the same bytes.
            let raw_a2a = raw_tasks.duration(TaskKind::AllToAll1, 0);
            for (kind, size, t) in [
                (
                    TaskKind::BwdCompress1,
                    bytes,
                    tasks.duration(TaskKind::Compress1, 0),
                ),
                (TaskKind::BwdAllToAll1, bytes, raw_a2a),
                (
                    TaskKind::BwdDecompress1,
                    bytes,
                    tasks.duration(TaskKind::Decompress1, 0),
                ),
                (
                    TaskKind::BwdExpert,
                    flops,
                    tasks.duration(TaskKind::Expert, 0) * 2.0,
                ),
                (
                    TaskKind::BwdCompress2,
                    bytes,
                    tasks.duration(TaskKind::Compress2, 0),
                ),
                (TaskKind::BwdAllToAll2, bytes, raw_a2a),
                (
                    TaskKind::BwdDecompress2,
                    bytes,
                    tasks.duration(TaskKind::Decompress2, 0),
                ),
            ] {
                self.profiler.record(kind, size, t);
            }
        }
        self.calibrated = true;
    }

    /// Predicts the forward task set for `shape` at degree `r` from the
    /// fitted models — no simulator involved. Each of the seven stages is
    /// predicted from its own model (the combine half is *not* mirrored
    /// from the dispatch half). Returns `None` if any stage lacks model
    /// coverage: an unmeasured stage must not be priced as free.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::calibrate`] (or any sample
    /// recording).
    pub fn predict_task_set(&self, shape: &LayerShape, r: usize) -> Option<TaskSet> {
        assert!(self.calibrated, "calibrate() must run before predictions");
        let costs = shape.costs(self.compression_ratio);
        let chunk_bytes = costs.a2a_bytes() as f64 / r as f64;
        let chunk_wire = costs.wire_bytes() as f64 / r as f64;
        let chunk_flops = costs.expert_flops() as f64 / r as f64;
        let p = &self.profiler;
        Some(TaskSet::per_stage(
            r,
            [
                p.predict(TaskKind::Compress1, chunk_bytes)?,
                p.predict(TaskKind::AllToAll1, chunk_wire)?,
                p.predict(TaskKind::Decompress1, chunk_bytes)?,
                p.predict(TaskKind::Expert, chunk_flops)?,
                p.predict(TaskKind::Compress2, chunk_bytes)?,
                p.predict(TaskKind::AllToAll2, chunk_wire)?,
                p.predict(TaskKind::Decompress2, chunk_bytes)?,
            ],
        ))
    }

    /// Predicts the backward task set for `shape` at degree `r`. Gradient
    /// payloads travel uncompressed, so every byte-sized stage is queried
    /// at raw activation bytes. `None` on missing coverage.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::calibrate`] (or any sample
    /// recording).
    pub fn predict_backward_task_set(&self, shape: &LayerShape, r: usize) -> Option<TaskSet> {
        assert!(self.calibrated, "calibrate() must run before predictions");
        let costs = shape.costs(self.compression_ratio);
        let chunk_bytes = costs.a2a_bytes() as f64 / r as f64;
        let chunk_flops = costs.expert_flops() as f64 / r as f64;
        let p = &self.profiler;
        Some(TaskSet::per_stage(
            r,
            [
                p.predict(TaskKind::BwdCompress1, chunk_bytes)?,
                p.predict(TaskKind::BwdAllToAll1, chunk_bytes)?,
                p.predict(TaskKind::BwdDecompress1, chunk_bytes)?,
                p.predict(TaskKind::BwdExpert, chunk_flops)?,
                p.predict(TaskKind::BwdCompress2, chunk_bytes)?,
                p.predict(TaskKind::BwdAllToAll2, chunk_bytes)?,
                p.predict(TaskKind::BwdDecompress2, chunk_bytes)?,
            ],
        ))
    }

    /// Predicted whole-step (forward + backward) makespan under OptSche at
    /// degree `r`. `None` on missing coverage for any stage of either
    /// pass.
    pub fn predict_step_makespan(&self, shape: &LayerShape, r: usize) -> Option<SimTime> {
        let fwd = self.predict_task_set(shape, r)?;
        let bwd = self.predict_backward_task_set(shape, r)?;
        let sched = optsche(r);
        Some(
            sched.makespan(&fwd).expect("optsche is valid")
                + sched.makespan(&bwd).expect("optsche is valid"),
        )
    }

    /// Chooses the partition degree from model predictions alone.
    ///
    /// `r = 1` is always among the candidates and wins ties, so the
    /// decision never trades a measured serial time for a predicted
    /// overlap gain of zero; candidates whose makespan cannot be fully
    /// predicted (missing kind coverage) are treated as unknown and
    /// skipped, and with no predictable candidate at all the choice is
    /// serial.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::calibrate`] (or any sample
    /// recording).
    pub fn choose_degree(&self, shape: &LayerShape) -> usize {
        let mut best: Option<(usize, SimTime)> = None;
        for r in self.candidates() {
            let Some(tasks) = self.predict_task_set(shape, r) else {
                continue;
            };
            let m = optsche(r).makespan(&tasks).expect("valid");
            if best.is_none_or(|(_, bm)| m < bm) {
                best = Some((r, m));
            }
        }
        best.map_or(1, |(r, _)| r)
    }

    /// Ingests one training step's measured trace: every stage span feeds
    /// the per-kind models, and per-kind full-step sizes (the sum of a
    /// kind's span sizes within the step, which is degree-invariant) are
    /// remembered for online degree decisions. Returns the number of
    /// samples ingested.
    pub fn observe_step(&mut self, trace: &FuncTrace) -> usize {
        let n = self.profiler.ingest_trace(trace);
        let mut sums: HashMap<TaskKind, f64> = HashMap::new();
        for s in &trace.spans {
            if let Some(kind) = span_kind(&s.name) {
                *sums.entry(kind).or_insert(0.0) += s.size;
            }
        }
        for (kind, total) in sums {
            self.full_sizes.insert(kind, total);
        }
        self.steps_seen += 1;
        if n > 0 {
            self.calibrated = true;
        }
        n
    }

    /// Steps observed so far via [`Self::observe_step`].
    pub fn steps_seen(&self) -> usize {
        self.steps_seen
    }

    /// Whether the online loop is still warming up.
    pub fn in_warmup(&self) -> bool {
        self.steps_seen < self.warmup_steps
    }

    /// The degree to *run* step `step` at: during warm-up, cycle through
    /// the candidate degrees (one step each) so every task kind is
    /// sampled at ≥ 2 distinct chunk sizes and the linear models become
    /// identifiable; afterwards, whatever the online chooser picked.
    pub fn warmup_degree(&self, step: usize) -> usize {
        let cands = self.candidates();
        cands[step % cands.len()]
    }

    /// Re-chooses the degree from spans ingested during the run.
    ///
    /// During warm-up — or whenever any stage of the whole-step pipeline
    /// lacks model coverage — this returns the configured degree
    /// unchanged: an unmeasured stage is unknown, not free, so it can
    /// never push the decision toward more pipelining (the bug that made
    /// `choose_degree` over-pipeline to r=8). Otherwise it is the argmin
    /// of the predicted forward+backward OptSche makespans over the
    /// candidates, with serial always present and winning ties.
    pub fn choose_degree_online(&self) -> usize {
        if self.in_warmup() {
            return self.configured;
        }
        let mut best: Option<(usize, SimTime)> = None;
        for r in self.candidates() {
            let Some(m) = self.predict_online_step(r) else {
                return self.configured;
            };
            if best.is_none_or(|(_, bm)| m < bm) {
                best = Some((r, m));
            }
        }
        best.map_or(self.configured, |(r, _)| r)
    }

    /// Predicted whole-step makespan at degree `r` from the observed
    /// full-step sizes. `None` if any of the 14 stages lacks either an
    /// observed size or model coverage.
    pub fn predict_online_step(&self, r: usize) -> Option<SimTime> {
        let pred = |kind: TaskKind, chunks: usize| -> Option<SimTime> {
            let full = self.full_sizes.get(&kind).copied()?;
            self.profiler.predict(kind, full / chunks as f64)
        };
        let fwd = TaskSet::per_stage(
            r,
            [
                pred(TaskKind::Compress1, r)?,
                pred(TaskKind::AllToAll1, r)?,
                pred(TaskKind::Decompress1, r)?,
                pred(TaskKind::Expert, r)?,
                pred(TaskKind::Compress2, r)?,
                pred(TaskKind::AllToAll2, r)?,
                pred(TaskKind::Decompress2, r)?,
            ],
        );
        // The backward pipelines per source rank, not per forward chunk:
        // serial at r = 1, the fixed per-source pipeline at any r > 1.
        let rb = if r <= 1 {
            1
        } else {
            self.backward_chunks.unwrap_or(r)
        };
        let bwd = TaskSet::per_stage(
            rb,
            [
                pred(TaskKind::BwdCompress1, rb)?,
                pred(TaskKind::BwdAllToAll1, rb)?,
                pred(TaskKind::BwdDecompress1, rb)?,
                pred(TaskKind::BwdExpert, rb)?,
                pred(TaskKind::BwdCompress2, rb)?,
                pred(TaskKind::BwdAllToAll2, rb)?,
                pred(TaskKind::BwdDecompress2, rb)?,
            ],
        );
        Some(
            optsche(r).makespan(&fwd).expect("optsche is valid")
                + optsche(rb).makespan(&bwd).expect("optsche is valid"),
        )
    }

    /// The oracle decision: pick the degree by actually simulating every
    /// candidate (what the non-adaptive system does). Used to evaluate the
    /// profiler's decision quality.
    pub fn oracle_degree(
        &self,
        shape: &LayerShape,
        topo: &Topology,
        hw: &HardwareProfile,
    ) -> usize {
        let costs = shape.costs(self.compression_ratio);
        let mut best: Option<(usize, SimTime)> = None;
        for r in self.candidates() {
            let tasks = costs.task_set(topo, hw, &PipeA2A::new(), r);
            let m = optsche(r).makespan(&tasks).expect("valid");
            if best.is_none_or(|(_, bm)| m < bm) {
                best = Some((r, m));
            }
        }
        best.expect("non-empty degree set").0
    }

    /// Executes (simulates) the layer at the predicted-best degree and
    /// returns the realized time.
    pub fn layer_time(&self, shape: &LayerShape, topo: &Topology, hw: &HardwareProfile) -> SimTime {
        let r = self.choose_degree(shape);
        let costs = shape.costs(self.compression_ratio);
        let tasks = costs.task_set(topo, hw, &PipeA2A::new(), r);
        optsche(r).makespan(&tasks).expect("valid")
    }

    /// The A2A algorithm used for probing and execution.
    pub fn a2a(&self) -> Box<dyn AllToAll> {
        Box::new(PipeA2A::new())
    }
}

impl Default for AdaptiveScheMoe {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (Topology, HardwareProfile) {
        (Topology::paper_testbed(), HardwareProfile::paper_testbed())
    }

    fn shapes() -> Vec<LayerShape> {
        let mut out = Vec::new();
        for &tokens in &[1024usize, 4096, 16384] {
            for &m in &[512usize, 2048, 8192] {
                out.push(LayerShape {
                    tokens_per_gpu: tokens,
                    model_dim: m,
                    hidden_dim: 2 * m,
                    experts: 32,
                    k: 2,
                    capacity_factor: 1.1,
                });
            }
        }
        out
    }

    #[test]
    #[should_panic(expected = "calibrate() must run")]
    fn prediction_requires_calibration() {
        let sys = AdaptiveScheMoe::new();
        sys.predict_task_set(&shapes()[0], 2);
    }

    #[test]
    fn predictions_track_reality_closely() {
        let (topo, hw) = env();
        let mut sys = AdaptiveScheMoe::new();
        sys.calibrate(&topo, &hw);
        for shape in shapes() {
            let predicted = sys.predict_task_set(&shape, 2).expect("full coverage");
            let actual = shape.costs(4.0).task_set(&topo, &hw, &PipeA2A::new(), 2);
            for kind in [TaskKind::AllToAll1, TaskKind::Expert] {
                let p = predicted.duration(kind, 0).as_secs();
                let a = actual.duration(kind, 0).as_secs();
                let rel = (p - a).abs() / a.max(1e-9);
                // The A2A model is linear in wire bytes within the fitted
                // range; extrapolation to the biggest shapes stays sane.
                assert!(rel < 0.35, "{kind:?} on {shape:?}: pred {p} vs actual {a}");
            }
        }
    }

    #[test]
    fn profiled_degree_choice_is_near_oracle() {
        let (topo, hw) = env();
        let mut sys = AdaptiveScheMoe::new();
        sys.calibrate(&topo, &hw);
        let mut regret_worst = 0.0f64;
        for shape in shapes() {
            let chosen = sys.choose_degree(&shape);
            let oracle = sys.oracle_degree(&shape, &topo, &hw);
            // The decision may differ on near-ties; what matters is the
            // realized-time regret.
            let costs = shape.costs(4.0);
            let run = |r: usize| {
                let tasks = costs.task_set(&topo, &hw, &PipeA2A::new(), r);
                optsche(r).makespan(&tasks).expect("valid").as_secs()
            };
            let regret = run(chosen) / run(oracle) - 1.0;
            regret_worst = regret_worst.max(regret);
        }
        assert!(
            regret_worst < 0.10,
            "profiled decisions lose {regret_worst:.1}% worst-case vs oracle"
        );
    }

    #[test]
    fn calibration_records_multiple_sizes_per_kind() {
        let (topo, hw) = env();
        let mut sys = AdaptiveScheMoe::new();
        sys.calibrate(&topo, &hw);
        for kind in [
            TaskKind::Compress1,
            TaskKind::AllToAll1,
            TaskKind::Expert,
            TaskKind::Compress2,
            TaskKind::AllToAll2,
            TaskKind::Decompress2,
            TaskKind::BwdCompress1,
            TaskKind::BwdAllToAll1,
            TaskKind::BwdExpert,
            TaskKind::BwdAllToAll2,
            TaskKind::BwdDecompress2,
        ] {
            assert!(
                sys.profiler().sample_count(kind) >= 4,
                "{kind:?} undersampled"
            );
            assert!(
                sys.profiler().model(kind).is_some(),
                "{kind:?} unidentifiable"
            );
        }
    }

    /// Regression for the zero-cost fallback: with `Compress1` never
    /// sampled and the comm stages dominant, the old code priced the
    /// missing kind at zero, so overlap looked free and `choose_degree`
    /// flipped to the maximum degree (the r=8 regression). Missing
    /// coverage must instead disqualify the candidate — every candidate
    /// here — and the decision must fall back to serial.
    #[test]
    fn missing_kind_pins_choice_to_serial_not_max_r() {
        let mut sys = AdaptiveScheMoe::new();
        // Comm-heavy models for everything except Compress1, which stays
        // unsampled.
        for (kind, per_byte) in [
            (TaskKind::AllToAll1, 1e-8),
            (TaskKind::Decompress1, 1e-11),
            (TaskKind::Compress2, 1e-11),
            (TaskKind::AllToAll2, 1e-8),
            (TaskKind::Decompress2, 1e-11),
        ] {
            for &size in &[1e6, 4e6] {
                sys.record_sample(kind, size, SimTime::from_secs(size * per_byte));
            }
        }
        for &flops in &[1e9, 4e9] {
            sys.record_sample(TaskKind::Expert, flops, SimTime::from_secs(flops * 1e-12));
        }
        assert!(sys.profiler().covers(TaskKind::AllToAll1));
        assert!(!sys.profiler().covers(TaskKind::Compress1));
        let shape = shapes()[0];
        assert!(
            sys.predict_task_set(&shape, 8).is_none(),
            "missing kind must void the prediction"
        );
        assert_eq!(
            sys.choose_degree(&shape),
            1,
            "unmeasured stage must not buy more pipelining"
        );
    }

    /// The combine half must be predicted from its own samples, not
    /// mirrored from the dispatch half (top-k fan-in makes the two differ
    /// in practice).
    #[test]
    fn combine_half_is_modelled_independently() {
        let mut sys = AdaptiveScheMoe::new();
        let dispatch = 1e-9; // s/byte
        let combine = 3e-9; // combine side 3× slower
        for &size in &[1e6, 4e6] {
            for kind in [TaskKind::Compress1, TaskKind::Decompress1] {
                sys.record_sample(kind, size, SimTime::from_secs(size * dispatch));
            }
            for kind in [TaskKind::Compress2, TaskKind::Decompress2] {
                sys.record_sample(kind, size, SimTime::from_secs(size * combine));
            }
            for kind in [TaskKind::AllToAll1, TaskKind::AllToAll2] {
                sys.record_sample(kind, size, SimTime::from_secs(size * 5e-9));
            }
        }
        for &flops in &[1e9, 4e9] {
            sys.record_sample(TaskKind::Expert, flops, SimTime::from_secs(flops * 1e-12));
        }
        let ts = sys.predict_task_set(&shapes()[0], 2).expect("covered");
        let c1 = ts.duration(TaskKind::Compress1, 0).as_secs();
        let c2 = ts.duration(TaskKind::Compress2, 0).as_secs();
        assert!(
            (c2 / c1 - 3.0).abs() < 0.1,
            "combine compress must track its own 3× model, got C1={c1} C2={c2}"
        );
    }

    /// The never-lose-to-serial clamp: when the per-task intercept (fixed
    /// per-chunk overhead) dominates, splitting into more chunks adds
    /// overhead faster than overlap can hide it — predicted overlap gain
    /// is negative and the choice must be serial.
    #[test]
    fn negative_overlap_gain_pins_choice_to_serial() {
        let mut sys = AdaptiveScheMoe::new().with_degrees(vec![2, 4, 8]);
        // Every stage costs 10 ms fixed + a negligible size term: at
        // degree r the pipeline pays ~r× the fixed cost per stage while
        // the overlappable part is tiny.
        for kind in TaskKind::ALL {
            for &size in &[1e6, 4e6] {
                sys.record_sample(kind, size, SimTime::from_secs(10e-3 + size * 1e-15));
            }
        }
        let choice = sys.choose_degree(&shapes()[0]);
        assert_eq!(
            choice, 1,
            "overhead-dominated pipeline must fall back to serial even \
             when 1 is not in the configured degree set"
        );
    }

    #[test]
    fn online_loop_warms_up_then_follows_the_models() {
        let mut sys = AdaptiveScheMoe::new().with_warmup(2);
        sys.set_configured_degree(4);
        assert!(sys.in_warmup());
        assert_eq!(
            sys.choose_degree_online(),
            4,
            "warm-up keeps the configured degree"
        );
        // Warm-up cycles candidates so sizes differ across steps.
        assert_eq!(sys.warmup_degree(0), 1);
        assert_ne!(sys.warmup_degree(1), sys.warmup_degree(0));

        // Two synthetic steps, observed at degrees 1 and 2: comm-bound
        // full step (A2As dwarf compute), so overlap should win.
        let mk = |name: &str, size: f64, dur_us: f64| schemoe_obs::SpanRecord {
            cat: "stage",
            name: name.to_string(),
            rank: 0,
            thread: "t".to_string(),
            start_us: 0.0,
            dur_us,
            size,
            depth: 0,
        };
        let step_at = |r: usize| {
            let mut spans = Vec::new();
            let full_bytes = 8e6;
            let full_flops = 1e9;
            for c in 0..r {
                let b = full_bytes / r as f64;
                let f = full_flops / r as f64;
                // Comm: 1 ms/MB; compute: ~0.01 ms/MB — heavily comm-bound.
                for stem in ["C1", "D1", "C2", "D2", "C1b", "D1b", "C2b", "D2b"] {
                    spans.push(mk(&format!("{stem}[c{c}]"), b, b * 1e-5));
                }
                for stem in ["A1", "A2", "A1b", "A2b"] {
                    spans.push(mk(&format!("{stem}[c{c}]"), b, b * 1e-3));
                }
                for stem in ["E", "Eb"] {
                    spans.push(mk(&format!("{stem}[c{c}]"), f, f * 1e-5));
                }
            }
            FuncTrace {
                spans,
                counters: Vec::new(),
                routing: Vec::new(),
            }
        };
        assert!(sys.observe_step(&step_at(1)) > 0);
        assert!(sys.observe_step(&step_at(2)) > 0);
        assert!(!sys.in_warmup());
        let chosen = sys.choose_degree_online();
        assert!(
            chosen > 1,
            "comm-bound step must choose an overlapped degree, got {chosen}"
        );
        assert_eq!(sys.steps_seen(), 2);
    }

    #[test]
    fn online_loop_without_backward_coverage_keeps_configured_degree() {
        let mut sys = AdaptiveScheMoe::new().with_warmup(1);
        sys.set_configured_degree(2);
        let mk = |name: &str, size: f64| schemoe_obs::SpanRecord {
            cat: "stage",
            name: name.to_string(),
            rank: 0,
            thread: "t".to_string(),
            start_us: 0.0,
            dur_us: 1_000.0,
            size,
            depth: 0,
        };
        // Forward-only spans: the backward half of the step is unmeasured.
        let trace = FuncTrace {
            spans: ["C1", "A1", "D1", "E", "C2", "A2", "D2"]
                .iter()
                .map(|stem| mk(stem, 1e6))
                .collect(),
            counters: Vec::new(),
            routing: Vec::new(),
        };
        sys.observe_step(&trace);
        assert!(!sys.in_warmup());
        assert_eq!(
            sys.choose_degree_online(),
            2,
            "missing backward coverage must keep the configured degree, not re-decide"
        );
    }
}
