//! The profiler-driven adaptive ScheMoE (§3.2's loop, closed).
//!
//! The paper's Profiler measures each task type on the running cluster,
//! fits performance models, and lets the Scheduler pick execution
//! parameters from *predictions* instead of re-measuring every
//! configuration. [`AdaptiveScheMoe`] does exactly that: a calibration
//! phase records task timings at a handful of probe sizes, per-kind
//! linear models are fitted, and from then on the partition degree `r` is
//! chosen from model predictions alone — no simulation of candidate
//! degrees at decision time.

use schemoe_cluster::{HardwareProfile, Topology};
use schemoe_collectives::{AllToAll, PipeA2A};
use schemoe_netsim::SimTime;
use schemoe_scheduler::schedules::optsche;
use schemoe_scheduler::{MoeLayerCosts, Profiler, TaskKind, TaskSet};

use crate::config::LayerShape;

/// ScheMoE with a profiler-backed degree decision.
pub struct AdaptiveScheMoe {
    profiler: Profiler,
    compression_ratio: f64,
    degrees: Vec<usize>,
    calibrated: bool,
}

impl AdaptiveScheMoe {
    /// Creates an uncalibrated instance (ZFP ratio, degrees {1, 2, 4, 8}).
    pub fn new() -> Self {
        AdaptiveScheMoe {
            profiler: Profiler::new(),
            compression_ratio: 4.0,
            degrees: vec![1, 2, 4, 8],
            calibrated: false,
        }
    }

    /// Whether [`Self::calibrate`] has run.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Read access to the fitted profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Runs the profiling phase: times every task kind at several probe
    /// sizes on the target cluster (here: the simulator standing in for
    /// the wall clock, exactly as the real system's profiler stands in
    /// front of CUDA events) and records the samples.
    pub fn calibrate(&mut self, topo: &Topology, hw: &HardwareProfile) {
        let probe_tokens = [512usize, 2048, 8192, 32768];
        let (m, h) = (1024usize, 4096usize);
        for &tokens in &probe_tokens {
            let costs = MoeLayerCosts {
                tokens,
                model_dim: m,
                hidden_dim: h,
                compression_ratio: self.compression_ratio,
            };
            let tasks = costs.task_set(topo, hw, &PipeA2A::new(), 1);
            // Record (size, measured time) per kind; sizes use the same
            // units the predictor will query with.
            self.profiler.record(
                TaskKind::Compress1,
                costs.a2a_bytes() as f64,
                tasks.duration(TaskKind::Compress1, 0),
            );
            self.profiler.record(
                TaskKind::Decompress1,
                costs.a2a_bytes() as f64,
                tasks.duration(TaskKind::Decompress1, 0),
            );
            self.profiler.record(
                TaskKind::AllToAll1,
                costs.wire_bytes() as f64,
                tasks.duration(TaskKind::AllToAll1, 0),
            );
            self.profiler.record(
                TaskKind::Expert,
                costs.expert_flops() as f64,
                tasks.duration(TaskKind::Expert, 0),
            );
        }
        self.calibrated = true;
    }

    /// Predicts the full task set for `shape` at degree `r` from the
    /// fitted models — no simulator involved.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::calibrate`].
    pub fn predict_task_set(&self, shape: &LayerShape, r: usize) -> TaskSet {
        assert!(self.calibrated, "calibrate() must run before predictions");
        let costs = shape.costs(self.compression_ratio);
        let chunk_bytes = costs.a2a_bytes() as f64 / r as f64;
        let chunk_wire = costs.wire_bytes() as f64 / r as f64;
        let chunk_flops = costs.expert_flops() as f64 / r as f64;
        TaskSet::uniform(
            r,
            self.profiler.predict(TaskKind::Compress1, chunk_bytes),
            self.profiler.predict(TaskKind::AllToAll1, chunk_wire),
            self.profiler.predict(TaskKind::Decompress1, chunk_bytes),
            self.profiler.predict(TaskKind::Expert, chunk_flops),
        )
    }

    /// Chooses the partition degree from model predictions alone.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::calibrate`].
    pub fn choose_degree(&self, shape: &LayerShape) -> usize {
        let mut best: Option<(usize, SimTime)> = None;
        for &r in &self.degrees {
            let tasks = self.predict_task_set(shape, r);
            let m = optsche(r).makespan(&tasks).expect("valid");
            if best.is_none_or(|(_, bm)| m < bm) {
                best = Some((r, m));
            }
        }
        best.expect("non-empty degree set").0
    }

    /// The oracle decision: pick the degree by actually simulating every
    /// candidate (what the non-adaptive system does). Used to evaluate the
    /// profiler's decision quality.
    pub fn oracle_degree(
        &self,
        shape: &LayerShape,
        topo: &Topology,
        hw: &HardwareProfile,
    ) -> usize {
        let costs = shape.costs(self.compression_ratio);
        let mut best: Option<(usize, SimTime)> = None;
        for &r in &self.degrees {
            let tasks = costs.task_set(topo, hw, &PipeA2A::new(), r);
            let m = optsche(r).makespan(&tasks).expect("valid");
            if best.is_none_or(|(_, bm)| m < bm) {
                best = Some((r, m));
            }
        }
        best.expect("non-empty degree set").0
    }

    /// Executes (simulates) the layer at the predicted-best degree and
    /// returns the realized time.
    pub fn layer_time(&self, shape: &LayerShape, topo: &Topology, hw: &HardwareProfile) -> SimTime {
        let r = self.choose_degree(shape);
        let costs = shape.costs(self.compression_ratio);
        let tasks = costs.task_set(topo, hw, &PipeA2A::new(), r);
        optsche(r).makespan(&tasks).expect("valid")
    }

    /// The A2A algorithm used for probing and execution.
    pub fn a2a(&self) -> Box<dyn AllToAll> {
        Box::new(PipeA2A::new())
    }
}

impl Default for AdaptiveScheMoe {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (Topology, HardwareProfile) {
        (Topology::paper_testbed(), HardwareProfile::paper_testbed())
    }

    fn shapes() -> Vec<LayerShape> {
        let mut out = Vec::new();
        for &tokens in &[1024usize, 4096, 16384] {
            for &m in &[512usize, 2048, 8192] {
                out.push(LayerShape {
                    tokens_per_gpu: tokens,
                    model_dim: m,
                    hidden_dim: 2 * m,
                    experts: 32,
                    k: 2,
                    capacity_factor: 1.1,
                });
            }
        }
        out
    }

    #[test]
    #[should_panic(expected = "calibrate() must run")]
    fn prediction_requires_calibration() {
        let sys = AdaptiveScheMoe::new();
        sys.predict_task_set(&shapes()[0], 2);
    }

    #[test]
    fn predictions_track_reality_closely() {
        let (topo, hw) = env();
        let mut sys = AdaptiveScheMoe::new();
        sys.calibrate(&topo, &hw);
        for shape in shapes() {
            let predicted = sys.predict_task_set(&shape, 2);
            let actual = shape.costs(4.0).task_set(&topo, &hw, &PipeA2A::new(), 2);
            for kind in [TaskKind::AllToAll1, TaskKind::Expert] {
                let p = predicted.duration(kind, 0).as_secs();
                let a = actual.duration(kind, 0).as_secs();
                let rel = (p - a).abs() / a.max(1e-9);
                // The A2A model is linear in wire bytes within the fitted
                // range; extrapolation to the biggest shapes stays sane.
                assert!(rel < 0.35, "{kind:?} on {shape:?}: pred {p} vs actual {a}");
            }
        }
    }

    #[test]
    fn profiled_degree_choice_is_near_oracle() {
        let (topo, hw) = env();
        let mut sys = AdaptiveScheMoe::new();
        sys.calibrate(&topo, &hw);
        let mut regret_worst = 0.0f64;
        for shape in shapes() {
            let chosen = sys.choose_degree(&shape);
            let oracle = sys.oracle_degree(&shape, &topo, &hw);
            // The decision may differ on near-ties; what matters is the
            // realized-time regret.
            let costs = shape.costs(4.0);
            let run = |r: usize| {
                let tasks = costs.task_set(&topo, &hw, &PipeA2A::new(), r);
                optsche(r).makespan(&tasks).expect("valid").as_secs()
            };
            let regret = run(chosen) / run(oracle) - 1.0;
            regret_worst = regret_worst.max(regret);
        }
        assert!(
            regret_worst < 0.10,
            "profiled decisions lose {regret_worst:.1}% worst-case vs oracle"
        );
    }

    #[test]
    fn calibration_records_multiple_sizes_per_kind() {
        let (topo, hw) = env();
        let mut sys = AdaptiveScheMoe::new();
        sys.calibrate(&topo, &hw);
        for kind in [TaskKind::Compress1, TaskKind::AllToAll1, TaskKind::Expert] {
            assert!(
                sys.profiler().sample_count(kind) >= 4,
                "{kind:?} undersampled"
            );
            assert!(
                sys.profiler().model(kind).is_some(),
                "{kind:?} unidentifiable"
            );
        }
    }
}
