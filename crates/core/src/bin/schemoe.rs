//! `schemoe` — the command-line front end to ScheMoE-RS.
//!
//! ```text
//! schemoe info
//! schemoe estimate --model ct-moe-12 --system schemoe
//! schemoe layer --tokens 16384 --m 8192 --h 8192 [--e 32 --k 2 --f 1.2]
//! schemoe a2a --bytes 640000000 [--profile paper|nvlink|ethernet]
//! schemoe sweep [--limit 50]
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! admits no CLI crate); every flag is `--key value`.

use std::collections::HashMap;
use std::process::ExitCode;

use schemoe::prelude::*;
use schemoe::{A2aRegistry, CompressorRegistry, ScheduleRegistry};
use schemoe_collectives::a2a_time;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "info" => cmd_info(),
        "estimate" => cmd_estimate(&flags),
        "layer" => cmd_layer(&flags),
        "a2a" => cmd_a2a(&flags),
        "sweep" => cmd_sweep(&flags),
        "trace" => cmd_trace(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "schemoe — MoE step-time estimation and A2A analysis

USAGE:
  schemoe info                               list profiles, models, plugins
  schemoe estimate --model <name> [--system <name>] [--profile <name>]
  schemoe layer --tokens <n> --m <n> --h <n> [--e 32] [--k 2] [--f 1.2]
  schemoe a2a --bytes <n> [--profile <name>]
  schemoe sweep [--limit <n>]
  schemoe trace --tokens <n> --m <n> --h <n> [--r 2] [--out trace.json]
                                             export a chrome://tracing JSON
                                             of the OptSche schedule

MODELS:    transformer-moe, gpt2-tiny-moe, ct-moe-<layers>, bert-large-moe
SYSTEMS:   naive, tutel, faster-moe, schemoe, schemoe-nz (no compression)
PROFILES:  paper (default), nvlink, ethernet";

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{key}'"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn flag_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: Option<T>,
) -> Result<T, String> {
    match flags.get(name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        None => default.ok_or_else(|| format!("missing required flag --{name}")),
    }
}

fn profile(flags: &HashMap<String, String>) -> Result<HardwareProfile, String> {
    match flags.get("profile").map(String::as_str).unwrap_or("paper") {
        "paper" => Ok(HardwareProfile::paper_testbed()),
        "nvlink" => Ok(HardwareProfile::nvlink_dgx()),
        "ethernet" => Ok(HardwareProfile::ethernet_cluster()),
        other => Err(format!("unknown profile '{other}'")),
    }
}

fn system(name: &str) -> Result<Box<dyn MoeSystem>, String> {
    match name {
        "naive" => Ok(Box::new(NaiveSystem::new())),
        "tutel" => Ok(Box::new(TutelEmu::new())),
        "faster-moe" => Ok(Box::new(FasterMoeEmu::new())),
        "schemoe" => Ok(Box::new(ScheMoeSystem::default_config())),
        "schemoe-nz" => Ok(Box::new(ScheMoeSystem::without_compression())),
        other => Err(format!("unknown system '{other}'")),
    }
}

fn model(name: &str) -> Result<MoeModelConfig, String> {
    match name {
        "transformer-moe" => Ok(MoeModelConfig::transformer_moe()),
        "gpt2-tiny-moe" => Ok(MoeModelConfig::gpt2_tiny_moe()),
        "bert-large-moe" => Ok(MoeModelConfig::bert_large_moe()),
        other => {
            if let Some(layers) = other.strip_prefix("ct-moe-") {
                let layers: usize = layers
                    .parse()
                    .map_err(|_| format!("bad layer count in '{other}'"))?;
                if layers == 0 {
                    return Err("ct-moe needs at least one layer".to_string());
                }
                Ok(MoeModelConfig::ct_moe(layers))
            } else {
                Err(format!("unknown model '{other}'"))
            }
        }
    }
}

fn cmd_info() -> Result<(), String> {
    println!("hardware profiles:");
    for hw in [
        HardwareProfile::paper_testbed(),
        HardwareProfile::nvlink_dgx(),
        HardwareProfile::ethernet_cluster(),
    ] {
        println!(
            "  {:<28} intra {:>6.2} GB/s  inter {:>6.2} GB/s  mem {} GiB",
            hw.name,
            hw.intra_link.bandwidth_bps / 1e9,
            hw.inter_link.bandwidth_bps / 1e9,
            hw.gpu_mem_bytes >> 30
        );
    }
    println!("\nmodels (Table 5):");
    for m in [
        MoeModelConfig::transformer_moe(),
        MoeModelConfig::gpt2_tiny_moe(),
        MoeModelConfig::ct_moe(12),
        MoeModelConfig::bert_large_moe(),
    ] {
        println!(
            "  {:<18} {:>3} layers  E={:<3} k={}  {:>7.1} M params  A2A {:>8} B/GPU",
            m.name,
            m.layers,
            m.experts,
            m.k,
            m.total_params() as f64 / 1e6,
            m.a2a_bytes()
        );
    }
    println!(
        "\nregistered compressors: {:?}",
        CompressorRegistry::with_builtins().names()
    );
    println!(
        "registered A2A algos:   {:?}",
        A2aRegistry::with_builtins().names()
    );
    println!(
        "registered schedules:   {:?}",
        ScheduleRegistry::with_builtins().names()
    );
    Ok(())
}

fn cmd_estimate(flags: &HashMap<String, String>) -> Result<(), String> {
    let model_name = flags.get("model").ok_or("missing required flag --model")?;
    let m = model(model_name)?;
    let hw = profile(flags)?;
    let topo = Topology::paper_testbed();
    let system_names: Vec<&str> = match flags.get("system") {
        Some(s) => vec![s.as_str()],
        None => vec!["naive", "faster-moe", "tutel", "schemoe-nz", "schemoe"],
    };
    println!(
        "{} on {} ({} GPUs): {:.1} M params, A2A payload {} bytes/GPU",
        m.name,
        hw.name,
        topo.world_size(),
        m.total_params() as f64 / 1e6,
        m.a2a_bytes()
    );
    println!(
        "{:>12} {:>12} {:>12} {:>8} {:>12}",
        "system", "step", "a2a", "ratio", "memory"
    );
    for name in system_names {
        let sys = system(name)?;
        match model_step_time(sys.as_ref(), &m, &topo, &hw) {
            Ok(est) => println!(
                "{:>12} {:>12} {:>12} {:>7.0}% {:>9.2} GiB",
                name,
                format!("{}", est.step),
                format!("{}", est.a2a),
                est.a2a_ratio() * 100.0,
                est.memory.total() as f64 / (1u64 << 30) as f64
            ),
            Err(StepTimeError::OutOfMemory { budget }) => {
                println!(
                    "{:>12} {:>12} {:>12} {:>8} {:>9.2} GiB",
                    name,
                    "OOM",
                    "-",
                    "-",
                    budget.total() as f64 / (1u64 << 30) as f64
                );
            }
        }
    }
    Ok(())
}

fn cmd_layer(flags: &HashMap<String, String>) -> Result<(), String> {
    let shape = LayerShape {
        tokens_per_gpu: flag_num(flags, "tokens", None)?,
        model_dim: flag_num(flags, "m", None)?,
        hidden_dim: flag_num(flags, "h", None)?,
        experts: flag_num(flags, "e", Some(32))?,
        k: flag_num(flags, "k", Some(2))?,
        capacity_factor: flag_num(flags, "f", Some(1.2))?,
    };
    let hw = profile(flags)?;
    let topo = Topology::paper_testbed();
    println!(
        "layer: {} assigned tokens/GPU, A2A {} bytes/GPU, {} expert GFLOPs",
        shape.assigned_tokens(),
        shape.a2a_bytes(),
        shape.expert_flops() / 1_000_000_000
    );
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "system", "fwd", "fwd+bwd", "speedup"
    );
    let base = NaiveSystem::new().layer_time(&shape, &topo, &hw);
    for name in ["naive", "faster-moe", "tutel", "schemoe-nz", "schemoe"] {
        let sys = system(name)?;
        let fwd = sys.layer_time(&shape, &topo, &hw);
        let both = fwd + sys.layer_time_scaled(&shape, &topo, &hw, 2.0);
        println!(
            "{:>12} {:>14} {:>14} {:>8.2}x",
            name,
            format!("{fwd}"),
            format!("{both}"),
            base / fwd
        );
    }
    Ok(())
}

fn cmd_a2a(flags: &HashMap<String, String>) -> Result<(), String> {
    let bytes: u64 = flag_num(flags, "bytes", None)?;
    let hw = profile(flags)?;
    let topo = Topology::paper_testbed();
    let reg = A2aRegistry::with_builtins();
    println!(
        "all-to-all of {bytes} bytes/GPU on {} ({} GPUs):",
        hw.name,
        topo.world_size()
    );
    for name in reg.names() {
        let alg = reg.create(&name).expect("listed");
        if !schemoe_collectives::a2a_fits_memory(alg.as_ref(), &topo, &hw, bytes, 1 << 30) {
            println!("  {name:>6}: OOM");
            continue;
        }
        let t = a2a_time(alg.as_ref(), &topo, &hw, bytes).map_err(|e| e.to_string())?;
        println!("  {name:>6}: {t}");
    }
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let limit: usize = flag_num(flags, "limit", Some(20))?;
    let hw = profile(flags)?;
    let topo = Topology::paper_testbed();
    let tutel = TutelEmu::new();
    let schemoe = ScheMoeSystem::without_compression();
    println!(
        "{:>8} {:>6} {:>6} {:>5} {:>12} {:>12} {:>9}",
        "tokens", "M", "H", "f", "tutel", "schemoe", "speedup"
    );
    let mut count = 0usize;
    'outer: for &tokens in &[1024usize, 4096, 16384] {
        for &m in &[512usize, 2048, 8192] {
            for &h in &[512usize, 2048, 8192] {
                if count >= limit {
                    break 'outer;
                }
                let shape = LayerShape {
                    tokens_per_gpu: tokens,
                    model_dim: m,
                    hidden_dim: h,
                    experts: 32,
                    k: 2,
                    capacity_factor: 1.2,
                };
                let t = tutel.layer_time(&shape, &topo, &hw);
                let s = schemoe.layer_time(&shape, &topo, &hw);
                println!(
                    "{:>8} {:>6} {:>6} {:>5.1} {:>12} {:>12} {:>8.2}x",
                    tokens,
                    m,
                    h,
                    1.2,
                    format!("{t}"),
                    format!("{s}"),
                    t / s
                );
                count += 1;
            }
        }
    }
    Ok(())
}

fn cmd_trace(flags: &HashMap<String, String>) -> Result<(), String> {
    let shape = LayerShape {
        tokens_per_gpu: flag_num(flags, "tokens", None)?,
        model_dim: flag_num(flags, "m", None)?,
        hidden_dim: flag_num(flags, "h", None)?,
        experts: flag_num(flags, "e", Some(32))?,
        k: flag_num(flags, "k", Some(2))?,
        capacity_factor: flag_num(flags, "f", Some(1.2))?,
    };
    let r: usize = flag_num(flags, "r", Some(2))?;
    let default_out = "trace.json".to_string();
    let out_path = flags.get("out").unwrap_or(&default_out);
    let hw = profile(flags)?;
    let topo = Topology::paper_testbed();
    let costs = shape.costs(4.0);
    let tasks = costs.task_set(&topo, &hw, &PipeA2A::new(), r);
    let trace = optsche(r).trace(&tasks).map_err(|e| e.to_string())?;
    let json = schemoe_netsim::chrome::to_chrome_trace(&trace, &["gpu", "network"]);
    std::fs::write(out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!(
        "wrote {} events ({} bytes) to {out_path}; open in chrome://tracing or ui.perfetto.dev",
        trace.records().len(),
        json.len()
    );
    println!("schedule: {}", optsche(r).describe());
    println!("makespan: {}", trace.makespan());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn flag_parsing_accepts_pairs_and_rejects_garbage() {
        let args: Vec<String> = ["--model", "ct-moe-12", "--system", "schemoe"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("model").unwrap(), "ct-moe-12");
        assert!(parse_flags(&["stray".to_string()]).is_err());
        assert!(parse_flags(&["--dangling".to_string()]).is_err());
    }

    #[test]
    fn model_names_resolve() {
        assert_eq!(model("ct-moe-16").unwrap().layers, 16);
        assert_eq!(model("bert-large-moe").unwrap().experts, 32);
        assert!(model("ct-moe-x").is_err());
        assert!(model("ct-moe-0").is_err());
        assert!(model("nope").is_err());
    }

    #[test]
    fn systems_and_profiles_resolve() {
        for s in ["naive", "tutel", "faster-moe", "schemoe", "schemoe-nz"] {
            assert!(system(s).is_ok(), "{s}");
        }
        assert!(system("deepspeed").is_err());
        assert!(profile(&flags(&[("profile", "nvlink")])).is_ok());
        assert!(profile(&flags(&[("profile", "tpu")])).is_err());
        assert_eq!(
            profile(&flags(&[])).unwrap().name,
            "rtx2080ti-8x4-pcie3-ib100"
        );
    }

    #[test]
    fn numeric_flags_parse_with_defaults() {
        let f = flags(&[("tokens", "4096")]);
        assert_eq!(flag_num::<usize>(&f, "tokens", None).unwrap(), 4096);
        assert_eq!(flag_num::<usize>(&f, "e", Some(32)).unwrap(), 32);
        assert!(flag_num::<usize>(&f, "m", None).is_err());
        let bad = flags(&[("tokens", "many")]);
        assert!(flag_num::<usize>(&bad, "tokens", None).is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        cmd_info().unwrap();
        cmd_estimate(&flags(&[("model", "ct-moe-12")])).unwrap();
        cmd_layer(&flags(&[("tokens", "4096"), ("m", "1024"), ("h", "2048")])).unwrap();
        cmd_a2a(&flags(&[("bytes", "64000000")])).unwrap();
        cmd_sweep(&flags(&[("limit", "3")])).unwrap();
        let out = std::env::temp_dir().join("schemoe-cli-test-trace.json");
        cmd_trace(&flags(&[
            ("tokens", "4096"),
            ("m", "1024"),
            ("h", "2048"),
            ("out", out.to_str().unwrap()),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"ph\":\"X\""));
        let _ = std::fs::remove_file(out);
    }
}
