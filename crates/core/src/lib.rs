//! ScheMoE: an extensible mixture-of-experts distributed training system
//! with task scheduling.
//!
//! This crate is the public facade of ScheMoE-RS, a from-scratch Rust
//! reproduction of *"ScheMoE: An Extensible Mixture-of-Experts Distributed
//! Training System with Tasks Scheduling"* (EuroSys '24). It ties together:
//!
//! * the functional substrate (tensors, the rank fabric, real collectives,
//!   real compressors, the trainable MoE transformer), and
//! * the performance substrate (the discrete-event cluster simulator with
//!   a hardware profile calibrated to the paper's 32-GPU testbed).
//!
//! The three headline pieces of the paper map to:
//!
//! | Paper | Here |
//! |---|---|
//! | generic scheduling framework (§3) | [`schemoe_scheduler`], [`registry`] |
//! | OptSche optimal schedule (§4, Thm. 1) | [`schemoe_scheduler::schedules::optsche`] |
//! | Pipe-A2A (§5) | [`schemoe_collectives::PipeA2A`] |
//!
//! # Quickstart
//!
//! ```
//! use schemoe::prelude::*;
//!
//! // Describe a layer (the Table 10 ablation shape) and a cluster.
//! let shape = LayerShape { tokens_per_gpu: 8 * 2048, model_dim: 8192,
//!     hidden_dim: 8192, experts: 32, k: 2, capacity_factor: 1.2 };
//! let topo = Topology::paper_testbed();
//! let hw = HardwareProfile::paper_testbed();
//!
//! // Compare the full ScheMoE system against the naive execution.
//! let naive = NaiveSystem::new().layer_time(&shape, &topo, &hw);
//! let schemoe = ScheMoeSystem::default_config().layer_time(&shape, &topo, &hw);
//! assert!(schemoe.as_secs() < naive.as_secs());
//! ```

pub mod adaptive;
pub mod config;
pub mod registry;
pub mod step_time;
pub mod systems;

pub use adaptive::AdaptiveScheMoe;
pub use config::{FaultSpec, LayerShape, RecoverySpec, ReplicaSpec, ScheMoeConfig};
pub use registry::{A2aRegistry, CompressorRegistry, ScheduleRegistry};
/// Runtime observability: span recorder, per-rank fabric counters, and the
/// shared Trace Event Format writer both substrates export through.
pub use schemoe_obs as obs;
pub use step_time::{model_step_time, StepEstimate, StepTimeError};
pub use systems::{FasterMoeEmu, MoeSystem, NaiveSystem, ScheMoeSystem, TutelEmu};

/// Convenience re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::config::{FaultSpec, LayerShape, RecoverySpec, ReplicaSpec, ScheMoeConfig};
    pub use crate::step_time::{model_step_time, StepEstimate, StepTimeError};
    pub use crate::systems::{FasterMoeEmu, MoeSystem, NaiveSystem, ScheMoeSystem, TutelEmu};
    pub use schemoe_cluster::{
        Fabric, FabricError, FaultPlan, HardwareProfile, MemoryBudget, RankHandle, Topology,
    };
    pub use schemoe_collectives::{AllToAll, NcclA2A, OneDimHierA2A, PipeA2A, TwoDimHierA2A};
    pub use schemoe_compression::{
        Compressor, Fp16Compressor, Int8Compressor, NoCompression, ZfpCompressor,
    };
    pub use schemoe_models::{
        run_ft_rank, FtConfig, FtReport, LmConfig, MoeModelConfig, TinyMoeLm, TrainReport, Trainer,
    };
    pub use schemoe_moe::{DistributedMoeLayer, MoeLayer, TopKGate};
    pub use schemoe_netsim::SimTime;
    pub use schemoe_obs::{FuncTrace, SpanRecord};
    pub use schemoe_scheduler::{optsche, MoeLayerCosts, Profiler, TaskSet};
}
