//! Extension registries: the Listing 1–2 customization surface.
//!
//! The paper's headline extensibility claim is that users can drop in new
//! compressors, A2A algorithms, and schedules without touching the
//! training logic. In Rust the drop-in point is a name → factory registry;
//! the built-ins pre-register themselves and user code adds more:
//!
//! ```
//! use schemoe::CompressorRegistry;
//! use schemoe_compression::{Compressor, NoCompression};
//!
//! let mut reg = CompressorRegistry::with_builtins();
//! reg.register("mine", || Box::new(NoCompression));
//! assert!(reg.create("mine").is_some());
//! assert!(reg.create("zfp").is_some());
//! ```

use std::collections::HashMap;

use schemoe_collectives::{AllToAll, NcclA2A, OneDimHierA2A, PipeA2A, TwoDimHierA2A};
use schemoe_compression::{
    Compressor, Fp16Compressor, Int8Compressor, NoCompression, ZfpCompressor,
};
use schemoe_scheduler::schedules::{optsche, stage_major};
use schemoe_scheduler::Schedule;

/// Factory signature stored by [`CompressorRegistry`].
type CompressorFactory = Box<dyn Fn() -> Box<dyn Compressor> + Send + Sync>;
/// Factory signature stored by [`A2aRegistry`].
type A2aFactory = Box<dyn Fn() -> Box<dyn AllToAll> + Send + Sync>;
/// Factory signature stored by [`ScheduleRegistry`].
type ScheduleFactory = Box<dyn Fn(usize) -> Schedule + Send + Sync>;

/// Name → factory registry for [`Compressor`] implementations.
#[derive(Default)]
pub struct CompressorRegistry {
    factories: HashMap<String, CompressorFactory>,
}

impl CompressorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with `fp32`, `fp16`, `int8`, and `zfp`.
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register("fp32", || Box::new(NoCompression));
        reg.register("fp16", || Box::new(Fp16Compressor));
        reg.register("int8", || Box::new(Int8Compressor));
        reg.register("zfp", || Box::new(ZfpCompressor::default()));
        reg
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Compressor> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Instantiates the codec registered under `name`.
    pub fn create(&self, name: &str) -> Option<Box<dyn Compressor>> {
        self.factories.get(name).map(|f| f())
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Name → factory registry for [`AllToAll`] algorithms.
#[derive(Default)]
pub struct A2aRegistry {
    factories: HashMap<String, A2aFactory>,
}

impl A2aRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with `nccl`, `1dh`, `2dh`, and `pipe`.
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register("nccl", || Box::new(NcclA2A));
        reg.register("1dh", || Box::new(OneDimHierA2A));
        reg.register("2dh", || Box::new(TwoDimHierA2A));
        reg.register("pipe", || Box::new(PipeA2A::new()));
        reg
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn AllToAll> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Instantiates the algorithm registered under `name`.
    pub fn create(&self, name: &str) -> Option<Box<dyn AllToAll>> {
        self.factories.get(name).map(|f| f())
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Name → factory registry for schedules (degree-parameterized).
#[derive(Default)]
pub struct ScheduleRegistry {
    factories: HashMap<String, ScheduleFactory>,
}

impl ScheduleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with `optsche` and `stage-major`.
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register("optsche", optsche);
        reg.register("stage-major", stage_major);
        reg
    }

    /// Registers (or replaces) a schedule family under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(usize) -> Schedule + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Builds the schedule `name` at partition degree `r`.
    pub fn create(&self, name: &str, r: usize) -> Option<Schedule> {
        self.factories.get(name).map(|f| f(r))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_present() {
        assert_eq!(
            CompressorRegistry::with_builtins().names(),
            vec!["fp16", "fp32", "int8", "zfp"]
        );
        assert_eq!(
            A2aRegistry::with_builtins().names(),
            vec!["1dh", "2dh", "nccl", "pipe"]
        );
        assert_eq!(
            ScheduleRegistry::with_builtins().names(),
            vec!["optsche", "stage-major"]
        );
    }

    #[test]
    fn custom_compressor_registration_works() {
        let mut reg = CompressorRegistry::with_builtins();
        reg.register("zfp-hi", || Box::new(ZfpCompressor::new(12)));
        let codec = reg.create("zfp-hi").unwrap();
        assert_eq!(codec.name(), "zfp");
        assert!(
            codec.ratio() < 4.0,
            "12-bit mantissas compress less than 4x"
        );
        assert!(reg.create("nonexistent").is_none());
    }

    #[test]
    fn custom_schedule_registration_works() {
        let mut reg = ScheduleRegistry::with_builtins();
        // A user schedule: reversed-chunk OptSche.
        reg.register("optsche-rev", |r| {
            let mut s = optsche(r);
            s.comp_order.reverse();
            s
        });
        let s = reg.create("optsche-rev", 2).unwrap();
        assert_eq!(s.comp_order.len(), 10);
    }

    #[test]
    fn created_a2a_instances_have_expected_names() {
        let reg = A2aRegistry::with_builtins();
        for (key, name) in [
            ("nccl", "nccl-a2a"),
            ("1dh", "1dh-a2a"),
            ("2dh", "2dh-a2a"),
            ("pipe", "pipe-a2a"),
        ] {
            assert_eq!(reg.create(key).unwrap().name(), name);
        }
    }
}
