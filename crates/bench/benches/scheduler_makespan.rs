//! Criterion: schedule makespan evaluation and the brute-force oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemoe_netsim::SimTime;
use schemoe_scheduler::schedules::brute_force_best;
use schemoe_scheduler::{optsche, TaskSet};

fn tasks(r: usize) -> TaskSet {
    TaskSet::uniform(
        r,
        SimTime::from_ms(1.0),
        SimTime::from_ms(9.0),
        SimTime::from_ms(1.5),
        SimTime::from_ms(6.0),
    )
}

fn bench_makespan(c: &mut Criterion) {
    let mut group = c.benchmark_group("optsche_makespan");
    group.sample_size(50);
    for r in [2usize, 4, 8, 16] {
        let ts = tasks(r);
        let s = optsche(r);
        group.bench_with_input(BenchmarkId::from_parameter(r), &ts, |b, ts| {
            b.iter(|| s.makespan(std::hint::black_box(ts)).unwrap())
        });
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    // 252 schedules at r=2: the Theorem 1 verification cost.
    let ts = tasks(2);
    let mut group = c.benchmark_group("brute_force_r2");
    group.sample_size(10);
    group.bench_function("252_orders", |b| {
        b.iter(|| brute_force_best(std::hint::black_box(&ts)))
    });
    group.finish();
}

criterion_group!(benches, bench_makespan, bench_brute_force);
criterion_main!(benches);
