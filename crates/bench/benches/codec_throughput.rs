//! Criterion: compressor encode/decode throughput per codec.
//!
//! Backs the `AbsCompressor` cost models: the simulator charges
//! compression at a fixed bytes/second, and this bench measures what the
//! actual from-scratch codecs achieve on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schemoe_compression::{
    Compressor, Fp16Compressor, Int8Compressor, NoCompression, ZfpCompressor,
};

fn codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(NoCompression),
        Box::new(Fp16Compressor),
        Box::new(Int8Compressor),
        Box::new(ZfpCompressor::default()),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let data: Vec<f32> = (0..262_144)
        .map(|i| ((i * 31 % 997) as f32 - 500.0) * 0.01)
        .collect();
    let bytes = (data.len() * 4) as u64;
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(20);
    for codec in codecs() {
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &data, |b, d| {
            b.iter(|| codec.compress(std::hint::black_box(d)))
        });
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let data: Vec<f32> = (0..262_144)
        .map(|i| ((i * 31 % 997) as f32 - 500.0) * 0.01)
        .collect();
    let bytes = (data.len() * 4) as u64;
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(20);
    for codec in codecs() {
        let wire = codec.compress(&data);
        let n = data.len();
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &wire, |b, w| {
            b.iter(|| codec.decompress(std::hint::black_box(w), n).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
