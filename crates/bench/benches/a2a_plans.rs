//! Criterion: A2A plan compilation + discrete-event simulation speed.
//!
//! The Fig. 8 sweep simulates thousands of plans; this bench tracks the
//! cost of one compile+simulate cycle per algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemoe_cluster::{HardwareProfile, Topology};
use schemoe_collectives::{AllToAll, NcclA2A, OneDimHierA2A, PipeA2A, TwoDimHierA2A};

fn bench_simulate(c: &mut Criterion) {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let algs: Vec<(&str, Box<dyn AllToAll>)> = vec![
        ("nccl", Box::new(NcclA2A)),
        ("1dh", Box::new(OneDimHierA2A)),
        ("2dh", Box::new(TwoDimHierA2A)),
        ("pipe", Box::new(PipeA2A::new())),
    ];
    let mut group = c.benchmark_group("a2a_plan_simulate");
    group.sample_size(30);
    for (name, alg) in &algs {
        group.bench_with_input(BenchmarkId::from_parameter(name), alg, |b, alg| {
            b.iter(|| {
                let plan = alg.plan(&topo, std::hint::black_box(64_000_000));
                plan.simulate(&topo, &hw).unwrap().makespan()
            })
        });
    }
    group.finish();
}

fn bench_plan_sizes(c: &mut Criterion) {
    // Simulation cost scales with op count = P² for flat algorithms.
    let hw = HardwareProfile::paper_testbed();
    let mut group = c.benchmark_group("a2a_sim_vs_world_size");
    group.sample_size(20);
    for nodes in [2usize, 4, 8, 16] {
        let topo = Topology::new(nodes, 4);
        group.bench_with_input(BenchmarkId::from_parameter(nodes * 4), &topo, |b, topo| {
            b.iter(|| {
                NcclA2A
                    .plan(topo, 64_000_000)
                    .simulate(topo, &hw)
                    .unwrap()
                    .makespan()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulate, bench_plan_sizes);
criterion_main!(benches);
