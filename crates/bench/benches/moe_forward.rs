//! Criterion: gating and MoE-layer forward/backward on the functional
//! substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemoe_moe::{MoeLayer, TopKGate};
use schemoe_tensor::nn::Module;
use schemoe_tensor::rng::{self, seeded};

fn bench_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_forward");
    group.sample_size(30);
    for tokens in [64usize, 256, 1024] {
        let mut gate = TopKGate::new(64, 16, 2, 1.25, &mut seeded(1));
        let x = rng::uniform(&[tokens, 64], 1.0, &mut seeded(2));
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &x, |b, x| {
            b.iter(|| gate.forward(std::hint::black_box(x)))
        });
    }
    group.finish();
}

fn bench_moe_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("moe_layer");
    group.sample_size(20);
    let mut layer = MoeLayer::new(64, 128, 8, 2, 1.25, &mut seeded(3));
    let x = rng::uniform(&[256, 64], 1.0, &mut seeded(4));
    group.bench_function("forward", |b| {
        b.iter(|| layer.forward(std::hint::black_box(&x)))
    });
    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            let y = layer.forward(std::hint::black_box(&x));
            layer.backward(&y)
        })
    });
    group.finish();
}

fn bench_expert_gemm(c: &mut Criterion) {
    // The core matmul the expert cost model prices.
    let mut group = c.benchmark_group("expert_gemm");
    group.sample_size(20);
    for m in [64usize, 128, 256] {
        let a = rng::uniform(&[256, m], 1.0, &mut seeded(5));
        let w = rng::uniform(&[m, m * 2], 1.0, &mut seeded(6));
        group.bench_with_input(BenchmarkId::from_parameter(m), &(a, w), |b, (a, w)| {
            b.iter(|| a.matmul(std::hint::black_box(w)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gate, bench_moe_layer, bench_expert_gemm);
criterion_main!(benches);
