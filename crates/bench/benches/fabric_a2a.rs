//! Criterion: functional all-to-all over the in-process fabric.
//!
//! Measures the real data-movement path (thread spawn, channel send/recv,
//! tag matching) for each algorithm on a small topology.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schemoe_cluster::{Fabric, Topology};
use schemoe_collectives::{AllToAll, NcclA2A, OneDimHierA2A, PipeA2A, TwoDimHierA2A};

fn run_once(alg: &dyn AllToAll, topo: Topology, payload: usize) {
    Fabric::run(topo, |mut h| {
        let chunks: Vec<Bytes> = (0..h.world_size())
            .map(|_| Bytes::from(vec![0u8; payload]))
            .collect();
        alg.all_to_all(&mut h, chunks, 0).unwrap()
    });
}

fn bench_fabric(c: &mut Criterion) {
    let topo = Topology::new(2, 2);
    let algs: Vec<(&str, Box<dyn AllToAll>)> = vec![
        ("nccl", Box::new(NcclA2A)),
        ("1dh", Box::new(OneDimHierA2A)),
        ("2dh", Box::new(TwoDimHierA2A)),
        ("pipe", Box::new(PipeA2A::new())),
    ];
    let mut group = c.benchmark_group("fabric_a2a_2x2_16KiB");
    group.sample_size(20);
    for (name, alg) in &algs {
        group.bench_with_input(BenchmarkId::from_parameter(name), alg, |b, alg| {
            b.iter(|| run_once(alg.as_ref(), topo, 16 * 1024))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
