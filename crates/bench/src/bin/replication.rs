//! Buddy-replication benchmark: what does keeping every expert's warm
//! replica cost, and what does it buy at failover?
//!
//! Three phases over the 8-rank fault-tolerant trainer:
//!
//! 1. **Steady-state overhead** — fault-free runs at `K = 0` vs `K = 8`,
//!    best-of-N wall time each. Replication streams delta frames to the
//!    buddy through the overlap executor, so the gate demands the cost
//!    stays under 10% of baseline step time. The loss curves must also
//!    stay bit-identical: replication is observability, not arithmetic.
//! 2. **Failover staleness** — kill the victim mid-epoch and report how
//!    many committed steps the activated replica lagged behind (bounded
//!    by the quantum `K`).
//! 3. **Handback** — revive the victim and report the bytes the buddy
//!    streamed back when returning the hosted expert.
//!
//! Emits machine-readable `BENCH_*` lines and a `BENCH_replication.json`
//! report that CI archives next to the recovery report.
//!
//! `CHAOS_SEED` (or the first CLI argument) selects the campaign seed.

use std::time::{Duration, Instant};

use schemoe::prelude::*;
use schemoe_models::{run_ft_rank, FtConfig, FtReport};

const WORLD: usize = 8;
/// Steady-state phase: long enough to amortize thread spawn and hit
/// eleven replication quanta at `K = 8`.
const OVERHEAD_STEPS: usize = 96;
/// Failover phases reuse the chaos-campaign shape.
const FAULT_STEPS: usize = 20;
const K: usize = 8;
const REPS: usize = 5;
const KILLED: usize = 5;
const BUDDY: usize = (KILLED + 1) % WORLD;
const KILL_AFTER_SENDS: u64 = 900;
const REVIVE_DELTA: u64 = 200;
/// The steady-state gate: replication must cost under 10% of step time.
const OVERHEAD_GATE_PCT: f64 = 10.0;

fn seed() -> u64 {
    std::env::args()
        .nth(1)
        .or_else(|| std::env::var("CHAOS_SEED").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn ft_config(steps: usize, interval: usize) -> FtConfig {
    let mut cfg = ReplicaSpec::every(interval).apply(FtConfig::tiny(steps).with_seed(40));
    cfg.vote_timeout_ms = 400;
    cfg
}

fn run_world(cfg: FtConfig, spec: Option<FaultSpec>) -> Vec<FtReport> {
    let topo = Topology::new(2, 4);
    match spec {
        Some(spec) => {
            let plan = ScheMoeConfig::serial()
                .with_faults(spec)
                .fault_plan()
                .expect("campaign configured");
            Fabric::run_with_faults(topo, plan, move |mut h| run_ft_rank(&mut h, &cfg))
        }
        None => Fabric::run(topo, move |mut h| run_ft_rank(&mut h, &cfg)),
    }
}

/// Best-of-N wall time for two fault-free worlds, measured back to back
/// in each rep so machine-load drift hits both configurations alike.
/// Returns the best times and the last reports for the bit-identity
/// check.
#[allow(clippy::type_complexity)]
fn time_worlds(
    cfg_a: FtConfig,
    cfg_b: FtConfig,
) -> (Duration, Duration, Vec<FtReport>, Vec<FtReport>) {
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    let mut reports_a = Vec::new();
    let mut reports_b = Vec::new();
    for _ in 0..REPS {
        let start = Instant::now();
        reports_a = run_world(cfg_a, None);
        best_a = best_a.min(start.elapsed());
        let start = Instant::now();
        reports_b = run_world(cfg_b, None);
        best_b = best_b.min(start.elapsed());
    }
    (best_a, best_b, reports_a, reports_b)
}

fn main() {
    let seed = seed();
    println!(
        "replication: {WORLD} ranks, quantum K={K}, overhead over {OVERHEAD_STEPS} steps \
         (best of {REPS}), kill rank {KILLED} after {KILL_AFTER_SENDS} sends, seed {seed}\n"
    );

    // --- Phase 1: steady-state overhead, K = 0 vs K = 8. ---
    let (t_base, t_repl, base, repl) =
        time_worlds(ft_config(OVERHEAD_STEPS, 0), ft_config(OVERHEAD_STEPS, K));

    for (r, (a, b)) in base.iter().zip(repl.iter()).enumerate() {
        let bits_a: Vec<u32> = a.loss_curve.iter().map(|l| l.to_bits()).collect();
        let bits_b: Vec<u32> = b.loss_curve.iter().map(|l| l.to_bits()).collect();
        assert_eq!(
            bits_a, bits_b,
            "rank {r}: replication must not perturb the loss curve"
        );
    }
    let quanta: u64 = repl.iter().map(|r| r.replica_quanta).sum();
    let replica_bytes: u64 = repl.iter().map(|r| r.replica_bytes).sum();
    assert!(quanta > 0, "the replicated run must have streamed frames");
    let overhead_pct = (t_repl.as_secs_f64() - t_base.as_secs_f64()) / t_base.as_secs_f64() * 100.0;
    let step_base_ms = t_base.as_secs_f64() * 1e3 / OVERHEAD_STEPS as f64;
    let step_repl_ms = t_repl.as_secs_f64() * 1e3 / OVERHEAD_STEPS as f64;
    println!(
        "steady state: {step_base_ms:.3} ms/step bare, {step_repl_ms:.3} ms/step replicated \
         ({overhead_pct:+.2}%), {quanta} quanta / {replica_bytes} B streamed"
    );

    // --- Phase 2: failover staleness under the kill campaign. ---
    let spec = FaultSpec::seeded(seed)
        .with_kill(KILLED, KILL_AFTER_SENDS)
        .with_recv_deadline_ms(800);
    let killed = run_world(ft_config(FAULT_STEPS, K), Some(spec));
    let died_at = killed[KILLED]
        .died_at_step
        .expect("the victim must observe its own death");
    assert_eq!(
        killed[BUDDY].failover_activations, 1,
        "the buddy must activate the replica exactly once"
    );
    let staleness = killed[BUDDY].failover_staleness_steps[0];
    assert!(
        staleness <= K as u64,
        "staleness {staleness} exceeds quantum {K}"
    );
    println!(
        "failover: rank {KILLED} died at step {died_at}, buddy {BUDDY} activated a replica \
         {staleness} steps stale (quantum {K})"
    );

    // --- Phase 3: handback bytes on revive. ---
    let spec = FaultSpec::seeded(seed)
        .with_kill(KILLED, KILL_AFTER_SENDS)
        .with_revive(KILLED, KILL_AFTER_SENDS + REVIVE_DELTA)
        .with_recv_deadline_ms(800);
    let revived = run_world(ft_config(FAULT_STEPS, K), Some(spec));
    assert_eq!(revived[KILLED].rejoins, 1, "the victim must rejoin once");
    assert_eq!(
        revived[BUDDY].handbacks, 1,
        "the buddy must hand the expert back exactly once"
    );
    let host_handback = revived[BUDDY].handback_bytes;
    let rejoiner_handback = revived[KILLED].handback_bytes;
    assert!(host_handback > 0 && rejoiner_handback > 0);
    println!("handback: host streamed {host_handback} B, rejoiner applied {rejoiner_handback} B");

    println!("\nBENCH_REPLICATION_OVERHEAD_PCT={overhead_pct:.2}");
    println!("BENCH_REPLICATION_QUANTA={quanta}");
    println!("BENCH_REPLICATION_BYTES={replica_bytes}");
    println!("BENCH_REPLICATION_STALENESS_STEPS={staleness}");
    println!("BENCH_REPLICATION_HANDBACK_BYTES={host_handback}");

    assert!(
        overhead_pct < OVERHEAD_GATE_PCT,
        "steady-state replication overhead {overhead_pct:.2}% breaches the \
         {OVERHEAD_GATE_PCT}% gate"
    );

    let report = format!(
        "{{\"bench\":\"replication\",\"seed\":{seed},\"ranks\":{WORLD},\
         \"quantum\":{K},\"reps\":{REPS},\
         \"overhead\":{{\"steps\":{OVERHEAD_STEPS},\"base_ms_per_step\":{step_base_ms:.4},\
         \"replicated_ms_per_step\":{step_repl_ms:.4},\"pct\":{overhead_pct:.4},\
         \"gate_pct\":{OVERHEAD_GATE_PCT},\"quanta\":{quanta},\"bytes\":{replica_bytes}}},\
         \"failover\":{{\"steps\":{FAULT_STEPS},\"killed_rank\":{KILLED},\
         \"kill_after_sends\":{KILL_AFTER_SENDS},\"died_at_step\":{died_at},\
         \"staleness_steps\":{staleness}}},\
         \"handback\":{{\"host_bytes\":{host_handback},\
         \"rejoiner_bytes\":{rejoiner_handback}}}}}\n"
    );
    let path = "BENCH_replication.json";
    std::fs::write(path, &report).expect("write BENCH_replication.json");
    println!("BENCH_JSON={path}");
}
