//! Wall-clock benchmark of the functional overlapped MoE forward.
//!
//! Runs the same expert-parallel forward twice on a fabric whose
//! cross-rank sends cost real time (a [`WireModel`] charging latency +
//! bytes/bandwidth): once serially (degree 1) and once with ScheMoE's
//! pipelined schedule (degree `r`), and reports the measured speedup.
//! Because the wire occupies only the communication worker, the pipelined
//! run hides transfer time behind expert compute — the same mechanism the
//! paper's Fig. 3 pipeline exploits on real NICs.
//!
//! Output is machine-readable `BENCH_*` lines plus a human table, and a
//! `BENCH_overlap.json` report (per-degree speedups, per-phase time
//! breakdown from an instrumented extra run, and fabric byte counts) that
//! CI's bench gate consumes.

use std::time::{Duration, Instant};

use schemoe_cluster::{Fabric, Topology, WireModel};
use schemoe_collectives::NcclA2A;
use schemoe_compression::NoCompression;
use schemoe_moe::{DistributedMoeLayer, Expert, FfExpert, TopKGate};
use schemoe_obs as obs;
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

const M: usize = 128;
const H: usize = 512;
const N_LOCAL: usize = 256;
const K: usize = 2;
const CAPACITY: f64 = 1.5;
const REPS: usize = 3;

/// One full forward at the given degree; returns (max rank ms, outputs).
fn run_once(
    topo: Topology,
    wire: WireModel,
    x_global: &Tensor,
    degree: usize,
) -> (f64, Vec<Tensor>) {
    let results = Fabric::run_with_wire(topo, wire, |mut h| {
        let me = h.rank();
        let p = h.world_size();
        let gate = TopKGate::new(M, p, K, CAPACITY, &mut seeded(555));
        let experts: Vec<Box<dyn Expert>> =
            vec![Box::new(FfExpert::new(M, H, &mut seeded(1000 + me as u64)))];
        let mut layer =
            DistributedMoeLayer::new(gate, experts, Box::new(NoCompression), Box::new(NcclA2A))
                .with_partition_degree(degree)
                .with_recv_timeout(Duration::from_secs(60));
        let mut x = Tensor::zeros(&[N_LOCAL, M]);
        for r in 0..N_LOCAL {
            x.row_mut(r).copy_from_slice(x_global.row(me * N_LOCAL + r));
        }
        h.barrier();
        let t0 = Instant::now();
        let y = layer.forward(&mut h, &x, 0).unwrap();
        let elapsed = t0.elapsed();
        h.barrier();
        (elapsed, y)
    });
    let ms = results
        .iter()
        .map(|(d, _)| d.as_secs_f64() * 1e3)
        .fold(0.0f64, f64::max);
    (ms, results.into_iter().map(|(_, y)| y).collect())
}

/// Best-of-`REPS` timing after one warmup, plus the outputs of the last
/// run (identical across runs: the layer is deterministic).
fn measure(topo: Topology, wire: WireModel, x: &Tensor, degree: usize) -> (f64, Vec<Tensor>) {
    let _ = run_once(topo, wire, x, degree);
    let mut best = f64::INFINITY;
    let mut outs = Vec::new();
    for _ in 0..REPS {
        let (ms, y) = run_once(topo, wire, x, degree);
        best = best.min(ms);
        outs = y;
    }
    (best, outs)
}

/// Per-phase wall time and fabric totals from one instrumented forward.
///
/// Timing reps run with the recorder off (so the gated speedup reflects the
/// uninstrumented path); this extra run turns it on to attribute where the
/// time goes. Fabric counters are summed across ranks.
struct Instrumented {
    encode_ms: f64,
    a2a_ms: f64,
    expert_ms: f64,
    decode_ms: f64,
    bytes_sent: u64,
    msgs_sent: u64,
    recv_wait_ms: f64,
    timeouts: u64,
}

fn instrument(topo: Topology, wire: WireModel, x: &Tensor, degree: usize) -> Instrumented {
    obs::reset_counters();
    let _ = obs::take();
    obs::enable();
    let _ = run_once(topo, wire, x, degree);
    let trace = obs::take();
    obs::disable();
    let (mut bytes_sent, mut msgs_sent, mut recv_wait_ns, mut timeouts) = (0u64, 0u64, 0u64, 0u64);
    for c in &trace.counters {
        bytes_sent += c.bytes_sent;
        msgs_sent += c.msgs_sent;
        recv_wait_ns += c.recv_wait_ns;
        timeouts += c.timeouts;
    }
    Instrumented {
        encode_ms: trace.total_ms_by_cat("encode"),
        a2a_ms: trace.total_ms_by_cat("a2a"),
        expert_ms: trace.total_ms_by_cat("expert"),
        decode_ms: trace.total_ms_by_cat("decode"),
        bytes_sent,
        msgs_sent,
        recv_wait_ms: recv_wait_ns as f64 / 1e6,
        timeouts,
    }
}

fn json_degree(r: usize, ms: f64, speedup: f64, i: &Instrumented) -> String {
    format!(
        concat!(
            "{{\"r\":{},\"ms\":{:.3},\"speedup\":{:.4},",
            "\"phases_ms\":{{\"encode\":{:.3},\"a2a\":{:.3},",
            "\"expert\":{:.3},\"decode\":{:.3}}},",
            "\"fabric\":{{\"bytes_sent\":{},\"msgs_sent\":{},",
            "\"recv_wait_ms\":{:.3},\"timeouts\":{}}}}}"
        ),
        r,
        ms,
        speedup,
        i.encode_ms,
        i.a2a_ms,
        i.expert_ms,
        i.decode_ms,
        i.bytes_sent,
        i.msgs_sent,
        i.recv_wait_ms,
        i.timeouts,
    )
}

fn main() {
    let topo = Topology::new(1, 4);
    let p = topo.world_size();
    // ~10 MB/s + 200 µs/message: sized so one layer's wire time is of the
    // same order as its expert compute, the regime pipelining targets.
    let wire = WireModel {
        latency: Duration::from_micros(200),
        bytes_per_sec: 10e6,
    };
    let x_global = rng::uniform(&[N_LOCAL * p, M], 1.0, &mut seeded(7));

    println!(
        "overlap_forward: {p} ranks, {N_LOCAL} tokens/rank, M={M}, H={H}, \
         k={K}, f={CAPACITY}, wire {:.0} MB/s + {:?}/msg\n",
        wire.bytes_per_sec / 1e6,
        wire.latency,
    );

    let (serial_ms, serial_out) = measure(topo, wire, &x_global, 1);
    println!("{:>10} {:>12}", "degree", "fwd ms");
    println!("{:>10} {serial_ms:>12.1}", "1 (serial)");
    println!("BENCH_SERIAL_MS={serial_ms:.2}");
    let serial_inst = instrument(topo, wire, &x_global, 1);
    let mut degree_json = vec![json_degree(1, serial_ms, 1.0, &serial_inst)];

    for degree in [2usize, 4, 8] {
        let (ms, out) = measure(topo, wire, &x_global, degree);
        for (rank, (got, want)) in out.iter().zip(&serial_out).enumerate() {
            let diff = got.max_abs_diff(want).unwrap();
            assert_eq!(diff, 0.0, "degree {degree} rank {rank} diverged by {diff}");
        }
        let speedup = serial_ms / ms;
        println!("{degree:>10} {ms:>12.1}   ({speedup:.2}x, bit-identical)");
        println!("BENCH_OVERLAPPED_R{degree}_MS={ms:.2}");
        println!("BENCH_SPEEDUP_R{degree}={speedup:.3}");
        let inst = instrument(topo, wire, &x_global, degree);
        degree_json.push(json_degree(degree, ms, speedup, &inst));
    }

    let report = format!(
        "{{\"bench\":\"overlap_forward\",\"ranks\":{p},\"tokens_per_rank\":{N_LOCAL},\
         \"serial_ms\":{serial_ms:.3},\"degrees\":[{}]}}\n",
        degree_json.join(",")
    );
    let path = "BENCH_overlap.json";
    std::fs::write(path, &report).expect("write BENCH_overlap.json");
    println!("\nBENCH_JSON={path}");
}
