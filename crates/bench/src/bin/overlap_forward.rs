//! Wall-clock benchmark of the functional overlapped MoE forward.
//!
//! Runs the same expert-parallel forward twice on a fabric whose
//! cross-rank sends cost real time (a [`WireModel`] charging latency +
//! bytes/bandwidth): once serially (degree 1) and once with ScheMoE's
//! pipelined schedule (degree `r`), and reports the measured speedup.
//! Because the wire occupies only the communication worker, the pipelined
//! run hides transfer time behind expert compute — the same mechanism the
//! paper's Fig. 3 pipeline exploits on real NICs.
//!
//! Output is machine-readable `BENCH_*` lines plus a human table.

use std::time::{Duration, Instant};

use schemoe_cluster::{Fabric, Topology, WireModel};
use schemoe_collectives::NcclA2A;
use schemoe_compression::NoCompression;
use schemoe_moe::{DistributedMoeLayer, Expert, FfExpert, TopKGate};
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

const M: usize = 128;
const H: usize = 512;
const N_LOCAL: usize = 256;
const K: usize = 2;
const CAPACITY: f64 = 1.5;
const REPS: usize = 3;

/// One full forward at the given degree; returns (max rank ms, outputs).
fn run_once(
    topo: Topology,
    wire: WireModel,
    x_global: &Tensor,
    degree: usize,
) -> (f64, Vec<Tensor>) {
    let results = Fabric::run_with_wire(topo, wire, |mut h| {
        let me = h.rank();
        let p = h.world_size();
        let gate = TopKGate::new(M, p, K, CAPACITY, &mut seeded(555));
        let experts: Vec<Box<dyn Expert>> =
            vec![Box::new(FfExpert::new(M, H, &mut seeded(1000 + me as u64)))];
        let mut layer =
            DistributedMoeLayer::new(gate, experts, Box::new(NoCompression), Box::new(NcclA2A))
                .with_partition_degree(degree)
                .with_recv_timeout(Duration::from_secs(60));
        let mut x = Tensor::zeros(&[N_LOCAL, M]);
        for r in 0..N_LOCAL {
            x.row_mut(r).copy_from_slice(x_global.row(me * N_LOCAL + r));
        }
        h.barrier();
        let t0 = Instant::now();
        let y = layer.forward(&mut h, &x, 0).unwrap();
        let elapsed = t0.elapsed();
        h.barrier();
        (elapsed, y)
    });
    let ms = results
        .iter()
        .map(|(d, _)| d.as_secs_f64() * 1e3)
        .fold(0.0f64, f64::max);
    (ms, results.into_iter().map(|(_, y)| y).collect())
}

/// Best-of-`REPS` timing after one warmup, plus the outputs of the last
/// run (identical across runs: the layer is deterministic).
fn measure(topo: Topology, wire: WireModel, x: &Tensor, degree: usize) -> (f64, Vec<Tensor>) {
    let _ = run_once(topo, wire, x, degree);
    let mut best = f64::INFINITY;
    let mut outs = Vec::new();
    for _ in 0..REPS {
        let (ms, y) = run_once(topo, wire, x, degree);
        best = best.min(ms);
        outs = y;
    }
    (best, outs)
}

fn main() {
    let topo = Topology::new(1, 4);
    let p = topo.world_size();
    // ~10 MB/s + 200 µs/message: sized so one layer's wire time is of the
    // same order as its expert compute, the regime pipelining targets.
    let wire = WireModel {
        latency: Duration::from_micros(200),
        bytes_per_sec: 10e6,
    };
    let x_global = rng::uniform(&[N_LOCAL * p, M], 1.0, &mut seeded(7));

    println!(
        "overlap_forward: {p} ranks, {N_LOCAL} tokens/rank, M={M}, H={H}, \
         k={K}, f={CAPACITY}, wire {:.0} MB/s + {:?}/msg\n",
        wire.bytes_per_sec / 1e6,
        wire.latency,
    );

    let (serial_ms, serial_out) = measure(topo, wire, &x_global, 1);
    println!("{:>10} {:>12}", "degree", "fwd ms");
    println!("{:>10} {serial_ms:>12.1}", "1 (serial)");
    println!("BENCH_SERIAL_MS={serial_ms:.2}");

    for degree in [2usize, 4, 8] {
        let (ms, out) = measure(topo, wire, &x_global, degree);
        for (rank, (got, want)) in out.iter().zip(&serial_out).enumerate() {
            let diff = got.max_abs_diff(want).unwrap();
            assert_eq!(diff, 0.0, "degree {degree} rank {rank} diverged by {diff}");
        }
        let speedup = serial_ms / ms;
        println!("{degree:>10} {ms:>12.1}   ({speedup:.2}x, bit-identical)");
        println!("BENCH_OVERLAPPED_R{degree}_MS={ms:.2}");
        println!("BENCH_SPEEDUP_R{degree}={speedup:.3}");
    }
}
