//! Scaling study: ScheMoE vs baselines as the cluster grows.
//!
//! The paper evaluates one 32-GPU cluster and leaves larger machines as
//! future work ("we plan to evaluate our algorithm on other supercomputers
//! and public cloud GPU clusters"). The simulator has no such constraint:
//! this sweep holds the per-GPU workload fixed (weak scaling, E = P) and
//! grows the cluster from 1 to 32 nodes.

use schemoe::prelude::*;
use schemoe_collectives::{a2a_time, analysis};

fn main() {
    let hw = HardwareProfile::paper_testbed();
    let per_gpu_tokens = 8 * 1024;
    println!("Weak scaling: per-GPU work fixed (8K tokens, M=H=4096, E=P, k=2, f=1.2)\n");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>9} {:>10}",
        "nodes", "GPUs", "naive (ms)", "tutel (ms)", "schemoe", "speedup", "pipe max"
    );
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let topo = Topology::new(nodes, 4);
        let shape = LayerShape {
            tokens_per_gpu: per_gpu_tokens,
            model_dim: 4096,
            hidden_dim: 4096,
            experts: topo.world_size(),
            k: 2,
            capacity_factor: 1.2,
        };
        let naive = NaiveSystem::new().layer_time(&shape, &topo, &hw);
        let tutel = TutelEmu::new().layer_time(&shape, &topo, &hw);
        let schemoe = ScheMoeSystem::default_config().layer_time(&shape, &topo, &hw);
        let s = (shape.a2a_bytes() as f64 / 4.0) as u64;
        let _ = a2a_time(&PipeA2A::new(), &topo, &hw, s);
        println!(
            "{:>6} {:>6} {:>12.1} {:>12.1} {:>9.1}ms {:>8.2}x {:>9.2}x",
            nodes,
            topo.world_size(),
            naive.as_ms(),
            tutel.as_ms(),
            schemoe.as_ms(),
            tutel / schemoe,
            analysis::max_speedup(&topo, &hw, shape.a2a_bytes()),
        );
    }
    println!();
    println!(
        "With E = P the all-to-all volume per GPU is constant but the message\n\
         count grows with P, so per-message latency erodes everyone at scale;\n\
         ScheMoE's advantage persists because compression and intra/inter\n\
         overlap attack the bandwidth term that still dominates."
    );
}
