//! Regenerates **Fig. 8**: speedup of ScheMoE over Tutel across the 675
//! customized MoE-layer configurations of Table 4 (E=32, k=2).
//!
//! Paper: ScheMoE wins in every valid case; mean speedup ≈ 1.22×.
//! As with Table 7, ScheMoE runs with Pipe-A2A + OptSche and no ZFP here —
//! with 4× compression enabled the sweep mean would be ≈2.9×, far beyond
//! anything the paper reports, which is strong evidence the sweep measured
//! the scheduling/A2A improvements alone (see EXPERIMENTS.md).

use schemoe::prelude::*;
use schemoe_bench::{sweep_config_fits, table4_grid};

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let tutel = TutelEmu::new();
    let schemoe = ScheMoeSystem::without_compression();

    let grid = table4_grid();
    let mut speedups = Vec::new();
    let mut excluded = 0usize;
    let mut losses = 0usize;
    for shape in &grid {
        if !sweep_config_fits(shape, &topo, &hw) {
            excluded += 1;
            continue;
        }
        // One MoE layer, forward + backward, as in the layer microbench.
        let t = tutel.layer_time_scaled(shape, &topo, &hw, 1.0)
            + tutel.layer_time_scaled(shape, &topo, &hw, 2.0);
        let s = schemoe.layer_time_scaled(shape, &topo, &hw, 1.0)
            + schemoe.layer_time_scaled(shape, &topo, &hw, 2.0);
        let sp = t / s;
        if sp < 1.0 {
            losses += 1;
        }
        speedups.push(sp);
    }
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = speedups.len();
    let mean = speedups.iter().sum::<f64>() / n as f64;

    println!(
        "Fig. 8: ScheMoE speedup over Tutel across {} valid configs ({} OOM-excluded)",
        n, excluded
    );
    println!("mean speedup: {mean:.2}x   (paper: 1.22x)");
    println!(
        "min {:.2}x   p25 {:.2}x   median {:.2}x   p75 {:.2}x   max {:.2}x",
        speedups[0],
        speedups[n / 4],
        speedups[n / 2],
        speedups[3 * n / 4],
        speedups[n - 1]
    );
    println!("configs where ScheMoE loses: {losses}  (paper: 0)");
    println!();

    // Histogram, 0.1x buckets.
    println!("histogram (bucket width 0.1x):");
    let lo = 1.0f64;
    let hi = speedups[n - 1].max(2.0);
    let buckets = ((hi - lo) / 0.1).ceil() as usize + 1;
    let mut counts = vec![0usize; buckets];
    for &s in &speedups {
        let b = (((s - lo) / 0.1).floor().max(0.0) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
    for (b, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let label = format!(
            "[{:.1},{:.1})",
            lo + b as f64 * 0.1,
            lo + (b + 1) as f64 * 0.1
        );
        let bar = "#".repeat((c * 50).div_ceil(max_count));
        println!("{label:>12} {c:>4} {bar}");
    }
}
