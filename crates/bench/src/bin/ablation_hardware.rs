//! Ablation: Pipe-A2A's gain as a function of the intra/inter balance.
//!
//! §7's Eq. 18 says the pipelining headroom is
//! `(t_intra + t_inter) / max(t_intra, t_inter)` — maximal (2×) when the
//! two totals are equal, collapsing to 1× when either side dominates.
//! This sweep scales the intra-node bandwidth across two decades and
//! shows the measured speedup tracing out exactly that tent curve.

use schemoe::prelude::*;
use schemoe_collectives::{a2a_time, analysis};

fn main() {
    let topo = Topology::paper_testbed();
    let base = HardwareProfile::paper_testbed();
    let size = 1_000_000_000u64;

    println!("Pipe-A2A speedup over sequential A2A vs intra-node bandwidth");
    println!("(1 GB exchange on the 8x4 topology; inter-node fixed at 2 GB/s/GPU)\n");
    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>10}",
        "intra GB/s", "t_intra ms", "t_inter ms", "measured", "Eq.18"
    );
    for mult in [0.125f64, 0.25, 0.45, 0.62, 0.8, 1.0, 2.0, 4.0, 8.0, 64.0] {
        let mut hw = base.clone();
        hw.intra_link = schemoe_netsim::cost::LinkModel::new(
            hw.intra_link.latency_s,
            hw.intra_link.bandwidth_bps * mult,
        );
        let nccl = a2a_time(&NcclA2A, &topo, &hw, size).expect("valid");
        let pipe = a2a_time(&PipeA2A::new(), &topo, &hw, size).expect("valid");
        println!(
            "{:>14.2} {:>11.1} {:>11.1} {:>9.2}x {:>9.2}x",
            hw.intra_link.bandwidth_bps / 1e9,
            analysis::t_intra(&topo, &hw, size).as_ms(),
            analysis::t_inter(&topo, &hw, size).as_ms(),
            nccl / pipe,
            analysis::max_speedup(&topo, &hw, size),
        );
    }
    println!();
    println!(
        "The tent peaks where t_intra = t_inter (the paper's 'comparable\n\
         bandwidth' condition) and collapses on NVLink-class intra links —\n\
         the §7 explanation of why Pipe-A2A targets PCIe clusters."
    );
}
