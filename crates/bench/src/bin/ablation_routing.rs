//! Ablation: routing strategy vs load balance and buffer pressure.
//!
//! §8's algorithmic direction: balanced routing (BASE, expert-choice,
//! stochastic) attacks the same imbalance that capacity factors and
//! Faster-MoE's uncapped buffers wrestle with at the systems level. This
//! harness routes identical (skew-controlled) traffic through each
//! strategy and reports the imbalance, drop rate, and the worst-case
//! dispatch-buffer requirement each would impose.

use schemoe_moe::{balance_stats, ExpertChoiceRouter, RandomRouter, Router, TokenChoiceRouter};
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

/// Scores with a controllable hot-expert skew: `skew` of the probability
/// mass prefers expert 0.
fn scores(n: usize, e: usize, skew: f32, seed: u64) -> Tensor {
    let mut s = rng::uniform(&[n, e], 0.3, &mut seeded(seed));
    for t in 0..n {
        s.row_mut(t)[0] += skew * 3.0;
    }
    s.softmax_rows().expect("rank-2")
}

fn main() {
    let (n, e, k) = (4096usize, 32usize, 2usize);
    println!("Routing 4096 tokens to 32 experts (k=2, f=1.25) under increasing skew\n");
    println!(
        "{:>6} {:>15} {:>11} {:>10} {:>9} {:>16}",
        "skew", "router", "imbalance", "load CV", "drops", "buffer need"
    );
    for skew in [0.0f32, 0.15, 0.4] {
        let sc = scores(n, e, skew, 11);
        let mut routers: Vec<(&str, Box<dyn Router>)> = vec![
            ("token-choice", Box::new(TokenChoiceRouter::new(k, 1.25))),
            // An uncapped token-choice is what Faster-MoE effectively
            // provisions for: watch its buffer column under skew.
            ("tc-uncapped", Box::new(TokenChoiceRouter::new(k, 1e9))),
            ("expert-choice", Box::new(ExpertChoiceRouter::new(k, 1.25))),
            (
                "stochastic",
                Box::new(RandomRouter::new(k, 1.25, seeded(12))),
            ),
        ];
        for (label, router) in routers.iter_mut() {
            let d = router.route(&sc);
            let stats = balance_stats(&d, k);
            // Worst-case dispatch buffer an uncapped system (Faster-MoE
            // style) would need: max expert load x token bytes (M=1024).
            let max_load = d.expert_loads().iter().copied().max().unwrap_or(0);
            let buffer_mb = (max_load * 1024 * 4) as f64 / 1e6;
            println!(
                "{:>6.2} {:>15} {:>10.2}x {:>10.2} {:>8.1}% {:>13.1} MB",
                skew,
                label,
                stats.imbalance,
                stats.load_cv,
                stats.drop_rate * 100.0,
                buffer_mb,
            );
        }
        println!();
    }
    println!(
        "Token-choice keeps the semantics the model trained with but drops\n\
         tokens under skew; expert-choice is perfectly balanced by\n\
         construction (flat buffer need — the property that would have saved\n\
         Faster-MoE's BERT run); stochastic routing balances in expectation.\n\
         ScheMoE composes with all three: the scheduler only sees task sizes."
    );
}
