//! Graceful-degradation-under-skew benchmark: load-aware expert placement
//! versus the static layout.
//!
//! Three scenarios over a 4-rank in-process channel fabric, forward-only
//! so the expert-stage compute balance is the whole story:
//!
//! 1. **Skew throughput** (seeds 1–3) — every rank's batch is built by
//!    rejection sampling against the seeded gate so token routing follows
//!    a Zipf(1.8) law over the experts (~66% of assignments land on one
//!    hot expert), with the hot set rotating two positions at mid-run and
//!    a short overload burst right after the shift. The dynamic run re-plans
//!    every [`QUANTUM`] steps through the same [`decide_plan`] policy the
//!    trainer's placement controller uses — replicating the hot expert
//!    across the idlest ranks — and must beat the static layout's
//!    throughput by the gate margin (15%).
//! 2. **Gray rank** — the same workload with every link touching rank 3
//!    shaped by [`ChaosPlan::slow_rank`] (latency + 5× bandwidth cut).
//!    Sender-side stall probes feed the gray detector, the controller
//!    demotes rank 3 (its expert re-homes onto a healthy rank), and the
//!    post-demotion steady-state step time must stay within 1.5× of the
//!    healthy dynamic baseline.
//! 3. **Shed accounting / determinism** — the overload burst exceeds the
//!    gate capacity, so a small, bounded fraction of tokens sheds
//!    (< 1% end to end); a seeded replay of the dynamic run must reproduce
//!    the per-expert routed loads, the shed count, and the plan sequence
//!    bit for bit, and the obs routing board must agree with the layer's
//!    own accounting.
//!
//! Emits `BENCH_placement.json` for `check_gate --placement` plus a
//! `trace_placement.json` chrome trace of the replay run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::Rng;
use schemoe_cluster::{ChaosLink, ChaosPlan, Fabric, Topology, TransportKind};
use schemoe_collectives::NcclA2A;
use schemoe_compression::NoCompression;
use schemoe_moe::{
    decide_plan, DistributedMoeLayer, Expert, FfExpert, LoadReport, PolicyConfig, TopKGate,
};
use schemoe_obs as obs;
use schemoe_tensor::rng::seeded;
use schemoe_tensor::Tensor;

const WORLD: usize = 4;
const M: usize = 32;
const H: usize = 64;
const N_LOCAL: usize = 256;
const K: usize = 1;
const DEGREE: usize = 2;
const CAP: f64 = 3.0;
const STEPS: usize = 80;
const QUANTUM: usize = 8;
const SHIFT: usize = STEPS / 2;
const BURST: usize = 3;
const GRAY_STEPS: usize = 48;
const POOL: usize = 4096;
const GATE_SEED: u64 = 777;
const PROBES: usize = 3;

/// The uniform wire every scenario runs under: sender-blocking latency
/// plus a per-link bandwidth ceiling, so a rank's egress serializes on
/// its own thread and the hot expert's combine leg is a real bottleneck.
const WIRE_LATENCY_US: u64 = 60;
const WIRE_BW: u64 = 8 << 20;
/// The gray rank's links carry 5× the wire latency — past the detector's
/// 200µs floor and its `gray_factor ×` healthy-median bar.
const GRAY_LATENCY_US: u64 = 5 * WIRE_LATENCY_US;

/// Zipf(1.8) routing shares over the 4 expert rank-positions, plus the
/// harder burst profile used for [`BURST`] steps right after the shift.
const ZIPF: [f64; WORLD] = [0.663, 0.190, 0.092, 0.055];
const BURST_SHARE: [f64; WORLD] = [0.85, 0.07, 0.05, 0.03];

/// All per-rank batches for a run, indexed `[step][rank]`.
type Batches = Arc<Vec<Vec<Tensor>>>;

/// The all-pairs wire plan; with `gray` set, every link touching the last
/// rank carries [`GRAY_LATENCY_US`] instead (bandwidth unchanged), so
/// rank 3 looks like a gray straggler without being partitioned.
fn wire_plan(gray: bool) -> ChaosPlan {
    let mut plan = ChaosPlan::seeded(7);
    for src in 0..WORLD {
        for dst in 0..WORLD {
            if src == dst {
                continue;
            }
            let shaped = gray && (src == WORLD - 1 || dst == WORLD - 1);
            plan = plan.with_link(
                src,
                dst,
                ChaosLink {
                    loss_prob: 0.0,
                    latency: Duration::from_micros(if shaped {
                        GRAY_LATENCY_US
                    } else {
                        WIRE_LATENCY_US
                    }),
                    bytes_per_sec: Some(WIRE_BW),
                },
            );
        }
    }
    plan
}

/// Classifies a pool of candidate tokens by where the seeded gate routes
/// them (top-1, capacity wide open), then assembles every step's batches
/// by drawing pool rows so the realized routing follows the target share
/// profile. The run's gate shares the classifier's weights (same seed),
/// so the routed shares hold exactly under the tighter run capacity.
fn build_batches(seed: u64) -> Batches {
    let pool = schemoe_tensor::rng::uniform(&[POOL, M], 1.0, &mut seeded(9000 + seed));
    let mut probe_gate = TopKGate::new(M, WORLD, K, 64.0, &mut seeded(GATE_SEED));
    let decision = probe_gate.forward(&pool);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); WORLD];
    for (t, picks) in decision.assignments.iter().enumerate() {
        if let Some(&(e, _)) = picks.first() {
            buckets[e].push(t);
        }
    }
    for (e, b) in buckets.iter().enumerate() {
        assert!(!b.is_empty(), "no pool token routes to expert {e}");
    }

    let mut steps = Vec::with_capacity(STEPS);
    for step in 0..STEPS {
        let shares: &[f64; WORLD] = if (SHIFT..SHIFT + BURST).contains(&step) {
            &BURST_SHARE
        } else {
            &ZIPF
        };
        // The hot set shifts two positions at mid-run: rank-position i
        // maps onto expert (i + 2) % WORLD afterwards.
        let rotate = usize::from(step >= SHIFT) * 2;
        let mut ranks = Vec::with_capacity(WORLD);
        for rank in 0..WORLD {
            let mut rng = seeded(seed ^ ((step as u64) << 20) ^ ((rank as u64) << 8));
            let mut x = Tensor::zeros(&[N_LOCAL, M]);
            for row in 0..N_LOCAL {
                let u: f64 = rng.gen_range(0.0..1.0);
                let mut pos = WORLD - 1;
                let mut acc = 0.0;
                for (i, share) in shares.iter().enumerate() {
                    acc += share;
                    if u < acc {
                        pos = i;
                        break;
                    }
                }
                let expert = (pos + rotate) % WORLD;
                let bucket = &buckets[expert];
                let pick = bucket[rng.gen_range(0..bucket.len())];
                x.row_mut(row).copy_from_slice(pool.row(pick));
            }
            ranks.push(x);
        }
        steps.push(ranks);
    }
    Arc::new(steps)
}

/// One rank's totals out of a run.
#[derive(Clone, Debug, Default, PartialEq)]
struct RankOutcome {
    loads: Vec<u64>,
    shed: u64,
    routed: u64,
    plans: u64,
    replications: u64,
    demotions: u64,
    version: u64,
    wall_ms: f64,
    step_ms: Vec<f64>,
}

/// Runs `steps` forward-only steps on one rank; with `dynamic` set, every
/// [`QUANTUM`] steps runs the placement quantum the trainer uses: stall
/// probes, a load-report allgather, the shared [`decide_plan`] policy, and
/// a guest-body install + placement swap when the plan moved anything.
#[allow(clippy::too_many_lines)]
fn run_rank(
    h: &mut schemoe_cluster::RankHandle,
    batches: &Batches,
    steps: usize,
    dynamic: bool,
) -> RankOutcome {
    let me = h.rank();
    let p = h.world_size();
    let live = vec![true; p];
    let gate = TopKGate::new(M, WORLD, K, CAP, &mut seeded(GATE_SEED));
    let experts: Vec<Box<dyn Expert>> =
        vec![Box::new(FfExpert::new(M, H, &mut seeded(2000 + me as u64)))];
    let mut layer =
        DistributedMoeLayer::new(gate, experts, Box::new(NoCompression), Box::new(NcclA2A))
            .with_partition_degree(DEGREE)
            .with_recv_timeout(Duration::from_secs(60));
    let policy = PolicyConfig {
        hot_factor: 1.25,
        // Sleep-based wire latency overshoots by the kernel's timer slack
        // (~60µs sleeps read ~130µs), which compresses the gray-to-healthy
        // stall ratio; 2× the healthy median plus the detector's 200µs
        // floor still separates cleanly.
        gray_factor: 2.0,
        min_tokens: 1,
        ..PolicyConfig::default()
    };
    let mut out = RankOutcome {
        loads: vec![0u64; WORLD],
        ..RankOutcome::default()
    };

    let drain = |layer: &mut DistributedMoeLayer, out: &mut RankOutcome| {
        let (loads, shed, routed, p99) = layer.take_load_stats();
        for (acc, l) in out.loads.iter_mut().zip(&loads) {
            *acc += l;
        }
        out.shed += shed;
        out.routed += routed;
        (loads, shed, routed, p99)
    };

    h.barrier();
    let t0 = Instant::now();
    for step in 0..steps {
        let s0 = Instant::now();
        let y = layer
            .forward(h, &batches[step][me], (step as u64) << 16)
            .expect("forward");
        std::hint::black_box(y);
        out.step_ms.push(s0.elapsed().as_secs_f64() * 1e3);

        if !dynamic || (step + 1) % QUANTUM != 0 || step + 1 >= steps {
            continue;
        }
        let base = (1u64 << 48) + ((step as u64) << 16);

        // Sender-side stall probes: ChaosTransport sleeps the sender on a
        // shaped link, so the best of three timed control sends reads the
        // link's latency and a healthy in-process link reads ~0.
        let probe = Bytes::from(vec![0u8; 64]);
        let mut stall_p99_us = vec![0u64; p];
        for r in (0..p).filter(|&r| r != me) {
            let mut best = u64::MAX;
            for _ in 0..PROBES {
                let t = Instant::now();
                h.send_control(r, base + 1, probe.clone()).expect("probe");
                best = best.min(t.elapsed().as_micros() as u64);
            }
            stall_p99_us[r] = best;
        }
        if std::env::var_os("PLACEMENT_DEBUG").is_some() {
            eprintln!("step {step} rank {me} stalls {stall_p99_us:?}");
        }
        for r in (0..p).filter(|&r| r != me) {
            for _ in 0..PROBES {
                h.recv(r, base + 1).expect("probe drain");
            }
        }

        let (mut loads, shed, routed, service_p99_us) = drain(&mut layer, &mut out);
        loads.resize(WORLD, 0);
        let my = LoadReport {
            rank: me,
            loads,
            shed,
            routed,
            service_p99_us,
            stall_p99_us,
        };

        // Report allgather: every rank sees the identical set, so the
        // pure policy computes the identical plan everywhere.
        let frame = Bytes::from(my.encode());
        for r in (0..p).filter(|&r| r != me) {
            h.send(r, base + 2 + me as u64, frame.clone())
                .expect("report");
        }
        let mut reports: Vec<Option<LoadReport>> = vec![None; p];
        reports[me] = Some(my);
        for r in (0..p).filter(|&r| r != me) {
            let raw = h.recv(r, base + 2 + r as u64).expect("report recv");
            reports[r] = Some(LoadReport::decode(&raw).expect("report frame"));
        }

        let plan = decide_plan(WORLD, 1, &live, &reports, CAP, &policy, out.version + 1);
        let next = plan.placement;
        let moved = layer.placement().map_or(!next.is_static(), |cur| {
            (0..WORLD).any(|e| cur.servers(e) != next.servers(e))
        });
        if moved {
            for e in 0..WORLD {
                if e != me
                    && next.servers(e).contains(&me)
                    && !layer.guest_expert_ids().contains(&e)
                {
                    // Forward-only weights never move, so a freshly seeded
                    // body is exactly the state transfer the trainer streams.
                    layer.install_guest_expert(
                        me,
                        e,
                        Box::new(FfExpert::new(M, H, &mut seeded(2000 + e as u64))),
                    );
                }
            }
            out.plans += 1;
            out.replications += (0..WORLD)
                .map(|e| next.servers(e).len().saturating_sub(1) as u64)
                .sum::<u64>();
            out.demotions += (0..p).filter(|&r| next.served_by(r).is_empty()).count() as u64;
            layer.set_placement(me, next);
        }
        out.version += 1;
        layer.set_capacity_factor(plan.capacity_override.unwrap_or(CAP));
    }
    h.barrier();
    out.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    drain(&mut layer, &mut out);
    out
}

fn run_world(batches: &Batches, steps: usize, dynamic: bool, gray: bool) -> Vec<RankOutcome> {
    let topo = Topology::new(1, WORLD);
    let b = Arc::clone(batches);
    Fabric::run_with_chaos_on(
        TransportKind::Channel,
        topo,
        wire_plan(gray),
        None,
        move |mut h| run_rank(&mut h, &b, steps, dynamic),
    )
}

fn tokens_per_sec(outs: &[RankOutcome], steps: usize) -> f64 {
    let wall_s = outs.iter().map(|o| o.wall_ms).fold(0.0f64, f64::max) / 1e3;
    (steps * WORLD * N_LOCAL) as f64 / wall_s
}

/// Mean per-step wall-clock over the post-warmup half of the run, worst
/// rank — the steady-state figure the gray gate compares.
fn steady_ms(outs: &[RankOutcome]) -> f64 {
    outs.iter()
        .map(|o| {
            let tail = &o.step_ms[o.step_ms.len() / 2..];
            tail.iter().sum::<f64>() / tail.len() as f64
        })
        .fold(0.0f64, f64::max)
}

fn shed_fraction(outs: &[RankOutcome]) -> f64 {
    let shed: u64 = outs.iter().map(|o| o.shed).sum();
    let routed: u64 = outs.iter().map(|o| o.routed).sum();
    shed as f64 / (shed + routed).max(1) as f64
}

fn main() {
    println!(
        "placement: {WORLD} ranks, {STEPS} steps, quantum {QUANTUM}, \
         Zipf shares {ZIPF:?} shifting at step {SHIFT}\n"
    );

    // Scenario 1: skew throughput, dynamic vs static, three seeds.
    let mut seed_rows = Vec::new();
    let mut batches_by_seed = Vec::new();
    for seed in 1..=3u64 {
        let batches = build_batches(seed);
        let stat = run_world(&batches, STEPS, false, false);
        let dyn_ = run_world(&batches, STEPS, true, false);
        let st = tokens_per_sec(&stat, STEPS);
        let dy = tokens_per_sec(&dyn_, STEPS);
        let speedup = dy / st;
        let frac = shed_fraction(&dyn_);
        let plans = dyn_[0].plans;
        let repl = dyn_[0].replications;
        assert!(
            dyn_.iter().all(|o| o.plans == plans),
            "ranks disagree on the committed plan count"
        );
        assert!(plans >= 2, "the hot-set shift must force a re-plan");
        assert!(repl >= 1, "the hot expert never gained a replica");
        let total_shed: u64 = dyn_.iter().map(|o| o.shed).sum();
        assert!(total_shed > 0, "the overload burst never shed a token");
        println!(
            "seed {seed}: static {st:.0} tok/s, dynamic {dy:.0} tok/s \
             ({speedup:.2}x), {plans} plans, {repl} replications, \
             shed {:.3}%",
            frac * 100.0
        );
        seed_rows.push((seed, st, dy, speedup, plans, repl, frac));
        batches_by_seed.push(batches);
    }

    // Scenario 2: one gray rank. The healthy baseline is the dynamic run
    // on the same truncated workload; the shaped run must demote rank 3
    // and settle within the gate's ratio of that baseline.
    let gray_batches = &batches_by_seed[0];
    let healthy = run_world(gray_batches, GRAY_STEPS, true, false);
    let gray = run_world(gray_batches, GRAY_STEPS, true, true);
    let healthy_ms = steady_ms(&healthy);
    let gray_ms = steady_ms(&gray);
    let ratio = gray_ms / healthy_ms;
    let demotions = gray[0].demotions;
    assert!(demotions >= 1, "the shaped rank was never demoted");
    println!(
        "gray: healthy steady {healthy_ms:.2} ms vs shaped {gray_ms:.2} ms \
         ({ratio:.2}x), {demotions} demotion(s)"
    );

    // Scenario 3: seeded replay determinism, traced. The replay runs with
    // the span recorder on and must reproduce the first dynamic run's
    // loads, shed count, and plan sequence bit for bit; the obs routing
    // board must agree with the layer's own shed accounting.
    obs::reset_counters();
    let _ = obs::take();
    obs::enable();
    let replay = run_world(&batches_by_seed[0], STEPS, true, false);
    let trace = obs::take();
    obs::disable();
    let first = run_world(&batches_by_seed[0], STEPS, true, false);
    let mut deterministic = true;
    for (a, b) in replay.iter().zip(&first) {
        deterministic &= a.loads == b.loads
            && a.shed == b.shed
            && a.routed == b.routed
            && a.plans == b.plans
            && a.version == b.version;
    }
    assert!(deterministic, "the seeded replay diverged");
    let obs_shed: u64 = obs::routing_snapshots().iter().map(|s| s.shed).sum();
    let replay_shed: u64 = replay.iter().map(|o| o.shed).sum();
    let obs_shed_matches = obs_shed == replay_shed;
    assert!(
        obs_shed_matches,
        "obs counted {obs_shed} shed tokens, the layers counted {replay_shed}"
    );
    let json = trace.to_chrome_trace();
    obs::json::parse(&json).expect("chrome trace must be well-formed JSON");
    std::fs::write("trace_placement.json", &json).expect("write trace_placement.json");
    println!(
        "replay: deterministic, shed {replay_shed} tokens (obs agrees), \
         {} trace spans",
        trace.spans.len()
    );

    let min_speedup = seed_rows.iter().map(|r| r.3).fold(f64::INFINITY, f64::min);
    println!("\nBENCH_PLACEMENT_MIN_SPEEDUP={min_speedup:.4}");
    println!("BENCH_PLACEMENT_GRAY_RATIO={ratio:.4}");
    println!(
        "BENCH_PLACEMENT_SHED_FRACTION={:.6}",
        shed_fraction(&replay)
    );

    let seeds_json: Vec<String> = seed_rows
        .iter()
        .map(|(seed, st, dy, sp, plans, repl, frac)| {
            format!(
                "{{\"seed\":{seed},\"static_tok_s\":{st:.1},\
                 \"dynamic_tok_s\":{dy:.1},\"speedup\":{sp:.4},\
                 \"plans\":{plans},\"replications\":{repl},\
                 \"shed_fraction\":{frac:.6}}}"
            )
        })
        .collect();
    let report = format!(
        "{{\"bench\":\"placement\",\"ranks\":{WORLD},\"steps\":{STEPS},\
         \"quantum\":{QUANTUM},\"shift\":{SHIFT},\
         \"seeds\":[{}],\
         \"gray\":{{\"wire_latency_us\":{WIRE_LATENCY_US},\
         \"gray_latency_us\":{GRAY_LATENCY_US},\"healthy_steady_ms\":{healthy_ms:.3},\
         \"gray_steady_ms\":{gray_ms:.3},\"ratio\":{ratio:.4},\
         \"demotions\":{demotions}}},\
         \"determinism\":{{\"ok\":{deterministic},\
         \"shed\":{replay_shed},\"obs_shed_matches\":{obs_shed_matches}}}}}\n",
        seeds_json.join(",")
    );
    let path = "BENCH_placement.json";
    std::fs::write(path, &report).expect("write BENCH_placement.json");
    println!("BENCH_JSON={path}");
}
