//! Prints the simulator-vs-paper calibration anchors in one place.
//!
//! Run after touching `HardwareProfile::paper_testbed` constants; every
//! row shows the model prediction next to the paper's measurement and the
//! relative error. The same anchors are asserted (with tolerance bands) by
//! the crate test suites.

use schemoe::prelude::*;
use schemoe_collectives::a2a_time;

fn row(what: &str, model: f64, paper: f64, unit: &str) {
    let err = 100.0 * (model - paper) / paper;
    println!("{what:<52} {model:>9.1}{unit} {paper:>9.1}{unit} {err:>+7.1}%");
}

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    println!(
        "{:<52} {:>11} {:>11} {:>8}",
        "anchor", "model", "paper", "error"
    );

    // Table 1.
    for (layers, a2a_ms, step_ms) in [
        (12, 252.6, 497.1),
        (16, 324.8, 623.0),
        (20, 419.3, 768.9),
        (24, 507.4, 863.6),
    ] {
        let model = MoeModelConfig::ct_moe(layers);
        let est = model_step_time(&TutelEmu::new(), &model, &topo, &hw).expect("fits");
        row(
            &format!("Table 1 CT-MoE-{layers} A2A time"),
            est.a2a.as_ms(),
            a2a_ms,
            "ms",
        );
        row(
            &format!("Table 1 CT-MoE-{layers} step time"),
            est.step.as_ms(),
            step_ms,
            "ms",
        );
    }

    // Table 7 speedups.
    for (layers, paper_sp) in [(12, 497.0 / 454.0), (24, 864.0 / 774.0)] {
        let model = MoeModelConfig::ct_moe(layers);
        let t = model_step_time(&TutelEmu::new(), &model, &topo, &hw)
            .expect("fits")
            .step;
        let s = model_step_time(&ScheMoeSystem::without_compression(), &model, &topo, &hw)
            .expect("fits")
            .step;
        row(
            &format!("Table 7 CT-MoE-{layers} ScheMoE/Tutel speedup"),
            t / s,
            paper_sp,
            "x",
        );
    }

    // Table 8.
    let bert = MoeModelConfig::bert_large_moe();
    let t = model_step_time(&TutelEmu::new(), &bert, &topo, &hw)
        .expect("fits")
        .step;
    let s = model_step_time(&ScheMoeSystem::default_config(), &bert, &topo, &hw)
        .expect("fits")
        .step;
    row("Table 8 BERT-Large-MoE Tutel step", t.as_ms(), 783.3, "ms");
    row("Table 8 BERT-Large-MoE speedup", t / s, 1.16, "x");

    // Fig. 9 anchors at 2 GB.
    let s2g = 2_000_000_000u64;
    let nccl = a2a_time(&NcclA2A, &topo, &hw, s2g).expect("valid").as_ms();
    let pipe = a2a_time(&PipeA2A::new(), &topo, &hw, s2g)
        .expect("valid")
        .as_ms();
    let two = a2a_time(&TwoDimHierA2A, &topo, &hw, s2g)
        .expect("valid")
        .as_ms();
    row("Fig. 9c Pipe vs NCCL at 2 GB", nccl / pipe, 1.4, "x");
    row("Fig. 9c Pipe vs 2DH at 2 GB", two / pipe, 2.0, "x");
    let s1m = 1_000_000u64;
    let nccl = a2a_time(&NcclA2A, &topo, &hw, s1m).expect("valid").as_ms();
    let pipe = a2a_time(&PipeA2A::new(), &topo, &hw, s1m)
        .expect("valid")
        .as_ms();
    row("Fig. 9a Pipe vs NCCL at 1 MB", nccl / pipe, 1.04, "x");

    // Table 10 Naive absolute scale.
    let shape = LayerShape {
        tokens_per_gpu: 8 * 2048,
        model_dim: 8192,
        hidden_dim: 8192,
        experts: 32,
        k: 2,
        capacity_factor: 1.2,
    };
    let naive = NaiveSystem::new().layer_time(&shape, &topo, &hw);
    let full = ScheMoeSystem::default_config().layer_time(&shape, &topo, &hw);
    row("Table 10 Naive layer time", naive.as_ms(), 2401.0, "ms");
    row("Table 10 full-system speedup", naive / full, 2.4, "x");
}
