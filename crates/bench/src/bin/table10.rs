//! Regenerates **Table 10**: the component ablation on one big MoE layer.
//!
//! Layer: B=8, f=1.2, L=2048, H=8192, M=8192, k=2, E=32 (→ 1.29 GB A2A
//! payload per GPU). Paper values:
//!
//! | variant | time (ms) | speedup |
//! |---|---|---|
//! | Naive | 2401±22 | 1.0× |
//! | ScheMoE-Z (+ZFP) | 1264±5 | 1.9× |
//! | ScheMoE-ZP (+Pipe-A2A) | 1110±5 | 2.2× |
//! | ScheMoE (+scheduling) | 1019±2 | 2.4× |

use schemoe::prelude::*;
use schemoe_bench::{jittered, mean_std};
use schemoe_scheduler::schedules::naive_makespan;

/// The four ablation arms, computed from the same cost model.
fn arm_time(hw: &HardwareProfile, topo: &Topology, zfp: bool, pipe: bool, sched: bool) -> f64 {
    let shape = LayerShape {
        tokens_per_gpu: 8 * 2048,
        model_dim: 8192,
        hidden_dim: 8192,
        experts: 32,
        k: 2,
        capacity_factor: 1.2,
    };
    let ratio = if zfp { 4.0 } else { 1.0 };
    let costs = shape.costs(ratio);
    let a2a: Box<dyn AllToAll> = if pipe {
        Box::new(PipeA2A::new())
    } else {
        Box::new(NcclA2A)
    };
    if sched {
        // OptSche over the adaptive degree set.
        let mut best = f64::MAX;
        for r in [2usize, 4, 8] {
            let tasks = costs.task_set(topo, hw, a2a.as_ref(), r);
            let m = optsche(r).makespan(&tasks).expect("valid").as_ms();
            best = best.min(m);
        }
        best
    } else {
        naive_makespan(&costs.task_set(topo, hw, a2a.as_ref(), 1)).as_ms()
    }
}

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let arms = [
        ("Naive", false, false, false, 2401.0, 1.0),
        ("ScheMoE-Z", true, false, false, 1264.0, 1.9),
        ("ScheMoE-ZP", true, true, false, 1110.0, 2.2),
        ("ScheMoE", true, true, true, 1019.0, 2.4),
    ];
    println!("Table 10: MoE-layer ablation (B=8, f=1.2, L=2048, H=M=8192)");
    println!(
        "{:>12} {:>8} {:>12} {:>9} {:>14} {:>8} {:>8}",
        "Name", "ZFP/Pipe/Sch", "Time (ms)", "Speedup", "paper (ms)", "paperSp", ""
    );
    let mut naive_mean = 0.0;
    for (name, zfp, pipe, sched, paper_ms, paper_sp) in arms {
        let samples: Vec<f64> = (0..3)
            .map(|run| arm_time(&jittered(&hw, 0.01, 4321 + run), &topo, zfp, pipe, sched))
            .collect();
        let (mean, std) = mean_std(&samples);
        if name == "Naive" {
            naive_mean = mean;
        }
        let flag = |b: bool| if b { "Y" } else { "n" };
        println!(
            "{:>12} {:>8} {:>12} {:>8.1}x {:>14} {:>7.1}x",
            name,
            format!("{}/{}/{}", flag(zfp), flag(pipe), flag(sched)),
            format!("{mean:.0}±{std:.0}"),
            naive_mean / mean,
            format!("{paper_ms:.0}"),
            paper_sp,
        );
    }
    println!();
    println!("Shape check: compression is the largest single win; Pipe-A2A and the");
    println!("OptSche schedule each add a further incremental improvement.");
}
