//! Regenerates **Table 1**: step time and A2A time of CT-MoE-x on Tutel.
//!
//! Paper values (32× RTX 2080 Ti, 100 Gb/s IB):
//!
//! | layers | A2A (ms) | step (ms) | ratio |
//! |---|---|---|---|
//! | 12 | 252.6 | 497.1 | 50.8% |
//! | 16 | 324.8 | 623.0 | 52.1% |
//! | 20 | 419.3 | 768.9 | 54.5% |
//! | 24 | 507.4 | 863.6 | 58.8% |

use schemoe::prelude::*;

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let tutel = TutelEmu::new();

    println!("Table 1: step time and A2A time, CT-MoE-x on Tutel (simulated)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9} || {:>9} {:>9} {:>7}",
        "# Layers",
        "# Params(M)",
        "A2A (ms)",
        "Step (ms)",
        "Ratio",
        "paperA2A",
        "paperStep",
        "paperR"
    );
    let paper = [
        (12, 252.6, 497.1, 50.8),
        (16, 324.8, 623.0, 52.1),
        (20, 419.3, 768.9, 54.5),
        (24, 507.4, 863.6, 58.8),
    ];
    for (layers, p_a2a, p_step, p_ratio) in paper {
        let model = MoeModelConfig::ct_moe(layers);
        let est = model_step_time(&tutel, &model, &topo, &hw).expect("CT-MoE fits the testbed");
        println!(
            "{:>8} {:>12.0} {:>12.1} {:>12.1} {:>8.1}% || {:>9.1} {:>9.1} {:>6.1}%",
            layers,
            model.total_params() as f64 / 1e6,
            est.a2a.as_ms(),
            est.step.as_ms(),
            est.a2a_ratio() * 100.0,
            p_a2a,
            p_step,
            p_ratio,
        );
    }
    println!();
    println!(
        "Shape check: A2A occupies 50-60% of the step and grows with layer count,\n\
         matching the paper's motivation measurement."
    );
}
