//! Records one functional training step and exports its measured timeline.
//!
//! Runs a full expert-parallel step — pipelined forward, backward, Adam —
//! on a 1×4 fabric with the span recorder on, then:
//!
//! * writes `step_trace.json`, a Trace Event Format document of everything
//!   the step did (gate, per-chunk encode/A2A/expert/decode tasks on both
//!   executor workers, fabric sends, the optimizer). Load it at
//!   <https://ui.perfetto.dev> and it overlays cleanly with the
//!   simulator's `to_chrome_trace` output, which shares the same writer;
//! * feeds the same spans to the scheduler's [`Profiler`] via
//!   `ingest_trace`, closing the paper's profiling loop from *measured*
//!   stage times instead of simulated ones.
//!
//! Exits non-zero if the trace is missing an expected span category or is
//! not well-formed JSON, so CI can run it as a smoke test.

use std::time::Duration;

use schemoe_cluster::{Fabric, Topology, WireModel};
use schemoe_collectives::NcclA2A;
use schemoe_compression::NoCompression;
use schemoe_moe::{DistributedMoeLayer, Expert, FfExpert, TopKGate};
use schemoe_obs as obs;
use schemoe_scheduler::{Profiler, TaskKind};
use schemoe_tensor::optim::Adam;
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

const M: usize = 64;
const H: usize = 256;
const N_LOCAL: usize = 128;
const K: usize = 2;
const CAPACITY: f64 = 1.5;
const DEGREE: usize = 4;

fn main() {
    let topo = Topology::new(1, 4);
    let p = topo.world_size();
    let wire = WireModel {
        latency: Duration::from_micros(100),
        bytes_per_sec: 50e6,
    };
    let x_global = rng::uniform(&[N_LOCAL * p, M], 1.0, &mut seeded(7));

    obs::reset_counters();
    let _ = obs::take();
    obs::enable();
    Fabric::run_with_wire(topo, wire, |mut h| {
        let me = h.rank();
        let gate = TopKGate::new(M, p, K, CAPACITY, &mut seeded(555));
        let experts: Vec<Box<dyn Expert>> =
            vec![Box::new(FfExpert::new(M, H, &mut seeded(1000 + me as u64)))];
        let mut layer =
            DistributedMoeLayer::new(gate, experts, Box::new(NoCompression), Box::new(NcclA2A))
                .with_partition_degree(DEGREE)
                .with_recv_timeout(Duration::from_secs(60));
        let mut x = Tensor::zeros(&[N_LOCAL, M]);
        for r in 0..N_LOCAL {
            x.row_mut(r).copy_from_slice(x_global.row(me * N_LOCAL + r));
        }
        h.barrier();
        let step = obs::span("step", "step0");
        let y = layer.forward(&mut h, &x, 0).unwrap();
        let dx = layer.backward(&mut h, &y).unwrap();
        std::hint::black_box(dx);
        {
            let _s = obs::span("optimizer", "adam");
            let mut opt = Adam::new(1e-3).with_grad_clip(1.0);
            opt.step_params(&mut |f| layer.visit_params(f));
        }
        drop(step);
        h.barrier();
    });
    let trace = obs::take();
    obs::disable();

    // The measured spans double as profiler samples: stage names map to
    // task kinds, so the scheduler can plan from real timings.
    let mut profiler = Profiler::new();
    let ingested = profiler.ingest_trace(&trace);
    assert!(ingested > 0, "no stage spans reached the profiler");
    let a1_pred = profiler
        .predict(TaskKind::AllToAll1, 64e3)
        .expect("A1 spans sampled");
    let e_pred = profiler
        .predict(TaskKind::Expert, 256.0)
        .expect("E spans sampled");

    let cats = trace.cats();
    for needed in [
        "a2a",
        "encode",
        "decode",
        "expert",
        "gate",
        "optimizer",
        "step",
    ] {
        assert!(
            cats.contains(&needed),
            "missing span category {needed:?} in {cats:?}"
        );
    }

    let json = trace.to_chrome_trace();
    obs::json::parse(&json).expect("chrome trace must be well-formed JSON");
    std::fs::write("step_trace.json", &json).expect("write step_trace.json");

    println!(
        "step_trace: {p} ranks, degree {DEGREE}, {} spans across {} categories",
        trace.spans.len(),
        cats.len()
    );
    for cat in &cats {
        println!(
            "  {cat:>10}: {:>4} spans, {:>8.2} ms total",
            trace.count_by_cat(cat),
            trace.total_ms_by_cat(cat)
        );
    }
    for c in &trace.counters {
        println!(
            "  rank{}: sent {} B in {} msgs, waited {:.2} ms in recv",
            c.rank,
            c.bytes_sent,
            c.msgs_sent,
            c.recv_wait_ns as f64 / 1e6
        );
    }
    println!(
        "profiler ingested {ingested} stage samples; predicts A1(64 kB) = {:.3} ms, E(256 rows) = {:.3} ms",
        a1_pred.as_secs() * 1e3,
        e_pred.as_secs() * 1e3
    );
    println!("STEP_TRACE_JSON=step_trace.json");
    println!("STEP_TRACE_CATS={}", cats.len());
}
