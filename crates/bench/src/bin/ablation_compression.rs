//! Ablation: when does A2A compression pay for its compute?
//!
//! §7 "Performance of data compression": the reduced communication must
//! cover the compression kernels' cost, which fails on fast interconnects.
//! This sweep runs the full scheduled layer with and without ZFP across
//! hardware profiles and payload sizes, locating the break-even frontier.

use schemoe::prelude::*;

fn layer_ms(shape: &LayerShape, topo: &Topology, hw: &HardwareProfile, ratio: f64) -> f64 {
    let costs = shape.costs(ratio);
    let mut best = f64::INFINITY;
    for r in [1usize, 2, 4, 8] {
        let tasks = costs.task_set(topo, hw, &PipeA2A::new(), r);
        best = best.min(optsche(r).makespan(&tasks).expect("valid").as_ms());
    }
    best
}

fn main() {
    let topo = Topology::paper_testbed();
    let profiles = [
        HardwareProfile::paper_testbed(),
        HardwareProfile::nvlink_dgx(),
        HardwareProfile::ethernet_cluster(),
    ];

    println!("ZFP(4x) gain over uncompressed, full scheduled layer (OptSche + Pipe-A2A)\n");
    print!("{:>22}", "tokens/GPU (M=H=4096)");
    for hw in &profiles {
        print!(" {:>24}", hw.name);
    }
    println!();
    for tokens in [512usize, 2048, 8192, 32768] {
        let shape = LayerShape {
            tokens_per_gpu: tokens,
            model_dim: 4096,
            hidden_dim: 4096,
            experts: 32,
            k: 2,
            capacity_factor: 1.2,
        };
        print!("{tokens:>22}");
        for hw in &profiles {
            let plain = layer_ms(&shape, &topo, hw, 1.0);
            let zfp = layer_ms(&shape, &topo, hw, 4.0);
            let gain = (plain / zfp - 1.0) * 100.0;
            print!(
                " {:>24}",
                format!("{plain:.0} -> {zfp:.0} ms ({gain:+.0}%)")
            );
        }
        println!();
    }
    // The §7 failure case: a single NVLink node, where every exchange rides
    // a 200 GB/s fabric and the codec kernels cannot pay for themselves.
    println!();
    println!("Single NVLink node (8 GPUs, all traffic intra-node at 200 GB/s):");
    let one_node = Topology::new(1, 8);
    let hw = HardwareProfile::nvlink_dgx();
    for tokens in [8192usize, 32768] {
        let shape = LayerShape {
            tokens_per_gpu: tokens,
            model_dim: 4096,
            hidden_dim: 4096,
            experts: 32,
            k: 2,
            capacity_factor: 1.2,
        };
        let plain = layer_ms(&shape, &one_node, &hw, 1.0);
        let zfp = layer_ms(&shape, &one_node, &hw, 4.0);
        let gain = (plain / zfp - 1.0) * 100.0;
        println!("  {tokens:>6} tokens/GPU: {plain:.1} -> {zfp:.1} ms ({gain:+.0}%)");
    }
    println!();
    println!(
        "On the PCIe testbed and slow Ethernet, compression wins at every size;\n\
         on the multi-node NVLink profile the (slow) inter-node links still\n\
         dominate so it wins there too. But inside a single NVLink node the\n\
         links outrun the codec and ZFP *costs* time — the paper's §7 warning\n\
         that 'in some hardware environments (e.g., communication is fast on\n\
         NVLink), data compression may sacrifice the time performance'."
    );
}
