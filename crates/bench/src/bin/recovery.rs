//! Elastic-membership recovery benchmark: kill a rank mid-epoch, revive
//! it, and measure how fast the cluster returns to full capacity.
//!
//! Runs the same 8-rank fault-tolerant campaign as the chaos integration
//! test — kill rank 5 after 900 send attempts, reopen its pipe 200
//! attempts later — and reports, per rank, how the membership evolved.
//! Emits machine-readable `BENCH_*` lines and a `BENCH_recovery.json`
//! report (steps the cluster spent below capacity, bytes of state moved
//! by the donor and applied by the rejoiner, epoch transitions) that CI
//! archives next to the overlap report.
//!
//! `CHAOS_SEED` (or the first CLI argument) selects the campaign seed.

use schemoe::prelude::*;
use schemoe_models::{run_ft_rank, FtConfig, FtReport};

const WORLD: usize = 8;
const STEPS: usize = 20;
const KILLED: usize = 5;
const KILL_AFTER_SENDS: u64 = 900;
const REVIVE_DELTA: u64 = 200;

fn seed() -> u64 {
    std::env::args()
        .nth(1)
        .or_else(|| std::env::var("CHAOS_SEED").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn run_world(cfg: FtConfig, spec: Option<FaultSpec>) -> Vec<FtReport> {
    let topo = Topology::new(2, 4);
    match spec {
        Some(spec) => {
            let plan = ScheMoeConfig::serial()
                .with_faults(spec)
                .fault_plan()
                .expect("campaign configured");
            Fabric::run_with_faults(topo, plan, move |mut h| run_ft_rank(&mut h, &cfg))
        }
        None => Fabric::run(topo, move |mut h| run_ft_rank(&mut h, &cfg)),
    }
}

fn mean_loss(reports: &[FtReport]) -> f32 {
    let alive: Vec<&FtReport> = reports
        .iter()
        .filter(|r| r.died_at_step.is_none())
        .collect();
    assert!(!alive.is_empty(), "every rank died");
    alive.iter().map(|r| r.final_loss).sum::<f32>() / alive.len() as f32
}

fn main() {
    let seed = seed();
    let mut cfg = FtConfig::tiny(STEPS).with_seed(40);
    cfg.vote_timeout_ms = 400;

    println!(
        "recovery: {WORLD} ranks, {STEPS} steps, kill rank {KILLED} after \
         {KILL_AFTER_SENDS} sends, revive +{REVIVE_DELTA}, seed {seed}\n"
    );

    let clean = run_world(cfg, None);
    let clean_loss = mean_loss(&clean);
    println!("fault-free mean final loss: {clean_loss:.4}");

    let spec = FaultSpec::seeded(seed)
        .with_kill(KILLED, KILL_AFTER_SENDS)
        .with_revive(KILLED, KILL_AFTER_SENDS + REVIVE_DELTA)
        .with_recv_deadline_ms(800);
    let revived = run_world(cfg, Some(spec));

    println!(
        "\n{:>4} {:>6} {:>10} {:>6} {:>8} {:>10} {:>18}",
        "rank", "died", "dead_ranks", "epoch", "rejoins", "xfer_bytes", "epoch_transitions"
    );
    for (r, rep) in revived.iter().enumerate() {
        println!(
            "{r:>4} {:>6} {:>10} {:>6} {:>8} {:>10} {:>18}",
            rep.died_at_step.map_or("-".into(), |s| s.to_string()),
            format!("{:?}", rep.dead_ranks),
            rep.final_epoch,
            rep.rejoins,
            rep.transfer_bytes,
            format!("{:?}", rep.epoch_transitions),
        );
    }

    // How long the cluster ran below capacity: the rejoiner's loss curve
    // holds NaN exactly for the steps it missed while dead.
    let rejoiner = &revived[KILLED];
    let degraded_steps = rejoiner
        .loss_curve
        .iter()
        .filter(|l| !l.is_finite())
        .count();
    let rejoiner_bytes = rejoiner.transfer_bytes;
    let donor_bytes: u64 = revived
        .iter()
        .enumerate()
        .filter(|(r, _)| *r != KILLED)
        .map(|(_, rep)| rep.transfer_bytes)
        .sum();
    let all_alive = revived.iter().all(|r| r.died_at_step.is_none());
    let converged = revived
        .iter()
        .all(|r| r.final_epoch == revived[0].final_epoch && r.dead_ranks.is_empty());
    let revive_loss = mean_loss(&revived);
    let loss_gap = (revive_loss - clean_loss).abs() / clean_loss;

    println!("\nsteps below full capacity: {degraded_steps}/{STEPS}");
    println!("state transferred: donor {donor_bytes} B, rejoiner applied {rejoiner_bytes} B");
    println!(
        "revive mean final loss: {revive_loss:.4} ({:.2}% from fault-free)",
        loss_gap * 100.0
    );
    println!("BENCH_RECOVERY_DEGRADED_STEPS={degraded_steps}");
    println!("BENCH_RECOVERY_TRANSFER_BYTES={donor_bytes}");
    println!("BENCH_RECOVERY_LOSS_GAP={loss_gap:.4}");

    assert!(all_alive, "every rank must end the run alive");
    assert!(converged, "membership must converge to full capacity");
    assert_eq!(rejoiner.rejoins, 1, "the victim must rejoin exactly once");

    let report = format!(
        "{{\"bench\":\"recovery\",\"seed\":{seed},\"ranks\":{WORLD},\"steps\":{STEPS},\
         \"killed_rank\":{KILLED},\"kill_after_sends\":{KILL_AFTER_SENDS},\
         \"revive_delta\":{REVIVE_DELTA},\
         \"steps_below_capacity\":{degraded_steps},\
         \"transfer_bytes\":{{\"donor\":{donor_bytes},\"rejoiner\":{rejoiner_bytes}}},\
         \"final_epoch\":{},\"rejoins\":{},\
         \"clean_loss\":{clean_loss:.6},\"revive_loss\":{revive_loss:.6},\
         \"loss_gap\":{loss_gap:.6}}}\n",
        revived[0].final_epoch, rejoiner.rejoins,
    );
    let path = "BENCH_recovery.json";
    std::fs::write(path, &report).expect("write BENCH_recovery.json");
    println!("BENCH_JSON={path}");
}
