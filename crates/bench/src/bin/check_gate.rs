//! CI performance gates over the benchmark JSON reports.
//!
//! Two modes, selected by the first argument:
//!
//! * default — reads the report `overlap_forward` writes and fails
//!   (non-zero exit) unless the pipelined forward at the gated degree
//!   beats the serial path by the required factor:
//!
//!   ```bash
//!   cargo run --release -p schemoe-bench --bin check_gate -- \
//!       [path] [degree] [min-speedup]
//!   ```
//!
//!   Defaults: `BENCH_overlap.json`, degree 4, 1.2x.
//!
//! * `--fullstep` — reads the report `fullstep` writes and enforces the
//!   whole-step contract: the best degree beats serial by the best-floor,
//!   *every* candidate degree holds at least the per-degree floor (the
//!   r=8 regression gate — overlap must never lose to serial), and the
//!   online chooser picked the measured oracle degree:
//!
//!   ```bash
//!   cargo run --release -p schemoe-bench --bin check_gate -- \
//!       --fullstep [path] [best-floor] [per-degree-floor]
//!   ```
//!
//!   Defaults: `BENCH_fullstep.json`, 1.6x, 1.0x.
//!
//! * `--partition` — reads the report the `partition` campaign writes
//!   and enforces the quorum contract per scenario: enough ranks parked,
//!   the rejoin count lands in its bracket, final epochs agree, nobody
//!   ends dead or buried, the seeded replay matched, and the loss gap
//!   against fault-free stays under the ceiling:
//!
//!   ```bash
//!   cargo run --release -p schemoe-bench --bin check_gate -- \
//!       --partition [path] [max-loss-gap]
//!   ```
//!
//!   Defaults: `BENCH_partition.json`, 0.05.
//!
//! * `--durability` — reads the report the `durability` campaign writes
//!   and enforces the crash-recovery contract: the asynchronous snapshot
//!   lane costs under the overhead ceiling, every resume (fault-free,
//!   both ChaosFs seeds including the crash-before-rename window, and
//!   the corrupted-shard buddy rebuild) lands within the loss-gap
//!   ceiling, at least one buddy reconstruction happened, and retention
//!   actually collected an old generation:
//!
//!   ```bash
//!   cargo run --release -p schemoe-bench --bin check_gate -- \
//!       --durability [path] [max-overhead] [max-loss-gap]
//!   ```
//!
//!   Defaults: `BENCH_durability.json`, 0.10, 0.05.
//!
//! * `--placement` — reads the report the `placement` campaign writes
//!   and enforces graceful degradation under skew: every seed's dynamic
//!   run beats the static layout by the speedup floor with at least two
//!   committed plans and one replication, the gray-rank run is demoted
//!   and stays within the step-time ratio of the healthy baseline, and
//!   token shedding is non-zero, under the fraction ceiling, counted by
//!   obs, and bit-identical on the seeded replay:
//!
//!   ```bash
//!   cargo run --release -p schemoe-bench --bin check_gate -- \
//!       --placement [path] [min-speedup] [max-gray-ratio] [max-shed-fraction]
//!   ```
//!
//!   Defaults: `BENCH_placement.json`, 1.15, 1.5, 0.01.
//!
//! Every mode parses with the workspace's own strict JSON reader, so a
//! malformed report also fails the gate instead of sneaking past it.

use schemoe_obs::json::{self, Json};

fn load(path: &str, producer: &str) -> Json {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run {producer} first)"));
    json::parse(&raw).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"))
}

fn forward_gate(mut args: impl Iterator<Item = String>) {
    let path = args.next().unwrap_or_else(|| "BENCH_overlap.json".into());
    let degree: f64 = args.next().map_or(4.0, |a| a.parse().expect("degree"));
    let floor: f64 = args.next().map_or(1.2, |a| a.parse().expect("min speedup"));

    let doc = load(&path, "overlap_forward");
    let degrees = doc
        .get("degrees")
        .and_then(Json::as_array)
        .expect("report has a degrees array");
    let entry = degrees
        .iter()
        .find(|d| d.get("r").and_then(Json::as_f64) == Some(degree))
        .unwrap_or_else(|| panic!("no degree {degree} entry in {path}"));
    let speedup = entry
        .get("speedup")
        .and_then(Json::as_f64)
        .expect("degree entry has a speedup");
    let ms = entry.get("ms").and_then(Json::as_f64).unwrap_or(f64::NAN);
    let serial_ms = doc
        .get("serial_ms")
        .and_then(Json::as_f64)
        .unwrap_or(f64::NAN);

    println!(
        "bench gate: degree {degree} forward {ms:.1} ms vs serial {serial_ms:.1} ms \
         -> {speedup:.3}x (floor {floor:.2}x)"
    );
    if speedup < floor {
        eprintln!("FAIL: speedup {speedup:.3}x is below the {floor:.2}x floor");
        std::process::exit(1);
    }
    println!("PASS");
}

fn fullstep_gate(mut args: impl Iterator<Item = String>) {
    let path = args.next().unwrap_or_else(|| "BENCH_fullstep.json".into());
    let best_floor: f64 = args.next().map_or(1.6, |a| a.parse().expect("best floor"));
    let each_floor: f64 = args
        .next()
        .map_or(1.0, |a| a.parse().expect("per-degree floor"));

    let doc = load(&path, "fullstep");
    let degrees = doc
        .get("degrees")
        .and_then(Json::as_array)
        .expect("report has a degrees array");
    let mut failed = false;
    let mut best = f64::NEG_INFINITY;
    for entry in degrees {
        let r = entry.get("r").and_then(Json::as_f64).expect("degree has r");
        if r <= 1.0 {
            continue;
        }
        let speedup = entry
            .get("speedup")
            .and_then(Json::as_f64)
            .expect("degree entry has a speedup");
        let ok = speedup >= each_floor;
        println!(
            "fullstep gate: r={r} -> {speedup:.3}x (per-degree floor {each_floor:.2}x) {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            eprintln!(
                "FAIL: degree {r} loses to the serial step ({speedup:.3}x < {each_floor:.2}x)"
            );
            failed = true;
        }
        best = best.max(speedup);
    }
    assert!(best.is_finite(), "report has no overlapped degrees");
    println!("fullstep gate: best {best:.3}x (best floor {best_floor:.2}x)");
    if best < best_floor {
        eprintln!("FAIL: best speedup {best:.3}x is below the {best_floor:.2}x floor");
        failed = true;
    }

    let chosen = doc
        .get("chosen_r")
        .and_then(Json::as_f64)
        .expect("report has chosen_r");
    let oracle = doc
        .get("oracle_r")
        .and_then(Json::as_f64)
        .expect("report has oracle_r");
    println!("fullstep gate: online chooser r={chosen} vs measured oracle r={oracle}");
    if chosen != oracle {
        eprintln!("FAIL: online chooser picked r={chosen}, oracle is r={oracle}");
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}

fn partition_gate(mut args: impl Iterator<Item = String>) {
    let path = args.next().unwrap_or_else(|| "BENCH_partition.json".into());
    let max_gap: f64 = args
        .next()
        .map_or(0.05, |a| a.parse().expect("max loss gap"));

    let doc = load(&path, "partition");
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_array)
        .expect("report has a scenarios array");
    assert!(!scenarios.is_empty(), "report has no scenarios");
    let mut failed = false;
    for s in scenarios {
        let name = s.get("name").and_then(Json::as_str).expect("scenario name");
        let num = |key: &str| -> f64 {
            s.get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("scenario {name} lacks {key}"))
        };
        let flag = |key: &str| -> bool {
            match s.get(key) {
                Some(Json::Bool(b)) => *b,
                _ => panic!("scenario {name} lacks boolean {key}"),
            }
        };
        let parked = num("parked_ranks");
        let rejoined = num("rejoined_ranks");
        let loss_gap = num("loss_gap");
        let mut bad = Vec::new();
        if parked < num("min_parked") {
            bad.push(format!("only {parked} ranks parked"));
        }
        if rejoined < num("min_rejoined") || rejoined > num("max_rejoined") {
            bad.push(format!("{rejoined} ranks rejoined"));
        }
        if !flag("epochs_equal") {
            bad.push("final epochs diverged".to_string());
        }
        if !flag("converged") {
            bad.push("a rank ended dead or with peers still buried".to_string());
        }
        if !flag("replay_ok") {
            bad.push("the seeded campaign did not replay".to_string());
        }
        if loss_gap > max_gap {
            bad.push(format!(
                "loss gap {:.2}% exceeds {:.2}%",
                loss_gap * 100.0,
                max_gap * 100.0
            ));
        }
        println!(
            "partition gate: {name} parked={parked} rejoined={rejoined} \
             loss_gap={:.2}% replay={} {}",
            loss_gap * 100.0,
            s.get("replay").and_then(Json::as_str).unwrap_or("?"),
            if bad.is_empty() { "ok" } else { "FAIL" }
        );
        for b in &bad {
            eprintln!("FAIL: {name}: {b}");
        }
        failed |= !bad.is_empty();
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}

fn durability_gate(mut args: impl Iterator<Item = String>) {
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_durability.json".into());
    let max_overhead: f64 = args
        .next()
        .map_or(0.10, |a| a.parse().expect("max overhead"));
    let max_gap: f64 = args
        .next()
        .map_or(0.05, |a| a.parse().expect("max loss gap"));

    let doc = load(&path, "durability");
    let num = |key: &str| -> f64 {
        doc.get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("report lacks {key}"))
    };
    let mut failed = false;

    let overhead = num("overhead");
    println!(
        "durability gate: snapshot overhead {:.2}% (ceiling {:.2}%)",
        overhead * 100.0,
        max_overhead * 100.0
    );
    if overhead >= max_overhead {
        eprintln!(
            "FAIL: the snapshot lane costs {:.2}% per step",
            overhead * 100.0
        );
        failed = true;
    }

    let loss_gap = num("loss_gap");
    println!(
        "durability gate: resume at step {} -> {:.2}% loss gap (ceiling {:.2}%)",
        num("resumed_step"),
        loss_gap * 100.0,
        max_gap * 100.0
    );
    if loss_gap > max_gap {
        eprintln!("FAIL: resume drifted {:.2}%", loss_gap * 100.0);
        failed = true;
    }

    let seeds = doc
        .get("seeds")
        .and_then(Json::as_array)
        .expect("report has a seeds array");
    assert!(seeds.len() >= 2, "need at least two ChaosFs seed verdicts");
    let mut saw_crash_window = false;
    for s in seeds {
        let seed = s.get("seed").and_then(Json::as_f64).expect("seed id");
        let gap = s
            .get("loss_gap")
            .and_then(Json::as_f64)
            .expect("seed loss_gap");
        let window = matches!(s.get("crash_window"), Some(Json::Bool(true)));
        let ok = matches!(s.get("ok"), Some(Json::Bool(true))) && gap <= max_gap;
        saw_crash_window |= window;
        println!(
            "durability gate: chaosfs seed {seed}{} -> {:.2}% gap {}",
            if window { " (crash window)" } else { "" },
            gap * 100.0,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            eprintln!("FAIL: chaosfs seed {seed} did not recover cleanly");
            failed = true;
        }
    }
    if !saw_crash_window {
        eprintln!("FAIL: no seed exercised a crash-before-rename window");
        failed = true;
    }

    let recon = doc
        .get("reconstruction")
        .expect("report has reconstruction");
    let rebuilds = recon
        .get("reconstructions")
        .and_then(Json::as_f64)
        .expect("reconstruction count");
    let recon_gap = recon
        .get("loss_gap")
        .and_then(Json::as_f64)
        .expect("reconstruction loss_gap");
    println!(
        "durability gate: {rebuilds} buddy rebuild(s), {:.2}% gap",
        recon_gap * 100.0
    );
    if rebuilds < 1.0 || recon_gap > max_gap {
        eprintln!("FAIL: the corrupted shard was not rebuilt from its buddy");
        failed = true;
    }

    let gc = num("gc_removed");
    println!("durability gate: {gc} old generation(s) collected");
    if gc < 1.0 {
        eprintln!("FAIL: retention never collected an old generation");
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}

fn placement_gate(mut args: impl Iterator<Item = String>) {
    let path = args.next().unwrap_or_else(|| "BENCH_placement.json".into());
    let min_speedup: f64 = args
        .next()
        .map_or(1.15, |a| a.parse().expect("min speedup"));
    let max_gray_ratio: f64 = args
        .next()
        .map_or(1.5, |a| a.parse().expect("max gray ratio"));
    let max_shed: f64 = args
        .next()
        .map_or(0.01, |a| a.parse().expect("max shed fraction"));

    let doc = load(&path, "placement");
    let mut failed = false;

    let seeds = doc
        .get("seeds")
        .and_then(Json::as_array)
        .expect("report has a seeds array");
    assert!(seeds.len() >= 3, "need the three-seed skew suite");
    for s in seeds {
        let seed = s.get("seed").and_then(Json::as_f64).expect("seed id");
        let speedup = s.get("speedup").and_then(Json::as_f64).expect("speedup");
        let plans = s.get("plans").and_then(Json::as_f64).expect("plans");
        let repl = s
            .get("replications")
            .and_then(Json::as_f64)
            .expect("replications");
        let shed = s
            .get("shed_fraction")
            .and_then(Json::as_f64)
            .expect("shed_fraction");
        let ok = speedup >= min_speedup && plans >= 2.0 && repl >= 1.0 && shed < max_shed;
        println!(
            "placement gate: seed {seed} -> {speedup:.2}x over static, \
             {plans} plans, {repl} replications, shed {:.3}% {}",
            shed * 100.0,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            eprintln!(
                "FAIL: seed {seed} (need >= {min_speedup}x, >= 2 plans, \
                 >= 1 replication, shed < {:.2}%)",
                max_shed * 100.0
            );
            failed = true;
        }
    }

    let gray = doc.get("gray").expect("report has a gray section");
    let ratio = gray.get("ratio").and_then(Json::as_f64).expect("ratio");
    let demotions = gray
        .get("demotions")
        .and_then(Json::as_f64)
        .expect("demotions");
    println!(
        "placement gate: gray rank -> {ratio:.2}x of healthy steady step \
         (ceiling {max_gray_ratio:.2}x), {demotions} demotion(s)"
    );
    if ratio > max_gray_ratio || demotions < 1.0 {
        eprintln!("FAIL: the gray rank was not contained (ratio {ratio:.2}x)");
        failed = true;
    }

    let det = doc.get("determinism").expect("report has determinism");
    let det_ok = matches!(det.get("ok"), Some(Json::Bool(true)));
    let shed = det.get("shed").and_then(Json::as_f64).expect("shed count");
    let obs_ok = matches!(det.get("obs_shed_matches"), Some(Json::Bool(true)));
    println!(
        "placement gate: replay deterministic={det_ok}, \
         {shed} tokens shed, obs agrees={obs_ok}"
    );
    if !det_ok || !obs_ok || shed < 1.0 {
        eprintln!("FAIL: shed accounting must be non-zero, deterministic, and obs-counted");
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("--fullstep") => {
            args.next();
            fullstep_gate(args);
        }
        Some("--partition") => {
            args.next();
            partition_gate(args);
        }
        Some("--durability") => {
            args.next();
            durability_gate(args);
        }
        Some("--placement") => {
            args.next();
            placement_gate(args);
        }
        _ => forward_gate(args),
    }
}
