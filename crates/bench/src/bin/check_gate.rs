//! CI performance gate over `BENCH_overlap.json`.
//!
//! Reads the report `overlap_forward` writes and fails (non-zero exit)
//! unless the pipelined forward at the gated degree beats the serial path
//! by the required factor. Usage:
//!
//! ```bash
//! cargo run --release -p schemoe-bench --bin check_gate -- \
//!     [path] [degree] [min-speedup]
//! ```
//!
//! Defaults: `BENCH_overlap.json`, degree 4, 1.2x. The parse uses the
//! workspace's own strict JSON reader, so a malformed report also fails
//! the gate instead of sneaking past it.

use schemoe_obs::json::{self, Json};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| "BENCH_overlap.json".into());
    let degree: f64 = args.next().map_or(4.0, |a| a.parse().expect("degree"));
    let floor: f64 = args.next().map_or(1.2, |a| a.parse().expect("min speedup"));

    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run overlap_forward first)"));
    let doc = json::parse(&raw).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));

    let degrees = doc
        .get("degrees")
        .and_then(Json::as_array)
        .expect("report has a degrees array");
    let entry = degrees
        .iter()
        .find(|d| d.get("r").and_then(Json::as_f64) == Some(degree))
        .unwrap_or_else(|| panic!("no degree {degree} entry in {path}"));
    let speedup = entry
        .get("speedup")
        .and_then(Json::as_f64)
        .expect("degree entry has a speedup");
    let ms = entry.get("ms").and_then(Json::as_f64).unwrap_or(f64::NAN);
    let serial_ms = doc
        .get("serial_ms")
        .and_then(Json::as_f64)
        .unwrap_or(f64::NAN);

    println!(
        "bench gate: degree {degree} forward {ms:.1} ms vs serial {serial_ms:.1} ms \
         -> {speedup:.3}x (floor {floor:.2}x)"
    );
    if speedup < floor {
        eprintln!("FAIL: speedup {speedup:.3}x is below the {floor:.2}x floor");
        std::process::exit(1);
    }
    println!("PASS");
}
