//! Durable crash-recovery benchmark: measure what the snapshot lane
//! costs in steady state and prove what it buys back after a crash.
//!
//! Five campaigns over the in-process channel fabric, 4 ranks each:
//!
//! 1. **Overhead** — the same fault-free run with and without the
//!    asynchronous snapshot lane (one generation every 4 steps); the
//!    per-step overhead must stay under 10% because shard encode rides
//!    the compute worker and the durable write rides the comm worker.
//! 2. **Crash / resume** — a run truncated at half the step budget (the
//!    in-process stand-in for SIGKILLing every rank), then a `--resume`
//!    style restart that must land within 5% of the uninterrupted final
//!    loss. The trainer is deterministic in f32, so the gap is zero.
//! 3. **ChaosFs seeds** — the same cycle under seeded storage faults
//!    (torn writes, bitrot, crash-before-rename), one seed with a
//!    guaranteed crash-before-rename window: interrupted generations
//!    must be invisible and resume falls back to an older complete one.
//! 4. **Buddy reconstruction** — a shard of the newest generation is
//!    bitrotted on disk between the crash and the resume; the victim
//!    rank must rebuild its expert from the replica embedded in its
//!    buddy's shard instead of abandoning the generation.
//! 5. **Retention** — the truncated run commits more generations than
//!    `keep`, so the coordinator must have garbage-collected.
//!
//! Emits machine-readable `BENCH_*` lines and `BENCH_durability.json`
//! for `check_gate --durability`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use schemoe::prelude::*;
use schemoe_cluster::storage::ChaosFsPlan;
use schemoe_models::{run_ft_rank_durable, FtConfig, FtReport, SnapshotCfg};
use schemoe_tensor::snapshot;

const WORLD: usize = 4;
const STEPS: usize = 40;
const CRASH_STEPS: usize = 20;
const INTERVAL: usize = 4;
const KEEP: usize = 2;
const TIMING_TRIALS: usize = 3;

fn base_cfg(steps: usize) -> FtConfig {
    FtConfig::tiny(steps).with_seed(40).with_replica_interval(2)
}

/// The overhead campaign's model: scaled up from `tiny` so a step does a
/// realistic amount of compute relative to the snapshot lane's fixed
/// per-generation fsync cost. The recovery campaigns keep `tiny` — they
/// prove correctness, not cost, and rerun the trajectory many times.
fn overhead_cfg(steps: usize) -> FtConfig {
    let mut cfg = base_cfg(steps);
    cfg.model_dim = 32;
    cfg.hidden_dim = 64;
    cfg.seqs_per_rank = 16;
    cfg.seq_len = 32;
    cfg
}

fn run_world(cfg: FtConfig, snap: Option<SnapshotCfg>) -> Vec<FtReport> {
    let topo = Topology::new(1, WORLD);
    Fabric::run(topo, move |mut h| {
        run_ft_rank_durable(&mut h, &cfg, snap.as_ref())
    })
}

fn mean_loss(reports: &[FtReport]) -> f32 {
    assert!(
        reports.iter().all(|r| r.died_at_step.is_none()),
        "a rank died in a fault-free-network campaign"
    );
    reports.iter().map(|r| r.final_loss).sum::<f32>() / reports.len() as f32
}

fn rel_gap(a: f32, b: f32) -> f64 {
    f64::from((a - b).abs()) / f64::from(b.abs().max(f32::EPSILON))
}

/// A fresh per-scenario snapshot directory under the system temp dir —
/// no tempdir crate in the workspace, so name by pid and clean by hand.
fn snap_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("schemoe-durability-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The agreed resume point across a world's reports, asserted identical.
fn resumed_step(reports: &[FtReport]) -> usize {
    let first = reports[0]
        .resumed_at_step
        .expect("rank 0 resumed from a snapshot");
    for r in reports {
        assert_eq!(
            r.resumed_at_step,
            Some(first),
            "ranks disagree on the resume generation"
        );
    }
    first
}

/// Wall-clock of the fastest of [`TIMING_TRIALS`] identical runs.
fn best_of(mut run: impl FnMut() -> Vec<FtReport>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_TRIALS {
        let t0 = Instant::now();
        let reports = run();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(reports.iter().all(|r| r.died_at_step.is_none()));
        best = best.min(ms);
    }
    best
}

/// One crash/resume cycle: a truncated run persisting into `dir`, then
/// a full-length resume from whatever it committed. Returns the resume
/// reports plus the truncated run's total GC count.
fn crash_and_resume(dir: &Path, chaos: Option<Arc<ChaosFsPlan>>) -> (Vec<FtReport>, u64) {
    let mut crash_snap = SnapshotCfg::new(dir, INTERVAL).with_keep(KEEP);
    if let Some(plan) = &chaos {
        crash_snap = crash_snap.with_chaos(Arc::clone(plan));
    }
    let truncated = run_world(base_cfg(CRASH_STEPS), Some(crash_snap));
    let gc: u64 = truncated.iter().map(|r| r.snapshot_gc).sum();
    let committed: u64 = truncated.iter().map(|r| r.snapshot_generations).sum();
    assert!(
        committed > 0,
        "the truncated run committed no generation — nothing to resume from"
    );

    let mut resume_snap = SnapshotCfg::new(dir, INTERVAL)
        .with_keep(KEEP)
        .with_resume();
    if let Some(plan) = &chaos {
        resume_snap = resume_snap.with_chaos(Arc::clone(plan));
    }
    let resumed = run_world(base_cfg(STEPS), Some(resume_snap));
    (resumed, gc)
}

/// Flips one byte in the middle of `rank`'s shard of the newest
/// committed generation in `dir`; returns that generation.
fn corrupt_newest_shard(dir: &Path, rank: usize) -> u64 {
    let newest = std::fs::read_dir(dir)
        .expect("snapshot dir")
        .flatten()
        .filter_map(|e| snapshot::manifest_generation(&e.file_name().to_string_lossy()))
        .max()
        .expect("at least one committed generation");
    let path = dir.join(snapshot::shard_file_name(newest, rank));
    let mut bytes = std::fs::read(&path).expect("read victim shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted shard");
    newest
}

fn main() {
    println!(
        "durability: {WORLD} ranks, {STEPS} steps (crash at {CRASH_STEPS}), \
         snapshot every {INTERVAL} steps, keep {KEEP}\n"
    );

    // Campaign 1: steady-state overhead of the snapshot lane.
    let base_ms = best_of(|| run_world(overhead_cfg(STEPS), None));
    let overhead_dirs: Vec<PathBuf> = (0..TIMING_TRIALS)
        .map(|i| snap_dir(&format!("overhead{i}")))
        .collect();
    let mut trial = 0;
    let snap_ms = best_of(|| {
        let dir = &overhead_dirs[trial % TIMING_TRIALS];
        let _ = std::fs::remove_dir_all(dir);
        trial += 1;
        run_world(
            overhead_cfg(STEPS),
            Some(SnapshotCfg::new(dir, INTERVAL).with_keep(KEEP)),
        )
    });
    for dir in &overhead_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let overhead = ((snap_ms - base_ms) / base_ms).max(0.0);
    println!(
        "overhead: {base_ms:.1} ms bare vs {snap_ms:.1} ms snapshotting \
         -> {:.2}% per step",
        overhead * 100.0
    );

    // The uninterrupted reference trajectory.
    let clean = run_world(base_cfg(STEPS), None);
    let clean_loss = mean_loss(&clean);
    println!("uninterrupted mean final loss: {clean_loss:.4}");

    // Campaign 2: fault-free crash/resume cycle.
    let dir = snap_dir("resume");
    let (resumed, gc_removed) = crash_and_resume(&dir, None);
    let resume_loss = mean_loss(&resumed);
    let resume_step = resumed_step(&resumed);
    let loss_gap = rel_gap(resume_loss, clean_loss);
    let restore_ms = resumed.iter().map(|r| r.restore_ms).sum::<f64>() / resumed.len() as f64;
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "resume: restarted at step {resume_step}, final loss {resume_loss:.4} \
         ({:.2}% from uninterrupted), restore {restore_ms:.2} ms, gc removed {gc_removed}",
        loss_gap * 100.0
    );
    assert!(
        gc_removed > 0,
        "the truncated run never garbage-collected an old generation"
    );

    // Campaign 3: the same cycle under seeded storage chaos. Seed 23
    // additionally pins a crash-before-rename window onto the
    // coordinator's second manifest rename (its rename sequence is
    // shard g1, manifest g1, shard g2, manifest g2, ...), so one
    // generation is guaranteed to die between tmp and rename.
    let mut seed_results = Vec::new();
    for &(seed, crash_window) in &[(11u64, false), (23u64, true)] {
        let mut plan = ChaosFsPlan::seeded(seed)
            .with_write_probs(0.05, 0.0, 0.05)
            .with_crash_rename_prob(0.05);
        if crash_window {
            plan = plan.crash_rename_window(3, 4);
        }
        let dir = snap_dir(&format!("chaos{seed}"));
        let (resumed, _) = crash_and_resume(&dir, Some(Arc::new(plan)));
        let loss = mean_loss(&resumed);
        let step = resumed_step(&resumed);
        let gap = rel_gap(loss, clean_loss);
        let ok = gap <= 0.05;
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "chaosfs seed {seed}{}: resumed at step {step}, loss {loss:.4} \
             ({:.2}% gap) {}",
            if crash_window {
                " (crash-before-rename window)"
            } else {
                ""
            },
            gap * 100.0,
            if ok { "ok" } else { "FAIL" }
        );
        assert!(ok, "chaosfs seed {seed} resume drifted {:.2}%", gap * 100.0);
        seed_results.push((seed, crash_window, step, gap));
    }

    // Campaign 4: bitrot a shard between crash and resume — the victim
    // rank must rebuild from its buddy's embedded replica.
    const VICTIM: usize = 1;
    let dir = snap_dir("reconstruct");
    let crash_snap = SnapshotCfg::new(&dir, INTERVAL).with_keep(KEEP);
    let truncated = run_world(base_cfg(CRASH_STEPS), Some(crash_snap));
    assert!(truncated.iter().all(|r| r.died_at_step.is_none()));
    let corrupted_gen = corrupt_newest_shard(&dir, VICTIM);
    let resume_snap = SnapshotCfg::new(&dir, INTERVAL)
        .with_keep(KEEP)
        .with_resume();
    let rebuilt = run_world(base_cfg(STEPS), Some(resume_snap));
    let rebuilt_step = resumed_step(&rebuilt);
    let rebuilt_gap = rel_gap(mean_loss(&rebuilt), clean_loss);
    let reconstructions = rebuilt[VICTIM].snapshot_reconstructions;
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "reconstruction: corrupted gen {corrupted_gen} shard of rank {VICTIM}, \
         resumed at step {rebuilt_step} with {reconstructions} buddy rebuild(s), \
         {:.2}% gap",
        rebuilt_gap * 100.0
    );
    assert!(
        reconstructions >= 1,
        "the corrupted rank never rebuilt from its buddy's replica"
    );
    assert!(
        rebuilt_gap <= 0.05,
        "reconstruction resume drifted {:.2}%",
        rebuilt_gap * 100.0
    );

    println!("\nBENCH_DURABILITY_OVERHEAD={overhead:.4}");
    println!("BENCH_DURABILITY_LOSS_GAP={loss_gap:.4}");
    println!("BENCH_DURABILITY_RESTORE_MS={restore_ms:.2}");
    println!("BENCH_DURABILITY_RECONSTRUCTIONS={reconstructions}");
    println!("BENCH_DURABILITY_GC={gc_removed}");

    let seeds_json: Vec<String> = seed_results
        .iter()
        .map(|(seed, window, step, gap)| {
            format!(
                "{{\"seed\":{seed},\"crash_window\":{window},\
                 \"resumed_step\":{step},\"loss_gap\":{gap:.6},\"ok\":true}}"
            )
        })
        .collect();
    let report = format!(
        "{{\"bench\":\"durability\",\"ranks\":{WORLD},\"steps\":{STEPS},\
         \"crash_steps\":{CRASH_STEPS},\"interval\":{INTERVAL},\"keep\":{KEEP},\
         \"base_ms\":{base_ms:.3},\"snapshot_ms\":{snap_ms:.3},\
         \"overhead\":{overhead:.6},\
         \"clean_loss\":{clean_loss:.6},\"resume_loss\":{resume_loss:.6},\
         \"loss_gap\":{loss_gap:.6},\"resumed_step\":{resume_step},\
         \"restore_ms\":{restore_ms:.3},\"gc_removed\":{gc_removed},\
         \"reconstruction\":{{\"corrupted_generation\":{corrupted_gen},\
         \"resumed_step\":{rebuilt_step},\"reconstructions\":{reconstructions},\
         \"loss_gap\":{rebuilt_gap:.6}}},\
         \"seeds\":[{}]}}\n",
        seeds_json.join(",")
    );
    let path = "BENCH_durability.json";
    std::fs::write(path, &report).expect("write BENCH_durability.json");
    println!("BENCH_JSON={path}");
}
