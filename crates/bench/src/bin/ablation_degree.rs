//! Ablation: the partition degree `r` (the knob OptSche takes as given).
//!
//! The paper defers choosing `r` to PipeMoE [43] and Tutel's heuristic
//! (§4: "determining r to achieve better performance is another
//! optimization problem"). This sweep shows why: the best degree moves
//! with the layer shape — chunking buys overlap but multiplies
//! per-message latency — and the profiler-driven adaptive system tracks
//! the oracle.

use schemoe::prelude::*;
use schemoe::AdaptiveScheMoe;
use schemoe_scheduler::schedules::naive_makespan;

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let degrees = [1usize, 2, 4, 8, 16];

    println!("OptSche makespan (ms) of one MoE layer by partition degree r");
    println!("(ZFP 4x + Pipe-A2A; * marks the best degree per row)\n");
    print!("{:>26} {:>10}", "layer (tokens, M, H)", "no-overlap");
    for r in degrees {
        print!(" {:>8}", format!("r={r}"));
    }
    println!(" {:>9}", "adaptive");

    let mut adaptive = AdaptiveScheMoe::new();
    adaptive.calibrate(&topo, &hw);

    let shapes = [
        (2048usize, 512usize, 512usize),
        (4096, 1024, 4096),
        (8192, 2048, 2048),
        (16384, 4096, 8192),
        (16384, 8192, 8192),
    ];
    for (tokens, m, h) in shapes {
        let shape = LayerShape {
            tokens_per_gpu: tokens,
            model_dim: m,
            hidden_dim: h,
            experts: 32,
            k: 2,
            capacity_factor: 1.2,
        };
        let costs = shape.costs(4.0);
        let times: Vec<f64> = degrees
            .iter()
            .map(|&r| {
                let tasks = costs.task_set(&topo, &hw, &PipeA2A::new(), r);
                optsche(r).makespan(&tasks).expect("valid").as_ms()
            })
            .collect();
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let naive = naive_makespan(&costs.task_set(&topo, &hw, &PipeA2A::new(), 1)).as_ms();
        print!("{:>26} {naive:>10.1}", format!("({tokens}, {m}, {h})"));
        for t in &times {
            let marker = if (*t - best).abs() < 1e-9 { "*" } else { "" };
            print!(" {:>8}", format!("{t:.1}{marker}"));
        }
        let chosen = adaptive.choose_degree(&shape);
        let realized = adaptive.layer_time(&shape, &topo, &hw).as_ms();
        println!(" {:>9}", format!("r={chosen}:{realized:.0}"));
    }
    println!();
    println!(
        "Small layers prefer small r (latency-bound chunks); large comm-heavy\n\
         layers prefer deeper pipelining. The profiler-driven adaptive choice\n\
         lands on (or within a few percent of) the oracle column."
    );
}
