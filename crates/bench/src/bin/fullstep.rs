//! Wall-clock benchmark of the whole overlapped training step.
//!
//! Where `overlap_forward` times the forward pass alone, this bench times
//! the full step — pipelined forward, pipelined backward, and the
//! replicated-gradient allreduce folded into the backward task graph —
//! through [`schemoe_models::distributed_full_step`] on a fabric whose
//! cross-rank sends cost real time. It reports per-degree speedups over
//! the serial step, asserts the outputs (forward, input grads, reduced
//! values) are bit-identical at every degree, and closes the paper's
//! §3.2 loop online: an [`AdaptiveScheMoe`] warms up on instrumented
//! steps (one per candidate degree), fits per-kind models from the
//! measured spans, and re-chooses `r` — the choice is compared against
//! the measured oracle.
//!
//! Output is machine-readable `BENCH_*` lines plus a human table, and a
//! `BENCH_fullstep.json` report consumed by CI's full-step bench gate.

use std::time::{Duration, Instant};

use schemoe::AdaptiveScheMoe;
use schemoe_cluster::{Fabric, Topology, WireModel};
use schemoe_collectives::NcclA2A;
use schemoe_compression::NoCompression;
use schemoe_models::distributed_full_step;
use schemoe_moe::{DistributedMoeLayer, Expert, FfExpert, TopKGate};
use schemoe_obs as obs;
use schemoe_tensor::rng::{self, seeded};
use schemoe_tensor::Tensor;

const M: usize = 128;
const H: usize = 512;
const N_LOCAL: usize = 256;
const K: usize = 2;
const CAPACITY: f64 = 1.5;
const REPS: usize = 3;
/// Stand-in for the replicated modules' flattened gradient block (embed +
/// head of a small LM — the dense gradients whose allreduce the backward
/// task graph hides under the expert backward).
const REPLICATED: usize = 65_536;

type StepOut = (Tensor, Tensor, Vec<f32>);

/// One full step at the given degree; returns (max rank ms, outputs).
fn run_once(
    topo: Topology,
    wire: WireModel,
    x_global: &Tensor,
    degree: usize,
) -> (f64, Vec<StepOut>) {
    let results = Fabric::run_with_wire(topo, wire, |mut h| {
        let me = h.rank();
        let p = h.world_size();
        let gate = TopKGate::new(M, p, K, CAPACITY, &mut seeded(555));
        let experts: Vec<Box<dyn Expert>> =
            vec![Box::new(FfExpert::new(M, H, &mut seeded(1000 + me as u64)))];
        let mut layer =
            DistributedMoeLayer::new(gate, experts, Box::new(NoCompression), Box::new(NcclA2A))
                .with_partition_degree(degree)
                .with_recv_timeout(Duration::from_secs(60));
        let mut x = Tensor::zeros(&[N_LOCAL, M]);
        for r in 0..N_LOCAL {
            x.row_mut(r).copy_from_slice(x_global.row(me * N_LOCAL + r));
        }
        let live = vec![true; p];
        let mut replicated: Vec<f32> = (0..REPLICATED)
            .map(|i| ((me * REPLICATED + i) % 97) as f32 * 0.01)
            .collect();
        h.barrier();
        let t0 = Instant::now();
        let (y, dx) =
            distributed_full_step(&mut h, &mut layer, &x, 0, &mut replicated, &live).unwrap();
        let elapsed = t0.elapsed();
        h.barrier();
        (elapsed, (y, dx, replicated))
    });
    let ms = results
        .iter()
        .map(|(d, _)| d.as_secs_f64() * 1e3)
        .fold(0.0f64, f64::max);
    (ms, results.into_iter().map(|(_, out)| out).collect())
}

/// Best-of-`REPS` timing after one warmup, plus the outputs of the last
/// run (identical across runs: the step is deterministic).
fn measure(topo: Topology, wire: WireModel, x: &Tensor, degree: usize) -> (f64, Vec<StepOut>) {
    let _ = run_once(topo, wire, x, degree);
    let mut best = f64::INFINITY;
    let mut outs = Vec::new();
    for _ in 0..REPS {
        let (ms, out) = run_once(topo, wire, x, degree);
        best = best.min(ms);
        outs = out;
    }
    (best, outs)
}

fn main() {
    let topo = Topology::new(1, 4);
    let p = topo.world_size();
    // Wire chosen so each pass's comm is on the order of its compute (the
    // regime pipelining targets): the forward's two A2As balance the
    // expert forward, and the backward's A2As plus the replicated-grad
    // allreduce balance the recompute+backward.
    let wire = WireModel {
        latency: Duration::from_micros(200),
        bytes_per_sec: 5e6,
    };
    let x_global = rng::uniform(&[N_LOCAL * p, M], 1.0, &mut seeded(7));

    println!(
        "fullstep: {p} ranks, {N_LOCAL} tokens/rank, M={M}, H={H}, k={K}, \
         f={CAPACITY}, {REPLICATED} replicated grads, wire {:.0} MB/s + {:?}/msg\n",
        wire.bytes_per_sec / 1e6,
        wire.latency,
    );

    let degrees = [1usize, 2, 4, 8];
    let (serial_ms, serial_out) = measure(topo, wire, &x_global, 1);
    println!("{:>10} {:>12}", "degree", "step ms");
    println!("{:>10} {serial_ms:>12.1}", "1 (serial)");
    println!("BENCH_FULLSTEP_SERIAL_MS={serial_ms:.2}");

    let mut measured_ms = vec![(1usize, serial_ms)];
    let mut degree_json = vec![format!(
        "{{\"r\":1,\"ms\":{serial_ms:.3},\"speedup\":1.0000}}"
    )];
    for &degree in &degrees[1..] {
        let (ms, out) = measure(topo, wire, &x_global, degree);
        for (rank, ((y, dx, red), (ys, dxs, reds))) in out.iter().zip(&serial_out).enumerate() {
            assert_eq!(
                y.max_abs_diff(ys).unwrap(),
                0.0,
                "degree {degree} rank {rank} forward diverged"
            );
            assert_eq!(
                dx.max_abs_diff(dxs).unwrap(),
                0.0,
                "degree {degree} rank {rank} input grads diverged"
            );
            assert_eq!(
                red, reds,
                "degree {degree} rank {rank} reduced values diverged"
            );
        }
        let speedup = serial_ms / ms;
        println!("{degree:>10} {ms:>12.1}   ({speedup:.2}x, bit-identical)");
        println!("BENCH_FULLSTEP_R{degree}_MS={ms:.2}");
        println!("BENCH_FULLSTEP_SPEEDUP_R{degree}={speedup:.3}");
        measured_ms.push((degree, ms));
        degree_json.push(format!(
            "{{\"r\":{degree},\"ms\":{ms:.3},\"speedup\":{speedup:.4}}}"
        ));
    }

    // Online adaptive loop: run one instrumented step per candidate
    // degree (the warm-up schedule), feed each measured trace to the
    // chooser, then let the fitted models re-pick r for the steady state.
    let mut sys = AdaptiveScheMoe::new();
    sys.set_configured_degree(1);
    sys.set_backward_chunks(p);
    let mut warm = 0usize;
    while sys.in_warmup() {
        let r = sys.warmup_degree(warm);
        let _ = obs::take();
        obs::enable();
        let _ = run_once(topo, wire, &x_global, r);
        let trace = obs::take();
        obs::disable();
        let n = sys.observe_step(&trace);
        println!("warmup step {warm}: degree {r}, {n} stage samples");
        warm += 1;
    }
    let chosen = sys.choose_degree_online();
    let ms_of = |r: usize| {
        measured_ms
            .iter()
            .find(|&&(d, _)| d == r)
            .map(|&(_, ms)| ms)
            .expect("chosen degree was measured")
    };
    let (oracle, oracle_ms) = measured_ms
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty measurements");
    let regret = ms_of(chosen) / oracle_ms - 1.0;
    println!(
        "\nonline chooser: r={chosen} after {warm} warm-up steps; measured \
         oracle r={oracle} ({oracle_ms:.1} ms); regret {:.1}%",
        regret * 100.0
    );
    println!("BENCH_FULLSTEP_CHOSEN_R={chosen}");
    println!("BENCH_FULLSTEP_ORACLE_R={oracle}");
    println!("BENCH_FULLSTEP_CHOOSER_REGRET={regret:.4}");

    let report = format!(
        "{{\"bench\":\"fullstep\",\"ranks\":{p},\"tokens_per_rank\":{N_LOCAL},\
         \"serial_ms\":{serial_ms:.3},\"degrees\":[{}],\
         \"chosen_r\":{chosen},\"oracle_r\":{oracle},\
         \"chooser_regret\":{regret:.4}}}\n",
        degree_json.join(",")
    );
    let path = "BENCH_fullstep.json";
    std::fs::write(path, &report).expect("write BENCH_fullstep.json");
    println!("BENCH_JSON={path}");
}
