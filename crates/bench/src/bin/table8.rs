//! Regenerates **Table 8**: end-to-end BERT-Large-MoE (~6.4 B params).
//!
//! Paper: Tutel 783.3±11.8 ms, ScheMoE 672.9±28.4 ms (1.16×); Faster-MoE
//! runs out of memory. ZFP contributes ~70% and scheduling ~30% of the
//! improvement; Pipe-A2A does not help at this (median) message size.

use schemoe::prelude::*;
use schemoe_bench::step_ms_3runs;

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let model = MoeModelConfig::bert_large_moe();

    println!(
        "Table 8: BERT-Large-MoE ({:.1} B params), per-peer A2A message {} bytes",
        model.total_params() as f64 / 1e9,
        model.a2a_bytes() / topo.world_size() as u64,
    );
    println!(
        "{:>12} {:>16} {:>9}   (paper)",
        "System", "Time (ms)", "Speedup"
    );

    let tutel =
        step_ms_3runs(&TutelEmu::new(), &model, &topo, &hw).expect("Tutel fits BERT-Large-MoE");
    println!(
        "{:>12} {:>16} {:>9}   (783.3±11.8, 1.0x)",
        "Tutel",
        format!("{:.1}±{:.1}", tutel.0, tutel.1),
        "1.00x"
    );

    match step_ms_3runs(&FasterMoeEmu::new(), &model, &topo, &hw) {
        None => {
            println!("{:>12} {:>16} {:>9}   (OOM)", "Faster-MoE", "OOM", "-");
            // Show why.
            if let Err(StepTimeError::OutOfMemory { budget }) =
                model_step_time(&FasterMoeEmu::new(), &model, &topo, &hw)
            {
                println!("  Faster-MoE memory breakdown (uncapped dispatch buffers):");
                for line in format!("{budget}").lines() {
                    println!("    {line}");
                }
            }
        }
        Some(_) => println!("{:>12} unexpectedly fits", "Faster-MoE"),
    }

    let schemoe = step_ms_3runs(&ScheMoeSystem::default_config(), &model, &topo, &hw)
        .expect("ScheMoE fits BERT-Large-MoE");
    println!(
        "{:>12} {:>16} {:>9}   (672.9±28.4, 1.16x)",
        "ScheMoE",
        format!("{:.1}±{:.1}", schemoe.0, schemoe.1),
        format!("{:.2}x", tutel.0 / schemoe.0)
    );

    // Attribute the improvement: compression-only vs scheduling-only.
    let sched_only =
        step_ms_3runs(&ScheMoeSystem::without_compression(), &model, &topo, &hw).expect("fits");
    let total_gain = tutel.0 - schemoe.0;
    let sched_gain = tutel.0 - sched_only.0;
    let zfp_gain = (total_gain - sched_gain).max(0.0);
    println!();
    println!(
        "Improvement attribution: ZFP {:.0}%, scheduling+Pipe-A2A {:.0}%  (paper: ~70% / ~30%)",
        100.0 * zfp_gain / total_gain.max(1e-9),
        100.0 * sched_gain / total_gain.max(1e-9),
    );
}
