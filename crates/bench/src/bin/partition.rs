//! Partition-tolerance chaos campaign: seeded network partitions over
//! the in-process fabric, replayed to prove the quorum contract.
//!
//! Three scenarios over an 8-rank world, each a [`ChaosPlan`] of index
//! windows (no wall clock — every link darkens and heals on the same
//! send counts in every run):
//!
//! * **5/3 split** — the majority side assembles a burial quorum,
//!   buries the unreachable three, and continues degraded; the minority
//!   cannot reach quorum, parks, and rejoins through the announce/invite
//!   protocol once the windows close. Post-heal every rank holds one
//!   epoch and the mean loss lands within a few percent of fault-free.
//! * **4/4 tie** — neither side has a majority, so *both* park and
//!   nothing is ever buried: the epoch never moves and the committed
//!   trajectory is bit-identical to a fault-free run — the partition
//!   cost staleness, never divergence.
//! * **Asymmetric link** — one directed link (3 → 5) goes dark while
//!   every other direction delivers. The quorum excommunicates the mute
//!   rank on the accusation, and it returns through a rejoin.
//!
//! Every chaos scenario runs twice. The tie must replay **bitwise**
//! (full loss curves); the membership scenarios replay to identical
//! structural outcomes (who parked, who rejoined, who survived) — their
//! burial batching rides wall-clock vote timeouts, so step-level timing
//! is not pinned. Emits `BENCH_partition.json` for `check_gate
//! --partition`. `CHAOS_SEED` (or the first CLI argument) shifts the
//! campaign seeds.

use std::time::Duration;

use schemoe_cluster::{ChaosPlan, Fabric, FaultPlan, Topology, TransportKind};
use schemoe_models::{run_ft_rank, FtConfig, FtReport};

const WORLD: usize = 8;

fn seed() -> u64 {
    std::env::args()
        .nth(1)
        .or_else(|| std::env::var("CHAOS_SEED").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn topo() -> Topology {
    Topology::new(2, 4)
}

/// Quorum-tuned config: a two-attempt escalation with 50 ms votes keeps
/// the campaign fast without changing the protocol under test.
fn cfg_for(steps: usize, model_seed: u64) -> FtConfig {
    FtConfig {
        retry_budget: 1,
        vote_timeout_ms: 50,
        ..FtConfig::tiny(steps).with_seed(model_seed)
    }
}

fn run_clean(cfg: &FtConfig) -> Vec<FtReport> {
    Fabric::run_on(TransportKind::Channel, topo(), |mut h| {
        run_ft_rank(&mut h, cfg)
    })
}

fn run_chaos(cfg: &FtConfig, chaos: &ChaosPlan) -> Vec<FtReport> {
    // Blackholed links are pure silence; the deadline turns that into
    // the typed timeouts the liveness vote feeds on.
    let plan = FaultPlan::seeded(chaos.seed()).with_recv_deadline(Duration::from_millis(300));
    Fabric::run_with_chaos_on(
        TransportKind::Channel,
        topo(),
        chaos.clone(),
        Some(plan),
        |mut h| run_ft_rank(&mut h, cfg),
    )
}

/// Structural outcome of one run: who died, who stayed buried, who
/// rejoined — and optionally who parked, excluded where park-vs-die is
/// a legitimate race (the asymmetric scenario).
fn structural_digest(
    reports: &[FtReport],
    include_parks: bool,
) -> Vec<(Option<usize>, Vec<usize>, u64, bool)> {
    reports
        .iter()
        .map(|r| {
            (
                r.died_at_step,
                r.dead_ranks.clone(),
                r.rejoins,
                include_parks && r.parks > 0,
            )
        })
        .collect()
}

fn mean_final_loss(reports: &[FtReport]) -> f64 {
    let finite: Vec<f64> = reports
        .iter()
        .map(|r| f64::from(r.final_loss))
        .filter(|l| l.is_finite())
        .collect();
    assert!(!finite.is_empty(), "no rank finished with a finite loss");
    finite.iter().sum::<f64>() / finite.len() as f64
}

struct Outcome {
    name: &'static str,
    steps: usize,
    parked: usize,
    rejoined: usize,
    min_parked: usize,
    min_rejoined: usize,
    max_rejoined: usize,
    epochs_equal: bool,
    converged: bool,
    final_epoch: u32,
    replay: &'static str,
    replay_ok: bool,
    loss_gap: f64,
}

impl Outcome {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"steps\":{},\"parked_ranks\":{},\"rejoined_ranks\":{},\
             \"min_parked\":{},\"min_rejoined\":{},\"max_rejoined\":{},\"epochs_equal\":{},\
             \"converged\":{},\"final_epoch\":{},\"replay\":\"{}\",\"replay_ok\":{},\
             \"loss_gap\":{:.6}}}",
            self.name,
            self.steps,
            self.parked,
            self.rejoined,
            self.min_parked,
            self.min_rejoined,
            self.max_rejoined,
            self.epochs_equal,
            self.converged,
            self.final_epoch,
            self.replay,
            self.replay_ok,
            self.loss_gap,
        )
    }
}

/// Runs one chaos scenario twice plus its fault-free baseline and folds
/// the outcome into gate-checkable facts. `min_rejoined..=max_rejoined`
/// brackets the rank count allowed to travel the rejoin path — an
/// asymmetric link may excommunicate either endpoint, so its bracket is
/// wider than one.
fn scenario(
    name: &'static str,
    cfg: &FtConfig,
    chaos: &ChaosPlan,
    min_parked: usize,
    (min_rejoined, max_rejoined): (usize, usize),
    bitwise: bool,
) -> Outcome {
    let clean = run_clean(cfg);
    let first = run_chaos(cfg, chaos);
    let second = run_chaos(cfg, chaos);

    let replay_ok = if bitwise {
        let curves = |rs: &[FtReport]| -> Vec<Vec<f32>> {
            rs.iter().map(|r| r.loss_curve.clone()).collect()
        };
        curves(&first) == curves(&second)
            && structural_digest(&first, true) == structural_digest(&second, true)
            && curves(&first) == curves(&clean)
    } else {
        structural_digest(&first, min_parked > 0) == structural_digest(&second, min_parked > 0)
    };

    let parked = first.iter().filter(|r| r.parks > 0).count();
    let rejoined = first.iter().filter(|r| r.rejoins > 0).count();
    let epochs_equal = first.iter().all(|r| r.final_epoch == first[0].final_epoch);
    let converged = first
        .iter()
        .all(|r| r.died_at_step.is_none() && r.dead_ranks.is_empty());
    let clean_loss = mean_final_loss(&clean);
    let loss_gap = (mean_final_loss(&first) - clean_loss).abs() / clean_loss;

    let out = Outcome {
        name,
        steps: cfg.steps,
        parked,
        rejoined,
        min_parked,
        min_rejoined,
        max_rejoined,
        epochs_equal,
        converged,
        final_epoch: first[0].final_epoch,
        replay: if bitwise { "bitwise" } else { "structural" },
        replay_ok,
        loss_gap,
    };
    println!(
        "{name}: parked {parked} (>= {min_parked}), rejoined {rejoined} \
         (in {min_rejoined}..={max_rejoined}), epoch {} equal={epochs_equal}, \
         converged={converged}, replay[{}] ok={replay_ok}, loss gap {:.2}%",
        out.final_epoch,
        out.replay,
        loss_gap * 100.0,
    );
    out
}

fn main() {
    let seed = seed();
    println!("partition campaign: {WORLD} ranks, chaos seed base {seed}\n");

    let split = {
        let cfg = cfg_for(220, 34);
        let chaos = ChaosPlan::seeded(78 + seed).partition(&[0, 1, 2, 3, 4], &[5, 6, 7], 0, 36);
        scenario("split_5_3", &cfg, &chaos, 3, (3, 3), false)
    };
    let tie = {
        let cfg = cfg_for(8, 33);
        let chaos = ChaosPlan::seeded(77 + seed).partition(&[0, 1, 2, 3], &[4, 5, 6, 7], 0, 60);
        scenario("tie_4_4", &cfg, &chaos, WORLD, (0, 0), true)
    };
    let asym = {
        let cfg = cfg_for(200, 35);
        let chaos = ChaosPlan::seeded(79 + seed).blackhole_window(3, 5, 0, 24);
        // Either endpoint of the dark link may be excommunicated — the
        // mute sender always, its starved receiver when the abort
        // cascade reaches it first.
        scenario("asym_link", &cfg, &chaos, 0, (1, 2), false)
    };

    println!("\nBENCH_PARTITION_SPLIT_LOSS_GAP={:.4}", split.loss_gap);
    println!("BENCH_PARTITION_TIE_REPLAY_OK={}", tie.replay_ok);
    println!("BENCH_PARTITION_ASYM_REJOINED={}", asym.rejoined);

    let report = format!(
        "{{\"bench\":\"partition\",\"seed\":{seed},\"ranks\":{WORLD},\"scenarios\":[{},{},{}]}}\n",
        split.json(),
        tie.json(),
        asym.json(),
    );
    let path = "BENCH_partition.json";
    std::fs::write(path, &report).expect("write BENCH_partition.json");
    println!("BENCH_JSON={path}");
}
