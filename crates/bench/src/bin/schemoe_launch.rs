//! Multi-process launcher for the fault-tolerant trainer.
//!
//! `schemoe-launch` spawns one OS process per rank, wires them together
//! over a real transport, and runs [`run_ft_rank`] in each — the same
//! trainer the in-process chaos tests drive, now with real process
//! boundaries: a `--kill-rank` is a genuine `SIGKILL`, the peers see a
//! socket reset (TCP) or a vanished pid (shared memory) instead of a
//! simulated kill latch, and `--respawn` brings the victim back as a
//! fresh process that rejoins through the same announce/invite protocol
//! a simulated revival uses.
//!
//! ```text
//! schemoe-launch --transport tcp --ranks 4 --steps 40
//! schemoe-launch --transport tcp --ranks 4 --steps 60 \
//!     --kill-rank 2 --kill-after-ms 800 --respawn --trace-dir traces/
//! ```
//!
//! Transports: `tcp` (the *launcher* hosts the rendezvous — killing any
//! rank, including rank 0, leaves the cluster formable), `shm` (a
//! session directory of ring files under `/dev/shm`), and `channel`
//! (single process, rank threads — no kill support, kept for
//! apples-to-apples output). Every worker prints one parseable
//! `SCHEMOE_REPORT` line; the launcher parses them all and exits
//! non-zero unless the run proves what it was asked to prove: fault-free
//! completion, degraded completion after a kill, and a successful rejoin
//! after a respawn.
//!
//! With `--snapshot-dir` every rank persists generation-numbered shards
//! through the durable snapshot lane (`--snapshot-interval` steps apart,
//! GC keeping `--snapshot-keep` complete generations), and `--resume`
//! cold-restarts the whole job from the newest complete generation —
//! pair it with `--kill-all-after-ms` (SIGKILL every rank mid-run, exit
//! reporting `SCHEMOE_LAUNCH KILLED`) to drive a crash/recovery cycle
//! from CI. `--chaosfs-seed` injects seeded storage faults (torn
//! writes, bitrot, crash-before-rename) beneath the snapshot writers.
//!
//! With `--trace-dir` each worker records its run with the span recorder
//! and writes `trace-rank<N>.json` in Trace Event Format (load at
//! <https://ui.perfetto.dev>).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use schemoe_cluster::storage::ChaosFsPlan;
use schemoe_cluster::{
    transport, ChaosPlan, ChaosTransport, Fabric, RankHandle, Topology, Transport, TransportKind,
};
use schemoe_models::{run_ft_rank_durable, FtConfig, FtReport, SnapshotCfg};
use schemoe_obs as obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = if args.first().map(String::as_str) == Some("worker") {
        worker_main(&args[1..])
    } else {
        launcher_main(&args)
    };
    std::process::exit(code);
}

fn usage() -> ! {
    eprintln!(
        "usage: schemoe-launch [--transport tcp|shm|channel] [--ranks N] [--steps S] \
         [--seed S] [--replica-interval K] [--kill-rank R] [--kill-after-ms MS] \
         [--respawn] [--respawn-after-ms MS] [--kill-all-after-ms MS] \
         [--partition LO-HI,LO-HI] [--heal-after-ms MS] [--chaos-seed S] \
         [--vote-timeout-ms MS] [--retry-budget N] [--trace-dir DIR] \
         [--snapshot-dir DIR] [--snapshot-interval K] [--snapshot-keep N] \
         [--resume] [--chaosfs-seed S]"
    );
    std::process::exit(64);
}

/// The storage-fault plan a non-zero `--chaosfs-seed` installs beneath
/// every rank's snapshot writes: rare seeded torn writes, silent bitrot,
/// and crash-before-rename — frequent enough to exercise the fallback
/// paths over a run, rare enough that generations still commit.
fn chaosfs_plan(seed: u64) -> ChaosFsPlan {
    ChaosFsPlan::seeded(seed)
        .with_write_probs(0.05, 0.0, 0.05)
        .with_crash_rename_prob(0.05)
}

/// Parses a `--partition` spec — two comma-separated rank groups, each a
/// `LO-HI` range or a single rank — and checks the groups are disjoint
/// and cover every rank exactly once.
fn parse_partition(spec: &str, world: usize) -> Result<(Vec<usize>, Vec<usize>), String> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for part in spec.split(',') {
        let (lo, hi) = match part.split_once('-') {
            Some((l, h)) => (
                l.parse::<usize>().map_err(|_| format!("bad rank {l:?}"))?,
                h.parse::<usize>().map_err(|_| format!("bad rank {h:?}"))?,
            ),
            None => {
                let r = part
                    .parse::<usize>()
                    .map_err(|_| format!("bad rank {part:?}"))?;
                (r, r)
            }
        };
        if lo > hi {
            return Err(format!("empty range {part:?}"));
        }
        groups.push((lo..=hi).collect());
    }
    if groups.len() != 2 {
        return Err("a partition needs exactly two groups".to_string());
    }
    let mut seen = vec![false; world];
    for &r in groups.iter().flatten() {
        if r >= world {
            return Err(format!("rank {r} is outside the {world}-rank world"));
        }
        if seen[r] {
            return Err(format!("rank {r} appears in both groups"));
        }
        seen[r] = true;
    }
    if !seen.iter().all(|&s| s) {
        return Err("the two groups must cover every rank".to_string());
    }
    let b = groups.pop().expect("two groups");
    let a = groups.pop().expect("two groups");
    Ok((a, b))
}

/// The wall-clock partition plan every rank of a `--partition` run wraps
/// its endpoint in: all cross-group links are dark from the first send
/// until the heal deadline lifts every fault at once.
fn partition_plan(chaos_seed: u64, a: &[usize], b: &[usize], heal_after_ms: u64) -> ChaosPlan {
    ChaosPlan::seeded(chaos_seed)
        .partition(a, b, 0, u64::MAX)
        .heal_after(Duration::from_millis(heal_after_ms))
}

/// Pops the value of a `--flag VALUE` pair, parsing it with `FromStr`.
fn take_value<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    let Some(v) = it.next() else {
        eprintln!("{flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value {v:?} for {flag}");
        usage();
    })
}

// ---------------------------------------------------------------------------
// Worker mode: one rank in one process.
// ---------------------------------------------------------------------------

struct WorkerOpts {
    rank: usize,
    world: usize,
    steps: usize,
    seed: u64,
    replica_interval: usize,
    rejoin: bool,
    rendezvous: Option<String>,
    shm_dir: Option<PathBuf>,
    trace: Option<PathBuf>,
    partition: Option<String>,
    heal_after_ms: u64,
    chaos_seed: u64,
    vote_timeout_ms: u64,
    retry_budget: u32,
    snapshot_dir: Option<PathBuf>,
    snapshot_interval: usize,
    snapshot_keep: usize,
    resume: bool,
    chaosfs_seed: u64,
}

fn worker_main(args: &[String]) -> i32 {
    let mut o = WorkerOpts {
        rank: usize::MAX,
        world: 0,
        steps: 20,
        seed: 7,
        replica_interval: 2,
        rejoin: false,
        rendezvous: None,
        shm_dir: None,
        trace: None,
        partition: None,
        heal_after_ms: 2000,
        chaos_seed: 7,
        vote_timeout_ms: 500,
        retry_budget: 3,
        snapshot_dir: None,
        snapshot_interval: 4,
        snapshot_keep: 2,
        resume: false,
        chaosfs_seed: 0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rank" => o.rank = take_value(&mut it, a),
            "--world" => o.world = take_value(&mut it, a),
            "--steps" => o.steps = take_value(&mut it, a),
            "--seed" => o.seed = take_value(&mut it, a),
            "--replica-interval" => o.replica_interval = take_value(&mut it, a),
            "--rejoin" => o.rejoin = true,
            "--rendezvous" => o.rendezvous = Some(take_value(&mut it, a)),
            "--shm-dir" => o.shm_dir = Some(take_value::<String>(&mut it, a).into()),
            "--trace" => o.trace = Some(take_value::<String>(&mut it, a).into()),
            "--partition" => o.partition = Some(take_value(&mut it, a)),
            "--heal-after-ms" => o.heal_after_ms = take_value(&mut it, a),
            "--chaos-seed" => o.chaos_seed = take_value(&mut it, a),
            "--vote-timeout-ms" => o.vote_timeout_ms = take_value(&mut it, a),
            "--retry-budget" => o.retry_budget = take_value(&mut it, a),
            "--snapshot-dir" => o.snapshot_dir = Some(take_value::<String>(&mut it, a).into()),
            "--snapshot-interval" => o.snapshot_interval = take_value(&mut it, a),
            "--snapshot-keep" => o.snapshot_keep = take_value(&mut it, a),
            "--resume" => o.resume = true,
            "--chaosfs-seed" => o.chaosfs_seed = take_value(&mut it, a),
            _ => usage(),
        }
    }
    if o.rank >= o.world || o.world == 0 {
        usage();
    }

    let endpoint: Box<dyn Transport> = if let Some(dir) = &o.shm_dir {
        #[cfg(unix)]
        {
            Box::new(transport::shm::ShmBootstrap::new(dir.clone(), o.rank, o.world).attach())
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            eprintln!("shm transport requires a unix host");
            return 64;
        }
    } else {
        // The launcher hosts the rendezvous (persistent: late rejoiners
        // are answered with the current map) — every tcp worker,
        // including rank 0, dials it. No rank is a bootstrap SPOF.
        let Some(rendezvous) = o.rendezvous.clone() else {
            eprintln!("tcp workers need --rendezvous (the launcher hosts the rendezvous)");
            return 64;
        };
        match transport::tcp::TcpBootstrap::new(rendezvous, o.rank, o.world).connect() {
            Ok(t) => Box::new(t),
            Err(e) => {
                eprintln!("rank {}: tcp bootstrap failed: {e}", o.rank);
                return 69; // EX_UNAVAILABLE: the cluster never formed
            }
        }
    };

    // A `--partition` run wraps the endpoint in the chaos decorator so
    // the *network* misbehaves beneath a perfectly healthy process: all
    // cross-group sends vanish until the wall-clock heal lifts them.
    let endpoint: Box<dyn Transport> = if let Some(spec) = &o.partition {
        let (a, b) = match parse_partition(spec, o.world) {
            Ok(groups) => groups,
            Err(e) => {
                eprintln!("rank {}: bad --partition: {e}", o.rank);
                return 64;
            }
        };
        let plan = partition_plan(o.chaos_seed, &a, &b, o.heal_after_ms);
        Box::new(ChaosTransport::new(endpoint, o.rank, Arc::new(plan)))
    } else {
        endpoint
    };

    let mut h = RankHandle::attach(Topology::new(1, o.world), o.rank, endpoint, None);
    let mut cfg = FtConfig::tiny(o.steps)
        .with_seed(o.seed)
        .with_replica_interval(o.replica_interval);
    cfg.vote_timeout_ms = o.vote_timeout_ms;
    cfg.retry_budget = o.retry_budget;
    if o.rejoin {
        cfg = cfg.with_rejoin();
    }
    // A SIGKILLed peer abandons its step mid-exchange; without a receive
    // deadline a survivor blocks on that abandoned step forever, misses
    // the burial vote, and the cluster splits. The chaos tests get this
    // deadline from their fault plan — a real-process worker must install
    // the equivalent on the handle itself.
    h.set_recv_deadline(Some(Duration::from_millis(
        cfg.vote_timeout_ms.max(100) * 4,
    )));

    let snap = o.snapshot_dir.as_ref().map(|dir| {
        let mut s = SnapshotCfg::new(dir, o.snapshot_interval).with_keep(o.snapshot_keep);
        if o.resume {
            s = s.with_resume();
        }
        if o.chaosfs_seed != 0 {
            s = s.with_chaos(Arc::new(chaosfs_plan(o.chaosfs_seed)));
        }
        s
    });

    if o.trace.is_some() {
        obs::reset_counters();
        let _ = obs::take();
        obs::enable();
    }
    let report = run_ft_rank_durable(&mut h, &cfg, snap.as_ref());
    if let Some(path) = &o.trace {
        let trace = obs::take();
        obs::disable();
        if let Err(e) = std::fs::write(path, trace.to_chrome_trace()) {
            eprintln!("rank {}: failed to write trace {path:?}: {e}", o.rank);
        }
    }
    println!("{}", report_line(o.rank, &report));
    std::io::stdout().flush().expect("flush report line");
    i32::from(report.died_at_step.is_some()) * 2
}

fn report_line(rank: usize, r: &FtReport) -> String {
    let died = r
        .died_at_step
        .map_or_else(|| "-".to_string(), |s| s.to_string());
    let dead = if r.dead_ranks.is_empty() {
        "-".to_string()
    } else {
        r.dead_ranks
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    };
    let resumed = r
        .resumed_at_step
        .map_or_else(|| "-".to_string(), |s| s.to_string());
    format!(
        "SCHEMOE_REPORT rank={rank} died={died} dead={dead} rejoins={} restores={} \
         retries={} epoch={} loss={} parks={} resumed={resumed} snapgens={} snapshards={}",
        r.rejoins,
        r.restores,
        r.retries,
        r.final_epoch,
        r.final_loss,
        r.parks,
        r.snapshot_generations,
        r.snapshot_shards
    )
}

// ---------------------------------------------------------------------------
// Launcher mode: spawn, kill, respawn, assert.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct LaunchOpts {
    transport: String,
    ranks: usize,
    steps: usize,
    seed: u64,
    replica_interval: usize,
    kill_rank: Option<usize>,
    kill_after_ms: u64,
    respawn: bool,
    respawn_after_ms: u64,
    kill_all_after_ms: Option<u64>,
    partition: Option<String>,
    heal_after_ms: u64,
    chaos_seed: u64,
    vote_timeout_ms: u64,
    retry_budget: u32,
    trace_dir: Option<PathBuf>,
    snapshot_dir: Option<PathBuf>,
    snapshot_interval: usize,
    snapshot_keep: usize,
    resume: bool,
    chaosfs_seed: u64,
}

/// One `SCHEMOE_REPORT` line, parsed back into numbers.
#[derive(Debug)]
struct ParsedReport {
    rank: usize,
    died: Option<usize>,
    dead: Vec<usize>,
    rejoins: u64,
    restores: u64,
    epoch: u64,
    parks: u64,
    resumed: Option<usize>,
}

fn parse_report(line: &str) -> Option<ParsedReport> {
    let mut rank = None;
    let mut died = None;
    let mut dead = Vec::new();
    let mut rejoins = 0;
    let mut restores = 0;
    let mut epoch = 0;
    let mut parks = 0;
    let mut resumed = None;
    for field in line.split_whitespace().skip(1) {
        let (key, val) = field.split_once('=')?;
        match key {
            "rank" => rank = Some(val.parse().ok()?),
            "died" if val != "-" => died = Some(val.parse().ok()?),
            "dead" if val != "-" => {
                dead = val
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .ok()?;
            }
            "rejoins" => rejoins = val.parse().ok()?,
            "restores" => restores = val.parse().ok()?,
            "epoch" => epoch = val.parse().ok()?,
            "parks" => parks = val.parse().ok()?,
            "resumed" if val != "-" => resumed = Some(val.parse().ok()?),
            _ => {}
        }
    }
    Some(ParsedReport {
        rank: rank?,
        died,
        dead,
        rejoins,
        restores,
        epoch,
        parks,
        resumed,
    })
}

/// A spawned worker plus the thread forwarding its output.
struct Worker {
    rank: usize,
    child: Child,
    forwarder: JoinHandle<()>,
}

fn launcher_main(args: &[String]) -> i32 {
    let mut o = LaunchOpts {
        transport: "tcp".to_string(),
        ranks: 4,
        steps: 20,
        seed: 7,
        replica_interval: 2,
        kill_rank: None,
        kill_after_ms: 800,
        respawn: false,
        respawn_after_ms: 400,
        kill_all_after_ms: None,
        partition: None,
        heal_after_ms: 2000,
        chaos_seed: 7,
        vote_timeout_ms: 500,
        retry_budget: 3,
        trace_dir: None,
        snapshot_dir: None,
        snapshot_interval: 4,
        snapshot_keep: 2,
        resume: false,
        chaosfs_seed: 0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--transport" => o.transport = take_value(&mut it, a),
            "--ranks" => o.ranks = take_value(&mut it, a),
            "--steps" => o.steps = take_value(&mut it, a),
            "--seed" => o.seed = take_value(&mut it, a),
            "--replica-interval" => o.replica_interval = take_value(&mut it, a),
            "--kill-rank" => o.kill_rank = Some(take_value(&mut it, a)),
            "--kill-after-ms" => o.kill_after_ms = take_value(&mut it, a),
            "--respawn" => o.respawn = true,
            "--respawn-after-ms" => o.respawn_after_ms = take_value(&mut it, a),
            "--kill-all-after-ms" => o.kill_all_after_ms = Some(take_value(&mut it, a)),
            "--partition" => o.partition = Some(take_value(&mut it, a)),
            "--heal-after-ms" => o.heal_after_ms = take_value(&mut it, a),
            "--chaos-seed" => o.chaos_seed = take_value(&mut it, a),
            "--vote-timeout-ms" => o.vote_timeout_ms = take_value(&mut it, a),
            "--retry-budget" => o.retry_budget = take_value(&mut it, a),
            "--trace-dir" => o.trace_dir = Some(take_value::<String>(&mut it, a).into()),
            "--snapshot-dir" => o.snapshot_dir = Some(take_value::<String>(&mut it, a).into()),
            "--snapshot-interval" => o.snapshot_interval = take_value(&mut it, a),
            "--snapshot-keep" => o.snapshot_keep = take_value(&mut it, a),
            "--resume" => o.resume = true,
            "--chaosfs-seed" => o.chaosfs_seed = take_value(&mut it, a),
            _ => usage(),
        }
    }
    if o.ranks == 0 || o.ranks > 64 {
        eprintln!("--ranks must be 1..=64");
        return 64;
    }
    if let Some(spec) = &o.partition {
        if o.kill_rank.is_some() {
            eprintln!("--partition and --kill-rank are separate scenarios");
            return 64;
        }
        if let Err(e) = parse_partition(spec, o.ranks) {
            eprintln!("bad --partition: {e}");
            return 64;
        }
    }
    if o.kill_all_after_ms.is_some() {
        if o.kill_rank.is_some() || o.partition.is_some() {
            eprintln!("--kill-all-after-ms is its own scenario (no --kill-rank/--partition)");
            return 64;
        }
        if o.transport == "channel" {
            eprintln!("--kill-all-after-ms needs a multi-process transport (tcp or shm)");
            return 64;
        }
    }
    // Any rank may be the kill victim: the launcher hosts the tcp
    // rendezvous, so killing rank 0 no longer takes the bootstrap down.
    if let Some(k) = o.kill_rank {
        if k >= o.ranks {
            eprintln!("--kill-rank out of range");
            return 64;
        }
    }
    if o.snapshot_dir.is_none() && (o.resume || o.chaosfs_seed != 0) {
        eprintln!("--resume/--chaosfs-seed need --snapshot-dir");
        return 64;
    }
    if let Some(dir) = &o.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --trace-dir {dir:?}: {e}");
            return 64;
        }
    }
    match o.transport.as_str() {
        "channel" => launch_in_process(&o),
        "tcp" | "shm" => launch_processes(&o),
        other => {
            eprintln!("unknown transport {other:?}");
            usage()
        }
    }
}

/// Channel mode: the classic in-process fabric, one thread per rank.
fn launch_in_process(o: &LaunchOpts) -> i32 {
    if o.kill_rank.is_some() {
        eprintln!("--kill-rank needs a multi-process transport (tcp or shm)");
        return 64;
    }
    let mut cfg = FtConfig::tiny(o.steps)
        .with_seed(o.seed)
        .with_replica_interval(o.replica_interval);
    cfg.vote_timeout_ms = o.vote_timeout_ms;
    cfg.retry_budget = o.retry_budget;
    let snap = o.snapshot_dir.as_ref().map(|dir| {
        let mut s = SnapshotCfg::new(dir, o.snapshot_interval).with_keep(o.snapshot_keep);
        if o.resume {
            s = s.with_resume();
        }
        if o.chaosfs_seed != 0 {
            s = s.with_chaos(Arc::new(chaosfs_plan(o.chaosfs_seed)));
        }
        s
    });
    let topo = Topology::new(1, o.ranks);
    let reports = if let Some(spec) = &o.partition {
        let (a, b) = parse_partition(spec, o.ranks).expect("validated in launcher_main");
        let chaos = partition_plan(o.chaos_seed, &a, &b, o.heal_after_ms);
        Fabric::run_with_chaos_on(TransportKind::Channel, topo, chaos, None, |mut h| {
            // Blackholed links look like pure silence; a deadline turns
            // that silence into the timeouts the liveness vote feeds on.
            h.set_recv_deadline(Some(Duration::from_millis(
                cfg.vote_timeout_ms.max(100) * 4,
            )));
            run_ft_rank_durable(&mut h, &cfg, snap.as_ref())
        })
    } else {
        Fabric::run(topo, |mut h| {
            run_ft_rank_durable(&mut h, &cfg, snap.as_ref())
        })
    };
    for (rank, r) in reports.iter().enumerate() {
        println!("{}", report_line(rank, r));
    }
    let parsed: Vec<ParsedReport> = reports
        .iter()
        .enumerate()
        .map(|(rank, r)| ParsedReport {
            rank,
            died: r.died_at_step,
            dead: r.dead_ranks.clone(),
            rejoins: r.rejoins,
            restores: r.restores,
            epoch: u64::from(r.final_epoch),
            parks: r.parks,
            resumed: r.resumed_at_step,
        })
        .collect();
    let verdict = assess(o, None, &parsed, &[]);
    println!(
        "SCHEMOE_LAUNCH {} transport=channel ranks={} steps={}",
        if verdict.is_ok() { "OK" } else { "FAIL" },
        o.ranks,
        o.steps
    );
    match verdict {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("[launch] {msg}");
            1
        }
    }
}

fn worker_command(o: &LaunchOpts, rank: usize, session: &WorkerSession, rejoin: bool) -> Command {
    let exe = std::env::current_exe().expect("own executable path");
    let mut cmd = Command::new(exe);
    cmd.arg("worker")
        .arg("--rank")
        .arg(rank.to_string())
        .arg("--world")
        .arg(o.ranks.to_string())
        .arg("--steps")
        .arg(o.steps.to_string())
        .arg("--seed")
        .arg(o.seed.to_string())
        .arg("--replica-interval")
        .arg(o.replica_interval.to_string())
        .arg("--vote-timeout-ms")
        .arg(o.vote_timeout_ms.to_string())
        .arg("--retry-budget")
        .arg(o.retry_budget.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(spec) = &o.partition {
        cmd.arg("--partition")
            .arg(spec)
            .arg("--heal-after-ms")
            .arg(o.heal_after_ms.to_string())
            .arg("--chaos-seed")
            .arg(o.chaos_seed.to_string());
    }
    match session {
        WorkerSession::Tcp { rendezvous } => {
            cmd.arg("--rendezvous").arg(rendezvous);
        }
        WorkerSession::Shm { dir } => {
            cmd.arg("--shm-dir").arg(dir);
        }
    }
    if rejoin {
        cmd.arg("--rejoin");
    }
    if let Some(dir) = &o.snapshot_dir {
        cmd.arg("--snapshot-dir")
            .arg(dir)
            .arg("--snapshot-interval")
            .arg(o.snapshot_interval.to_string())
            .arg("--snapshot-keep")
            .arg(o.snapshot_keep.to_string());
        // A respawned mid-run worker rejoins the live cluster through
        // announce/invite; only an initial spawn restores from disk.
        if o.resume && !rejoin {
            cmd.arg("--resume");
        }
        if o.chaosfs_seed != 0 {
            cmd.arg("--chaosfs-seed").arg(o.chaosfs_seed.to_string());
        }
    }
    if let Some(dir) = &o.trace_dir {
        let suffix = if rejoin { "-rejoin" } else { "" };
        cmd.arg("--trace")
            .arg(dir.join(format!("trace-rank{rank}{suffix}.json")));
    }
    cmd
}

enum WorkerSession {
    Tcp { rendezvous: String },
    Shm { dir: PathBuf },
}

/// Spawns a worker, wiring a forwarder thread that prefixes its stdout
/// lines and captures `SCHEMOE_REPORT` lines into `reports`.
fn spawn_worker(
    mut cmd: Command,
    rank: usize,
    reports: &Arc<Mutex<Vec<ParsedReport>>>,
) -> std::io::Result<Worker> {
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let reports = Arc::clone(reports);
    let forwarder = thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if line.starts_with("SCHEMOE_REPORT ") {
                if let Some(parsed) = parse_report(&line) {
                    reports.lock().expect("report list").push(parsed);
                }
            }
            println!("[rank {rank}] {line}");
        }
    });
    Ok(Worker {
        rank,
        child,
        forwarder,
    })
}

fn launch_processes(o: &LaunchOpts) -> i32 {
    let reports: Arc<Mutex<Vec<ParsedReport>>> = Arc::new(Mutex::new(Vec::new()));

    // Session setup. For tcp the *launcher* hosts the rendezvous — it
    // outlives every worker, so killing any rank (rank 0 included)
    // leaves the bootstrap standing. With a snapshot dir the rank→addr
    // map is persisted beside the snapshots through the same durable
    // write-tmp → fsync → rename helper; any stale store from a previous
    // incarnation is cleared first (addresses are per-process).
    let (session, _shm_guard) = match o.transport.as_str() {
        "tcp" => {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind rendezvous");
            let addr = listener.local_addr().expect("rendezvous addr").to_string();
            let store = o.snapshot_dir.as_ref().map(|d| d.join("rendezvous.store"));
            if let Some(path) = &store {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                let _ = std::fs::remove_file(path);
            }
            let world = o.ranks;
            thread::spawn(move || {
                transport::tcp::serve_rendezvous_with_store(listener, world, true, store);
            });
            println!("[launch] rendezvous at {addr}");
            (
                WorkerSession::Tcp { rendezvous: addr },
                None::<tempdir::TempDir>,
            )
        }
        "shm" => {
            #[cfg(unix)]
            {
                let dir = transport::shm::session_base().join(format!(
                    "schemoe-launch-{}-{}",
                    std::process::id(),
                    o.seed
                ));
                if let Err(e) = transport::shm::init_session(&dir, o.ranks) {
                    eprintln!("cannot initialise shm session {dir:?}: {e}");
                    return 1;
                }
                (
                    WorkerSession::Shm { dir: dir.clone() },
                    Some(tempdir::TempDir(dir)),
                )
            }
            #[cfg(not(unix))]
            {
                eprintln!("shm transport requires a unix host");
                return 64;
            }
        }
        _ => unreachable!("validated in launcher_main"),
    };

    let mut workers: Vec<Worker> = Vec::new();
    for rank in 0..o.ranks {
        match spawn_worker(worker_command(o, rank, &session, false), rank, &reports) {
            Ok(w) => workers.push(w),
            Err(e) => {
                eprintln!("failed to spawn rank {rank}: {e}");
                for w in &mut workers {
                    let _ = w.child.kill();
                }
                return 1;
            }
        }
    }

    // Whole-job crash: SIGKILL every rank mid-run and stop — the point
    // is what a later `--resume` launch recovers from the snapshot dir.
    if let Some(after_ms) = o.kill_all_after_ms {
        thread::sleep(Duration::from_millis(after_ms));
        let mut still_running = 0usize;
        for w in &mut workers {
            if w.child.try_wait().expect("probe worker").is_none() {
                still_running += 1;
            }
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
        for w in workers {
            let _ = w.forwarder.join();
        }
        println!(
            "[launch] killed all {} ranks after {after_ms} ms ({still_running} were still running)",
            o.ranks
        );
        if still_running == 0 {
            eprintln!("[launch] every rank finished before the kill-all fired — nothing to resume");
            println!(
                "SCHEMOE_LAUNCH FAIL transport={} ranks={} steps={}",
                o.transport, o.ranks, o.steps
            );
            return 1;
        }
        println!(
            "SCHEMOE_LAUNCH KILLED transport={} ranks={} steps={}",
            o.transport, o.ranks, o.steps
        );
        return 0;
    }

    // The fault schedule: a real SIGKILL, then (optionally) a fresh
    // process claiming the victim's rank back.
    let mut killed: Option<usize> = None;
    if let Some(victim) = o.kill_rank {
        thread::sleep(Duration::from_millis(o.kill_after_ms));
        let w = &mut workers[victim];
        if w.child.try_wait().expect("probe victim").is_some() {
            eprintln!("kill victim rank {victim} exited before the kill fired");
            return 1;
        }
        w.child.kill().expect("SIGKILL victim");
        let _ = w.child.wait();
        println!("[launch] killed rank {victim} after {} ms", o.kill_after_ms);
        killed = Some(victim);
        if o.respawn {
            thread::sleep(Duration::from_millis(o.respawn_after_ms));
            match spawn_worker(worker_command(o, victim, &session, true), victim, &reports) {
                Ok(w) => {
                    println!("[launch] respawned rank {victim} with --rejoin");
                    workers.push(w);
                }
                Err(e) => {
                    eprintln!("failed to respawn rank {victim}: {e}");
                    return 1;
                }
            }
        }
    }

    // Reap everything; the killed incarnation was already waited on.
    let mut failures = Vec::new();
    for w in workers {
        let Worker {
            rank,
            mut child,
            forwarder,
        } = w;
        if killed == Some(rank) {
            // The killed incarnation was already reaped after the SIGKILL;
            // its respawn sits later in the list and is waited on when its
            // own entry comes up.
            killed = None;
            let _ = forwarder.join();
            continue;
        }
        let status: ExitStatus = match child.wait() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("wait for rank {rank} failed: {e}");
                return 1;
            }
        };
        let _ = forwarder.join();
        if !status.success() {
            failures.push((rank, status));
        }
    }
    for (rank, status) in &failures {
        eprintln!("[launch] rank {rank} exited with {status}");
    }

    let reports = reports.lock().expect("report list");
    let verdict = assess(o, o.kill_rank, &reports, &failures);
    println!(
        "SCHEMOE_LAUNCH {} transport={} ranks={} steps={} reports={}",
        if verdict.is_ok() { "OK" } else { "FAIL" },
        o.transport,
        o.ranks,
        o.steps,
        reports.len()
    );
    match verdict {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("[launch] {msg}");
            1
        }
    }
}

/// Decides whether the run proved what it was asked to prove.
fn assess(
    o: &LaunchOpts,
    victim: Option<usize>,
    reports: &[ParsedReport],
    failures: &[(usize, ExitStatus)],
) -> Result<(), String> {
    if !failures.is_empty() {
        return Err(format!("{} worker(s) exited non-zero", failures.len()));
    }
    let expected = if victim.is_some() && !o.respawn {
        o.ranks - 1
    } else {
        o.ranks
    };
    if reports.len() != expected {
        return Err(format!(
            "expected {expected} reports, saw {}",
            reports.len()
        ));
    }
    for r in reports {
        if let Some(step) = r.died {
            return Err(format!("rank {} reported death at step {step}", r.rank));
        }
    }
    // Resume is all-or-nothing: every rank scans the same snapshot dir
    // and must pick the same committed generation — a split answer means
    // the deterministic restore diverged.
    if let Some(first) = reports.first() {
        if let Some(r) = reports.iter().find(|r| r.resumed != first.resumed) {
            return Err(format!(
                "ranks disagree on the resume point: rank {} saw {:?}, rank {} saw {:?}",
                first.rank, first.resumed, r.rank, r.resumed
            ));
        }
    }
    if o.resume {
        let has_manifest = o.snapshot_dir.as_ref().is_some_and(|dir| {
            std::fs::read_dir(dir).is_ok_and(|entries| {
                entries.flatten().any(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.starts_with("manifest-") && name.ends_with(".smmf")
                })
            })
        });
        if has_manifest && reports.iter().any(|r| r.resumed.is_none()) {
            return Err(
                "--resume found a committed manifest but a rank restarted from scratch".to_string(),
            );
        }
    }
    if let Some(spec) = &o.partition {
        return assess_partition(spec, o.ranks, reports);
    }
    let Some(victim) = victim else {
        return Ok(());
    };
    // Degraded completion: some survivor observed the death and restored.
    let survivors: Vec<&ParsedReport> = reports.iter().filter(|r| r.rank != victim).collect();
    if !survivors.iter().any(|r| r.restores > 0) {
        return Err("no survivor restored a checkpoint after the kill".to_string());
    }
    if o.respawn {
        let Some(rejoined) = reports.iter().find(|r| r.rank == victim) else {
            return Err(format!("no report from the respawned rank {victim}"));
        };
        if rejoined.rejoins == 0 {
            return Err(format!("respawned rank {victim} never rejoined"));
        }
        if survivors.iter().any(|r| r.dead.contains(&victim)) {
            return Err(format!(
                "a survivor still believes rank {victim} is dead after the rejoin"
            ));
        }
    } else if !survivors.iter().all(|r| r.dead.contains(&victim)) {
        return Err(format!(
            "not every survivor buried the killed rank {victim}"
        ));
    }
    Ok(())
}

/// Decides whether a `--partition` run proved the quorum contract: the
/// majority side continues degraded and the minority parks then rejoins,
/// or — on a tie — both sides park and resume with no membership change;
/// either way every rank converges to one epoch with no one left buried.
fn assess_partition(spec: &str, ranks: usize, reports: &[ParsedReport]) -> Result<(), String> {
    let (a, b) = parse_partition(spec, ranks).expect("validated in launcher_main");
    let by_rank = |rank: usize| -> Result<&ParsedReport, String> {
        reports
            .iter()
            .find(|r| r.rank == rank)
            .ok_or_else(|| format!("no report from rank {rank}"))
    };
    let epoch0 = by_rank(0)?.epoch;
    for r in reports {
        if r.epoch != epoch0 {
            return Err(format!(
                "rank {} ended on epoch {}, rank 0 on {epoch0} — membership diverged",
                r.rank, r.epoch
            ));
        }
        if !r.dead.is_empty() {
            return Err(format!(
                "rank {} still believes {:?} dead after the heal",
                r.rank, r.dead
            ));
        }
    }
    if a.len() == b.len() {
        // A tie has no majority: both sides must park, and nothing may
        // be buried — the epoch never moves.
        for r in reports {
            if r.parks == 0 {
                return Err(format!("tied rank {} never parked", r.rank));
            }
            if r.rejoins != 0 {
                return Err(format!(
                    "tied rank {} rejoined — something was buried",
                    r.rank
                ));
            }
        }
        if epoch0 != 0 {
            return Err(format!("a tied partition moved the epoch to {epoch0}"));
        }
        return Ok(());
    }
    let (majority, minority) = if a.len() > b.len() { (a, b) } else { (b, a) };
    for &rank in &minority {
        let r = by_rank(rank)?;
        if r.parks == 0 {
            return Err(format!("minority rank {rank} never parked"));
        }
        if r.rejoins == 0 {
            return Err(format!("minority rank {rank} never rejoined"));
        }
    }
    if !majority
        .iter()
        .any(|&rank| by_rank(rank).map(|r| r.restores > 0).unwrap_or(false))
    {
        return Err("no majority rank restored a checkpoint after burying the minority".into());
    }
    Ok(())
}

/// Just enough of a temp-dir guard for the shm session files.
#[cfg(unix)]
mod tempdir {
    pub struct TempDir(pub std::path::PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}
#[cfg(not(unix))]
mod tempdir {
    pub struct TempDir(pub std::path::PathBuf);
}
