//! Regenerates **Fig. 5** (execution timelines of different schedules) and
//! exercises Theorem 1's optimality claim with the brute-force oracle.

use schemoe::prelude::*;
use schemoe_netsim::SimTime;
use schemoe_scheduler::schedules::{brute_force_best, naive_makespan, stage_major};
use schemoe_scheduler::Schedule;

/// Summarizes a schedule: its order, makespan, and a two-stream Gantt.
fn summary(schedule: &Schedule, tasks: &schemoe_scheduler::TaskSet) -> String {
    let trace = schedule.trace(tasks).expect("valid schedule");
    format!("order: {}\n{}", schedule.describe(), trace.gantt(64))
}

fn main() {
    // Task durations chosen so communication ≈ expert compute, the regime
    // where scheduling matters (Fig. 5's illustration).
    let tasks = schemoe_scheduler::TaskSet::uniform(
        2,
        SimTime::from_ms(2.0),
        SimTime::from_ms(10.0),
        SimTime::from_ms(2.5),
        SimTime::from_ms(8.0),
    );

    println!("Fig. 5(a): default order, r=1 — no overlap possible");
    let t1 = schemoe_scheduler::TaskSet::uniform(
        1,
        SimTime::from_ms(4.0),
        SimTime::from_ms(20.0),
        SimTime::from_ms(5.0),
        SimTime::from_ms(16.0),
    );
    println!("  total = makespan = {}", naive_makespan(&t1));
    println!();

    println!("Fig. 5(b): stage-major pipelining, r=2");
    print!("{}", indent(&summary(&stage_major(2), &tasks)));
    println!();

    println!("Fig. 5(c): OptSche (Theorem 1), r=2");
    print!("{}", indent(&summary(&optsche(2), &tasks)));
    println!();

    let (best, best_m) = brute_force_best(&tasks);
    let opt_m = optsche(2).makespan(&tasks).expect("valid");
    println!("Theorem 1 check (exhaustive over all 252 valid r=2 orders):");
    println!("  brute-force best: {} ({})", best_m, best.describe());
    println!("  OptSche:          {opt_m}");
    assert!(
        (opt_m.as_secs() - best_m.as_secs()).abs() < 1e-12,
        "OptSche must match the exhaustive optimum"
    );
    println!("  OptSche matches the exhaustive optimum.");
    println!();

    println!("Hidden time (Eq. 11) by schedule:");
    for (name, s) in [("stage-major", stage_major(2)), ("OptSche", optsche(2))] {
        println!(
            "  {name:>12}: hidden {} of {} total",
            s.hidden_time(&tasks).expect("valid"),
            tasks.total()
        );
    }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
