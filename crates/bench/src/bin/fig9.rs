//! Regenerates **Fig. 9**: A2A algorithm comparison over message sizes.
//!
//! Three panels: small [1 KB, 1 MB], median [1 MB, 200 MB], large
//! [200 MB, 2 GB] total input per GPU on the 8×4 testbed. Paper shapes:
//! Pipe-A2A ≥ everything everywhere; ≈3–5% over NCCL/2DH at small and
//! median; ≈1.4× over NCCL and ≈2× over 2DH at large; 1DH slow at small
//! and median and OOM at large.

use schemoe::prelude::*;
use schemoe_collectives::{a2a_fits_memory, a2a_time};

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let algs: Vec<(&str, Box<dyn AllToAll>)> = vec![
        ("NCCL-A2A", Box::new(NcclA2A)),
        ("1DH-A2A", Box::new(OneDimHierA2A)),
        ("2DH-A2A", Box::new(TwoDimHierA2A)),
        ("Pipe-A2A", Box::new(PipeA2A::new())),
    ];

    let panels: [(&str, Vec<u64>); 3] = [
        (
            "(a) small [1K, 1M]",
            vec![1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20],
        ),
        (
            "(b) median [1M, 200M]",
            vec![1 << 20, 4 << 20, 16 << 20, 50 << 20, 100 << 20, 200 << 20],
        ),
        (
            "(c) large [200M, 2G]",
            vec![
                200 << 20,
                400 << 20,
                800 << 20,
                1200 << 20,
                1600 << 20,
                2000 << 20,
            ],
        ),
    ];

    for (title, sizes) in &panels {
        println!("Fig. 9 {title} — A2A time (ms) vs message size");
        print!("{:>10}", "size");
        for (name, _) in &algs {
            print!(" {name:>10}");
        }
        println!("  | Pipe vs NCCL | Pipe vs 2DH");
        for &s in sizes {
            print!("{:>10}", schemoe_bench::fmt_bytes(s));
            let mut times = Vec::new();
            for (_, alg) in &algs {
                // The reserve models the benchmark's own tensors resident
                // alongside the collective.
                if !a2a_fits_memory(alg.as_ref(), &topo, &hw, s, 1 << 30) {
                    print!(" {:>10}", "OOM");
                    times.push(f64::NAN);
                    continue;
                }
                let t = a2a_time(alg.as_ref(), &topo, &hw, s)
                    .expect("valid plan")
                    .as_ms();
                print!(" {t:>10.2}");
                times.push(t);
            }
            let vs = |i: usize| {
                if times[i].is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.2}x", times[i] / times[3])
                }
            };
            println!("  | {:>12} | {:>11}", vs(0), vs(2));
        }
        println!();
    }

    println!("Eq. 18 analytical max speedup of Pipe-A2A over sequential execution:");
    for &s in &[1u64 << 20, 200 << 20, 2000 << 20] {
        println!(
            "  {:>8}: {:.2}x (paper testbed), {:.2}x (NVLink what-if)",
            schemoe_bench::fmt_bytes(s),
            schemoe_collectives::analysis::max_speedup(&topo, &hw, s),
            schemoe_collectives::analysis::max_speedup(&topo, &HardwareProfile::nvlink_dgx(), s),
        );
    }
}
