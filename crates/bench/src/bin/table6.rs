//! Regenerates **Table 6**: convergence under different A2A compressors.
//!
//! The paper trains Transformer-MoE on wmt14_en_fr (BLEU ↑) and
//! GPT2-Tiny-MoE on wikitext-103 (perplexity ↓) for a fixed iteration
//! budget per method. Those corpora are unavailable offline; per the
//! substitution rule this harness trains *real* models on learnable
//! synthetic tasks with the same metric structure:
//!
//! * regime-switching Markov language modelling → validation perplexity
//!   (the GPT2-Tiny-MoE column), and
//! * deterministic copy-translation → target-token accuracy as a BLEU
//!   proxy (the Transformer-MoE column).
//!
//! Expected ordering (paper): MoE beats Base; FP16 ≈ ZFP ≈ uncompressed
//! MoE; INT8 clearly degrades.
//!
//! Every variant trains the same number of iterations from the same seeds;
//! only the codec on the MoE dispatch/combine path differs. Runtime is a
//! few minutes in release mode.

use schemoe::prelude::*;
use schemoe_models::{CopyTranslation, RegimeMarkov};
use schemoe_tensor::rng::seeded;

fn build_lm(cfg: &LmConfig, codec: Option<&str>, seed: u64) -> TinyMoeLm {
    let mut lm = TinyMoeLm::new(cfg.clone(), &mut seeded(seed));
    match codec {
        Some("fp16") => lm.set_compressor(|| Box::new(Fp16Compressor)),
        Some("int8") => lm.set_compressor(|| Box::new(Int8Compressor)),
        Some("zfp") => lm.set_compressor(|| Box::new(ZfpCompressor::default())),
        _ => {}
    }
    lm
}

fn main() {
    let steps = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250usize);
    let seeds: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // Task 1: regime-Markov LM (the perplexity column).
    let markov = RegimeMarkov::new(24, 4, &mut seeded(7));
    let lm_cfg = LmConfig {
        vocab: 24,
        model_dim: 32,
        hidden_dim: 48,
        heads: 2,
        seq_len: 16,
        layers: 2,
        experts: None,
        k: 2,
        capacity_factor: 2.0,
    };
    // Task 2: copy-translation (the BLEU-proxy column).
    let translation = CopyTranslation::new(40, 12, &mut seeded(8));
    let tr_cfg = LmConfig {
        vocab: translation.total_vocab(),
        model_dim: 32,
        hidden_dim: 48,
        heads: 2,
        seq_len: translation.seq_len(),
        layers: 2,
        experts: None,
        k: 2,
        capacity_factor: 2.0,
    };
    let trainer = Trainer {
        steps,
        ..Default::default()
    };

    let methods: [(&str, bool, Option<&str>); 5] = [
        ("Base", false, None),
        ("MoE", true, None),
        ("MoE w/FP16", true, Some("fp16")),
        ("MoE w/INT8", true, Some("int8")),
        ("MoE w/ZFP", true, Some("zfp")),
    ];

    println!("Table 6: convergence under compression ({steps} steps per method)");
    println!(
        "{:>12} {:>22} {:>18} {:>12}",
        "Method", "Markov LM (perplexity)", "translation (ppl)", "BLEU proxy"
    );
    println!(
        "{:>12} {:>22} {:>18} {:>12}",
        "", "lower is better", "lower is better", "higher"
    );
    let mut rows = Vec::new();
    for (name, moe, codec) in methods {
        // Average over independent model seeds: single-seed orderings on a
        // toy task are noise-dominated.
        let mut ppl1 = 0.0f32;
        let mut ppl2 = 0.0f32;
        let mut acc = 0.0f32;
        for seed in 0..seeds {
            let mk = |cfg: &LmConfig| {
                let cfg = if moe {
                    cfg.clone().with_experts(8)
                } else {
                    cfg.clone()
                };
                build_lm(&cfg, codec, 2024 + seed * 7919)
            };
            let mut lm1 = mk(&lm_cfg);
            let r1 = trainer.run_markov(&mut lm1, &markov);
            let mut lm2 = mk(&tr_cfg);
            let r2 = trainer.run_translation(&mut lm2, &translation);
            ppl1 += r1.val_perplexity;
            ppl2 += r2.val_perplexity;
            acc += r2.bleu_proxy.expect("translation task reports the proxy");
        }
        let n = seeds as f32;
        println!(
            "{:>12} {:>22.2} {:>18.2} {:>12.3}",
            name,
            ppl1 / n,
            ppl2 / n,
            acc / n
        );
        rows.push((name, ppl1 / n, acc / n));
    }

    println!();
    println!(
        "Reference points: uniform perplexity = 24.0; Markov entropy floor ≈ {:.1};",
        markov.entropy_floor().exp()
    );
    println!("copy-translation chance accuracy = {:.3}.", 1.0 / 40.0);
    println!();
    println!("Paper shape: MoE > Base reproduces. At this toy scale the codec");
    println!("convergence gaps (paper: INT8 +3.3% perplexity) are below seed noise —");
    println!("the quantization-error *mechanism* behind the paper's Table 6 is");
    println!("demonstrated directly below (see EXPERIMENTS.md for discussion).");
    println!();
    mechanism_demo();
}

/// The causal mechanism behind the paper's INT8 degradation: per-tensor
/// scaling collapses under activation outliers, while FP16 (per-value) and
/// the ZFP-style codec (per-block) keep local precision. Large language
/// models develop rare ~20-30x activation outliers; this synthesizes that
/// structure and measures each codec's reconstruction error on the
/// non-outlier mass.
fn mechanism_demo() {
    use schemoe_tensor::rng;
    let mut r = seeded(99);
    // 1% outliers at 30x on top of unit-scale activations.
    let mut acts = rng::normal(&[4096], 0.0, 1.0, &mut r).into_vec();
    for i in (0..acts.len()).step_by(100) {
        acts[i] *= 30.0;
    }
    println!("Mechanism: RMSE on non-outlier activations after codec round-trip");
    println!("(unit-scale values with 1% synthetic 30x outliers, as in large LMs):");
    let codecs: Vec<Box<dyn Compressor>> = vec![
        Box::new(Fp16Compressor),
        Box::new(Int8Compressor),
        Box::new(ZfpCompressor::default()),
    ];
    for codec in &codecs {
        let wire = codec.compress(&acts);
        let back = codec.decompress(&wire, acts.len()).expect("own output");
        let mut se = 0.0f64;
        let mut n = 0usize;
        for (i, (a, b)) in acts.iter().zip(back.iter()).enumerate() {
            if i % 100 != 0 {
                se += ((a - b) as f64).powi(2);
                n += 1;
            }
        }
        println!("  {:>6}: rmse {:.5}", codec.name(), (se / n as f64).sqrt());
    }
    println!("  int8's error (one per-tensor scale, stretched by every outlier) is");
    println!("  ~1000x fp16's and several times zfp's, whose per-block exponents");
    println!("  confine the damage to the outlier blocks — exactly why the paper");
    println!("  finds INT8 unsafe for MoE dispatch at 4x while ZFP at 4x is not.");
}
