//! Regenerates **Table 7**: CT-MoE-x step time under three systems.
//!
//! Paper values (ms, mean ± std over 3 runs):
//!
//! | system | x=12 | x=16 | x=20 | x=24 |
//! |---|---|---|---|---|
//! | Tutel | 497±9 | 623±2 | 769±3 | 864±3 |
//! | Faster-MoE | 506±7 | 640±8 | 845±10 | 1003±16 |
//! | ScheMoE | 454±4 | 552±1 | 658±1 | 774±8 |
//!
//! Note: per the ablation analysis (EXPERIMENTS.md), Table 7's ScheMoE is
//! run with scheduling + Pipe-A2A (no ZFP); compression is isolated in
//! Table 10.

use schemoe::prelude::*;
use schemoe_bench::step_ms_3runs;

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let systems: Vec<(&str, Box<dyn MoeSystem>)> = vec![
        ("Tutel", Box::new(TutelEmu::new())),
        ("Faster-MoE", Box::new(FasterMoeEmu::new())),
        ("ScheMoE", Box::new(ScheMoeSystem::without_compression())),
    ];

    println!("Table 7: step time (mean±std ms) in CT-MoE-x (simulated, 3 jittered runs)");
    print!("{:>12}", "System");
    for x in [12, 16, 20, 24] {
        print!(" {:>13}", format!("x={x}"));
    }
    println!();
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, sys) in &systems {
        print!("{name:>12}");
        let mut means = Vec::new();
        for x in [12usize, 16, 20, 24] {
            let model = MoeModelConfig::ct_moe(x);
            match step_ms_3runs(sys.as_ref(), &model, &topo, &hw) {
                Some((mean, std)) => {
                    print!(" {:>13}", format!("{mean:.0}±{std:.0}"));
                    means.push(mean);
                }
                None => print!(" {:>13}", "OOM"),
            }
        }
        println!();
        rows.push((name.to_string(), means));
    }

    println!();
    println!("Speedups over Tutel (paper: ScheMoE 1.09-1.17x, Faster-MoE slower than Tutel):");
    let tutel = rows[0].1.clone();
    for (name, means) in &rows[1..] {
        let sp: Vec<String> = tutel
            .iter()
            .zip(means.iter())
            .map(|(t, m)| format!("{:.2}x", t / m))
            .collect();
        println!("  {name:>12}: {}", sp.join("  "));
    }
}
