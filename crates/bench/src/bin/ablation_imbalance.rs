//! Ablation: dynamic routing imbalance and its straggler cost.
//!
//! §2.1's "dynamic workloads": the gating function may route wildly
//! unequal token counts to experts, and every rank's A2A then waits for
//! the hottest destination. This study quantifies the straggler factor
//! across skew levels and shows the capacity factor (Eq. 1) restoring it —
//! the systems-level reason every capacity-bounded system survives
//! BERT-Large-MoE while Faster-MoE's uncapped buffers do not (Table 8).

use schemoe::prelude::*;
use schemoe_collectives::{straggler_factor, TrafficMatrix};
use schemoe_tensor::rng::seeded;

fn main() {
    let topo = Topology::paper_testbed();
    let hw = HardwareProfile::paper_testbed();
    let total = 64_000_000u64; // per-rank A2A payload

    println!("Straggler factor of a 64 MB/GPU all-to-all under routing skew");
    println!("(hot expert receives `share` of every rank's traffic)\n");
    println!(
        "{:>8} {:>11} {:>12} {:>14} {:>14}",
        "share", "imbalance", "straggler", "capped f=1.2", "capped f=2.0"
    );
    for share in [0.0f64, 0.1, 0.25, 0.5, 0.75] {
        let m = TrafficMatrix::hot_expert(32, total, 7, share);
        let raw = straggler_factor(&m, &topo, &hw);
        let capped_12 = straggler_factor(&m.with_capacity((1.2 * total as f64) as u64), &topo, &hw);
        let capped_20 = straggler_factor(&m.with_capacity(2 * total), &topo, &hw);
        println!(
            "{:>8.2} {:>10.2}x {:>11.2}x {:>13.2}x {:>13.2}x",
            share,
            m.imbalance(),
            raw,
            capped_12,
            capped_20
        );
    }

    println!();
    println!("Random heavy-tailed routing (power-law weights), 5 draws per skew:");
    println!(
        "{:>8} {:>14} {:>14}",
        "power", "mean imbalance", "mean straggler"
    );
    for power in [1.0f64, 3.0, 6.0] {
        let mut imb = 0.0;
        let mut strag = 0.0;
        for seed in 0..5u64 {
            let m = TrafficMatrix::random_skewed(32, total, power, &mut seeded(40 + seed));
            imb += m.imbalance();
            strag += straggler_factor(&m, &topo, &hw);
        }
        println!("{:>8.1} {:>13.2}x {:>13.2}x", power, imb / 5.0, strag / 5.0);
    }

    println!();
    println!(
        "The capacity factor trades dropped tokens for a hard straggler bound —\n\
         f=1.2 keeps the collective within ~1.2x of balanced even under extreme\n\
         skew, which is why Eq. 1 exists and why the uncapped alternative needs\n\
         worst-case buffers (Table 8's OOM)."
    );
}
