//! Shared utilities for the benchmark harness.
//!
//! One binary per paper artifact lives in `src/bin/`:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 — A2A time vs step time on Tutel |
//! | `table6` | Table 6 — convergence under compression |
//! | `table7` | Table 7 — CT-MoE-x step times, three systems |
//! | `table8` | Table 8 — BERT-Large-MoE end-to-end |
//! | `table10` | Table 10 — component ablation |
//! | `fig5` | Fig. 5 — schedule timelines + Theorem 1 check |
//! | `fig8` | Fig. 8 — 675-config speedup-over-Tutel histogram |
//! | `fig9` | Fig. 9 — A2A algorithm comparison across sizes |
//! | `calibrate` | model-vs-paper anchor summary |
//! | `ablation_degree` | partition degree vs layer shape + adaptive choice |
//! | `ablation_hardware` | Eq. 18 tent curve over intra/inter balance |
//! | `ablation_compression` | ZFP break-even across hardware profiles |
//! | `ablation_routing` | routing strategies vs load balance |
//! | `ablation_imbalance` | straggler factor vs routing skew (Eq. 1) |
//! | `scaling` | weak scaling 4 → 128 GPUs |
//!
//! Criterion micro-benchmarks of the hot paths live in `benches/`.

use schemoe::prelude::*;
use schemoe_netsim::cost::LinkModel;
use schemoe_tensor::rng::seeded;

use rand::Rng;

/// Mean and sample standard deviation of a series.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// A copy of `hw` with every link bandwidth perturbed by `N(1, sigma)`.
///
/// The paper reports mean ± std over three real runs; the simulator is
/// deterministic, so run-to-run variance is modelled as small multiplicative
/// noise on the link rates (network jitter is where real testbed variance
/// comes from).
pub fn jittered(hw: &HardwareProfile, sigma: f64, seed: u64) -> HardwareProfile {
    let mut rng = seeded(seed);
    let mut bump = |l: LinkModel| {
        let noise: f64 = 1.0 + sigma * (rng.gen_range(0.0f64..1.0) * 2.0 - 1.0);
        LinkModel::new(l.latency_s, l.bandwidth_bps * noise)
    };
    let mut out = hw.clone();
    out.intra_link = bump(out.intra_link);
    out.intra_link_exclusive = bump(out.intra_link_exclusive);
    out.inter_link = bump(out.inter_link);
    // Framework overhead also varies run to run (driver, Python, allocator).
    let noise: f64 = 1.0 + sigma * (rng.gen_range(0.0f64..1.0) * 2.0 - 1.0);
    out.layer_overhead = out.layer_overhead * noise;
    out
}

/// Runs a step-time estimate under three jittered profiles and returns
/// `(mean_ms, std_ms)`, or `None` when the system goes out of memory.
pub fn step_ms_3runs(
    system: &dyn MoeSystem,
    model: &MoeModelConfig,
    topo: &Topology,
    hw: &HardwareProfile,
) -> Option<(f64, f64)> {
    let mut samples = Vec::with_capacity(3);
    for run in 0..3u64 {
        let hw_run = jittered(hw, 0.01, 1234 + run);
        match model_step_time(system, model, topo, &hw_run) {
            Ok(est) => samples.push(est.step.as_ms()),
            Err(StepTimeError::OutOfMemory { .. }) => return None,
        }
    }
    Some(mean_std(&samples))
}

/// Formats bytes with a binary-ish unit for table output.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.1}G", b as f64 / 1e9)
    } else if b >= 1_000_000 {
        format!("{:.0}M", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.0}K", b as f64 / 1e3)
    } else {
        format!("{b}B")
    }
}

/// The Table 4 sweep grid: every (B, f, L, H, M) combination.
pub fn table4_grid() -> Vec<LayerShape> {
    let mut shapes = Vec::new();
    for &b in &[2usize, 4, 8] {
        for &f in &[1.0f64, 1.1, 1.2] {
            for &l in &[512usize, 1024, 2048] {
                for &h in &[512usize, 1024, 2048, 4096, 8192] {
                    for &m in &[512usize, 1024, 2048, 4096, 8192] {
                        shapes.push(LayerShape {
                            tokens_per_gpu: b * l,
                            model_dim: m,
                            hidden_dim: h,
                            experts: 32,
                            k: 2,
                            capacity_factor: f,
                        });
                    }
                }
            }
        }
    }
    shapes
}

/// Whether a sweep configuration fits in device memory (expert state +
/// activations + capacity-padded A2A buffers), mirroring the paper's OOM
/// exclusion of sweep cases (§6.1). The 3·3·3·5·5 grid is 675 cases and
/// §6.3 reports 675 valid measurements, so on the paper's own budget every
/// grid point fits a single MoE-layer microbenchmark; the check still
/// guards the sweep against profile variants with less memory.
pub fn sweep_config_fits(shape: &LayerShape, topo: &Topology, hw: &HardwareProfile) -> bool {
    let mut budget = MemoryBudget::new(hw.gpu_mem_bytes);
    budget.add("expert state", shape.expert_state_bytes(topo.world_size()));
    budget.add(
        "activations",
        4 * (shape.tokens_per_gpu * shape.model_dim * 4) as u64,
    );
    budget.add("a2a buffers", 2 * shape.a2a_bytes());
    budget.add("framework reserve", 1 << 30);
    budget.fits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 6.0]);
        assert!((m - 4.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]).1, 0.0);
    }

    #[test]
    fn grid_has_675_configs() {
        assert_eq!(table4_grid().len(), 3 * 3 * 3 * 5 * 5);
    }

    #[test]
    fn jitter_changes_rates_slightly() {
        let hw = HardwareProfile::paper_testbed();
        let j = jittered(&hw, 0.01, 7);
        let a = hw.inter_link.bandwidth_bps;
        let b = j.inter_link.bandwidth_bps;
        assert!(a != b);
        assert!((a - b).abs() / a < 0.011);
    }

    #[test]
    fn sweep_fits_the_paper_testbed_but_not_smaller_gpus() {
        // §6.3 measures all 675 grid cases, including the Table 10 layer,
        // so everything must fit an 11 GB device...
        let topo = Topology::paper_testbed();
        let hw = HardwareProfile::paper_testbed();
        for shape in table4_grid() {
            assert!(
                sweep_config_fits(&shape, &topo, &hw),
                "{shape:?} flagged OOM"
            );
        }
        // ...while a hypothetical 6 GB device would drop the big corners.
        let mut small_hw = hw.clone();
        small_hw.gpu_mem_bytes = 6 * 1024 * 1024 * 1024;
        let excluded = table4_grid()
            .iter()
            .filter(|s| !sweep_config_fits(s, &topo, &small_hw))
            .count();
        assert!(excluded > 0, "memory guard never triggers");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2_000), "2K");
        assert_eq!(fmt_bytes(3_500_000), "4M");
        assert_eq!(fmt_bytes(2_500_000_000), "2.5G");
    }
}
