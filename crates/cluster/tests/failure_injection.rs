//! Failure-injection tests: how the fabric behaves when ranks misbehave.
//!
//! A production fabric must fail loudly, not hang: a peer that exits early
//! must surface as [`FabricError::Disconnected`] to anyone still waiting
//! on it, and messages sent before an orderly exit must still be
//! deliverable (channels drain before they error). A peer that stays
//! *alive but silent* — the failure mode `Disconnected` cannot see — must
//! surface as [`FabricError::Timeout`] via `recv_timeout` rather than
//! wedging the receiver forever.

use std::time::{Duration, Instant};

use bytes::Bytes;
use schemoe_cluster::{Fabric, FabricError, Topology};

/// A rank that exits without sending leaves its peers with a clean
/// `Disconnected` error instead of a hang.
#[test]
fn early_exit_surfaces_as_disconnected() {
    let topo = Topology::new(1, 2);
    let results = Fabric::run(topo, |mut h| {
        if h.rank() == 0 {
            // Exit immediately: rank 1's recv must fail, not block forever.
            Ok(Bytes::new())
        } else {
            h.recv(0, 42)
        }
    });
    assert!(results[0].is_ok());
    assert_eq!(
        results[1].as_ref().unwrap_err(),
        &FabricError::Disconnected { peer: 0 }
    );
}

/// Messages sent before an orderly exit are still delivered: channel
/// buffers drain before the disconnect error appears.
#[test]
fn buffered_messages_survive_sender_exit() {
    let topo = Topology::new(1, 2);
    let results = Fabric::run(topo, |mut h| {
        if h.rank() == 0 {
            h.send(1, 7, Bytes::from_static(b"parting gift")).unwrap();
            Vec::new()
        } else {
            let first = h.recv(0, 7).unwrap();
            // The second recv finds an empty, closed channel.
            let second = h.recv(0, 7);
            vec![Ok(first), second]
        }
    });
    assert_eq!(results[1][0].as_ref().unwrap().as_ref(), b"parting gift");
    assert_eq!(
        results[1][1].as_ref().unwrap_err(),
        &FabricError::Disconnected { peer: 0 }
    );
}

/// Sending to a rank that already exited does not error (unbounded
/// channels absorb it) — matching MPI's eager-send semantics — while
/// sending to a nonexistent rank errors immediately.
#[test]
fn send_semantics_under_failure() {
    let topo = Topology::new(1, 3);
    let results = Fabric::run(topo, |h| {
        match h.rank() {
            0 => vec![],
            1 => {
                // Give rank 0 time to exit, then send to it anyway.
                std::thread::sleep(std::time::Duration::from_millis(50));
                vec![h.send(0, 1, Bytes::from_static(b"late"))]
            }
            _ => vec![h.send(99, 1, Bytes::new())],
        }
    });
    // The late send may succeed or report disconnection depending on drop
    // timing, but must not panic or hang; the invalid-rank send must error.
    if let Some(r) = results[1].first() {
        assert!(
            r.is_ok() || matches!(r, Err(FabricError::Disconnected { .. })),
            "unexpected send result: {r:?}"
        );
    }
    assert!(matches!(
        results[2].first().unwrap(),
        Err(FabricError::InvalidRank { .. })
    ));
}

/// A tag mismatch never steals another tag's message: even when the peer
/// dies after sending, parked messages for other tags remain retrievable.
#[test]
fn tag_isolation_survives_peer_death() {
    let topo = Topology::new(1, 2);
    let results = Fabric::run(topo, |mut h| {
        if h.rank() == 0 {
            h.send(1, 5, Bytes::from_static(b"five")).unwrap();
            h.send(1, 9, Bytes::from_static(b"nine")).unwrap();
            Vec::new()
        } else {
            // Ask for tag 9 first: tag 5 gets parked; then retrieve it
            // after the sender is gone.
            let nine = h.recv(0, 9).unwrap();
            let five = h.recv(0, 5).unwrap();
            vec![nine, five]
        }
    });
    assert_eq!(results[1][0].as_ref(), b"nine");
    assert_eq!(results[1][1].as_ref(), b"five");
}

/// A rank that never sends while staying alive must produce `Timeout`
/// within the deadline — not a hang, and not `Disconnected`.
#[test]
fn silent_live_rank_surfaces_timeout() {
    let topo = Topology::new(1, 2);
    let results = Fabric::run(topo, |mut h| {
        if h.rank() == 0 {
            // The faulty rank: alive (parked on the barrier) but silent on
            // the tag rank 1 is waiting for.
            h.barrier();
            Ok(Bytes::new())
        } else {
            let started = Instant::now();
            let r = h.recv_timeout(0, 42, Duration::from_millis(100));
            let waited = started.elapsed();
            // The receive must give up promptly — well before the minutes
            // a hung test would take to be killed externally.
            assert!(waited >= Duration::from_millis(100));
            assert!(waited < Duration::from_secs(10));
            h.barrier();
            r
        }
    });
    match &results[1] {
        Err(FabricError::Timeout { peer, tag, waited }) => {
            assert_eq!(*peer, 0);
            assert_eq!(*tag, 42);
            assert!(*waited >= Duration::from_millis(100));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

/// `recv_timeout` distinguishes a dead peer from a silent one: channel
/// endpoints dropped means `Disconnected`, never `Timeout`.
#[test]
fn recv_timeout_reports_crashed_rank_as_disconnected() {
    let topo = Topology::new(1, 2);
    let results = Fabric::run(topo, |mut h| {
        if h.rank() == 0 {
            // Exit immediately: all of rank 0's channel endpoints drop.
            None
        } else {
            Some(h.recv_timeout(0, 7, Duration::from_secs(30)))
        }
    });
    assert_eq!(
        results[1].clone().expect("rank 1 result"),
        Err(FabricError::Disconnected { peer: 0 })
    );
}

/// Messages that arrive before the deadline are delivered, and unrelated
/// tags arriving meanwhile are parked, not lost.
#[test]
fn late_but_in_deadline_message_is_delivered() {
    let topo = Topology::new(1, 2);
    let results = Fabric::run(topo, |mut h| {
        if h.rank() == 0 {
            // An unrelated tag first, then the awaited one after a delay.
            h.send(1, 99, Bytes::from_static(b"noise")).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            h.send(1, 5, Bytes::from_static(b"payload")).unwrap();
            Vec::new()
        } else {
            let wanted = h.recv_timeout(0, 5, Duration::from_secs(5)).unwrap();
            // The parked noise tag is still retrievable afterwards.
            let noise = h.recv_timeout(0, 99, Duration::from_secs(5)).unwrap();
            vec![wanted, noise]
        }
    });
    assert_eq!(results[1][0].as_ref(), b"payload");
    assert_eq!(results[1][1].as_ref(), b"noise");
}

/// After a timeout the handle stays usable: a later send on the same
/// `(peer, tag)` is received normally.
#[test]
fn handle_recovers_after_timeout() {
    let topo = Topology::new(1, 2);
    let results = Fabric::run(topo, |mut h| {
        if h.rank() == 0 {
            // Let rank 1 time out once, then supply the message.
            h.barrier();
            h.send(1, 3, Bytes::from_static(b"second-try")).unwrap();
            Bytes::new()
        } else {
            let first = h.recv_timeout(0, 3, Duration::from_millis(50));
            assert!(matches!(first, Err(FabricError::Timeout { .. })));
            h.barrier();
            h.recv_timeout(0, 3, Duration::from_secs(5)).unwrap()
        }
    });
    assert_eq!(results[1].as_ref(), b"second-try");
}

mod fault_plan_purity {
    use std::time::Duration;

    use proptest::prelude::*;
    use schemoe_cluster::{FaultDecision, FaultPlan};

    /// One observation of the plan: every link decision for a small world
    /// plus the liveness verdict at every attempt count, tagged by key so
    /// order of observation cannot matter.
    type Observation = Vec<(u64, u64, u64, FaultDecision, bool)>;

    fn observe(plan: &FaultPlan, keys: &[(usize, usize, u64)]) -> Observation {
        keys.iter()
            .map(|&(src, dst, idx)| {
                (
                    src as u64,
                    dst as u64,
                    idx,
                    plan.decide(src, dst, idx),
                    plan.rank_alive(src, idx),
                )
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every fault decision — drop, delay, and corrupt via `decide`,
        /// kill and revive via `rank_alive` — is a pure function of
        /// `(seed, src, dst, link_idx)`. Two threads replaying independent
        /// clones of the plan under opposite traversal orders (a forced
        /// difference in thread interleaving) must observe bit-identical
        /// sequences, and both must match a single-threaded replay built
        /// fresh from the same parameters.
        #[test]
        fn decisions_are_pure_across_thread_interleavings(
            seed in 0u64..1_000_000,
            drop_p in 0.0f64..0.5,
            corrupt_p in 0.0f64..0.4,
            delay_p in 0.0f64..0.4,
            kill in 0u64..48,
            dead_window in 0u64..32,
        ) {
            let build = || {
                FaultPlan::seeded(seed)
                    .with_drop_prob(drop_p)
                    .with_corrupt_prob(corrupt_p)
                    .with_delay(delay_p, Duration::from_micros(10))
                    .kill_after(2, kill)
                    .revive_after(2, kill + dead_window)
            };
            let keys: Vec<(usize, usize, u64)> = (0..4usize)
                .flat_map(|s| (0..4usize).map(move |d| (s, d)))
                .flat_map(|(s, d)| (0..64u64).map(move |i| (s, d, i)))
                .collect();

            // Thread A walks the key space forward, thread B backward; the
            // reversal guarantees the two threads hit every key at
            // different points of their schedules.
            let forward = keys.clone();
            let mut backward = keys.clone();
            backward.reverse();
            let (obs_a, obs_b) = std::thread::scope(|scope| {
                let a = scope.spawn(|| observe(&build(), &forward));
                let b = scope.spawn(|| {
                    let mut obs = observe(&build(), &backward);
                    obs.reverse();
                    obs
                });
                (a.join().expect("thread A"), b.join().expect("thread B"))
            });
            prop_assert_eq!(&obs_a, &obs_b);
            prop_assert_eq!(&obs_a, &observe(&build(), &keys));
        }
    }
}
