//! Loopback conformance suite for the [`Transport`] trait.
//!
//! Every property here runs against all three backends from one
//! parameterized harness: the channel reference, the shared-memory ring
//! backend, and the TCP backend. The properties are the semantic floor a
//! backend must clear before the fault-tolerance protocols can trust it:
//! FIFO per `(src, dst, tag)`, out-of-order parking across tags, stale
//! membership-epoch rejection, corrupt-frame surfacing, deadline expiry
//! on silent-but-live peers, typed disconnection on peer exit, and
//! barrier synchronization.
//!
//! [`Transport`]: schemoe_cluster::Transport

use std::time::{Duration, Instant};

use bytes::Bytes;
use schemoe_cluster::{ChaosPlan, Fabric, FabricError, FaultPlan, Topology, TransportKind};

/// Backends under test. The shm backend only exists on unix hosts.
fn kinds() -> Vec<TransportKind> {
    if cfg!(unix) {
        TransportKind::ALL.to_vec()
    } else {
        vec![TransportKind::Channel, TransportKind::Tcp]
    }
}

/// Per-(src, dst, tag) FIFO: interleaved sends on two tags arrive in
/// send order within each tag, on every link of a 4-rank mesh.
#[test]
fn ordering_is_fifo_per_source_and_tag() {
    for kind in kinds() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run_on(kind, topo, |mut h| {
            let p = h.world_size();
            for dst in 0..p {
                for i in 0u8..8 {
                    let tag = u64::from(i % 2);
                    h.send(dst, tag, Bytes::copy_from_slice(&[i])).unwrap();
                }
            }
            let mut got = Vec::new();
            for src in 0..p {
                for tag in 0..2u64 {
                    for _ in 0..4 {
                        got.push(h.recv(src, tag).unwrap()[0]);
                    }
                }
            }
            got
        });
        for (rank, got) in results.iter().enumerate() {
            // From every source: evens in order on tag 0, odds on tag 1.
            let want: [u8; 8] = [0, 2, 4, 6, 1, 3, 5, 7];
            for (src_block, chunk) in got.chunks(8).enumerate() {
                assert_eq!(
                    chunk,
                    &want[..],
                    "{}: rank {rank} saw wrong order from source {src_block}",
                    kind.label()
                );
            }
        }
    }
}

/// Mismatched tags arriving mid-wait are parked, not lost or reordered.
#[test]
fn mismatched_tags_park_until_requested() {
    for kind in kinds() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run_on(kind, topo, |mut h| {
            if h.rank() == 0 {
                h.send(1, 9, Bytes::from_static(b"later")).unwrap();
                h.send(1, 8, Bytes::from_static(b"now")).unwrap();
                Vec::new()
            } else {
                let now = h.recv_timeout(0, 8, Duration::from_secs(10)).unwrap();
                let later = h.recv_timeout(0, 9, Duration::from_secs(10)).unwrap();
                vec![now, later]
            }
        });
        assert_eq!(results[1][0].as_ref(), b"now", "{}", kind.label());
        assert_eq!(results[1][1].as_ref(), b"later", "{}", kind.label());
    }
}

/// A frame stamped with an older membership epoch is rejected as
/// `StaleEpoch`; control-plane frames bypass the check.
#[test]
fn stale_epochs_are_rejected_on_every_backend() {
    for kind in kinds() {
        let plan = FaultPlan::seeded(31);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults_on(kind, topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 1, Bytes::from_static(b"old world")).unwrap();
                h.send_control(1, 2, Bytes::from_static(b"invite")).unwrap();
                h.barrier();
                None
            } else {
                h.advance_epoch();
                let stale = h.recv(0, 1).unwrap_err();
                let control = h.recv(0, 2).unwrap();
                assert_eq!(control.as_ref(), b"invite");
                h.barrier();
                Some(stale)
            }
        });
        assert_eq!(
            results[1],
            Some(FabricError::StaleEpoch {
                peer: 0,
                tag: 1,
                frame_epoch: 0,
                local_epoch: 1,
            }),
            "{}",
            kind.label()
        );
    }
}

/// An injected bit flip surfaces as a typed `Corrupt` error — the CRC
/// frame is validated on every backend, not just the channel one.
#[test]
fn corrupt_frames_surface_typed() {
    for kind in kinds() {
        let plan = FaultPlan::seeded(32).with_corrupt_prob(1.0);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults_on(kind, topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 2, Bytes::from_static(b"tensor row")).unwrap();
                h.barrier();
                None
            } else {
                let err = h.recv(0, 2).unwrap_err();
                h.barrier();
                Some(err)
            }
        });
        assert_eq!(
            results[1],
            Some(FabricError::Corrupt { peer: 0, tag: 2 }),
            "{}",
            kind.label()
        );
    }
}

/// A live-but-silent peer turns into `Timeout` at the deadline — not a
/// hang, and not a premature failure.
#[test]
fn deadlines_expire_on_silent_peers() {
    for kind in kinds() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run_on(kind, topo, |mut h| {
            if h.rank() == 0 {
                h.barrier();
                None
            } else {
                let t0 = Instant::now();
                let err = h.recv_timeout(0, 1, Duration::from_millis(80)).unwrap_err();
                let waited = t0.elapsed();
                h.barrier();
                assert!(
                    waited >= Duration::from_millis(80),
                    "{}: gave up early ({waited:?})",
                    kind.label()
                );
                assert!(
                    waited < Duration::from_secs(10),
                    "{}: deadline overshot ({waited:?})",
                    kind.label()
                );
                Some(err)
            }
        });
        assert!(
            matches!(
                results[1],
                Some(FabricError::Timeout {
                    peer: 0,
                    tag: 1,
                    ..
                })
            ),
            "{}: {:?}",
            kind.label(),
            results[1]
        );
    }
}

/// A peer that exits drains what it already sent, then fails typed with
/// `Disconnected` — never a hang, never lost buffered data.
#[test]
fn peer_exit_drains_then_disconnects() {
    for kind in kinds() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run_on(kind, topo, |mut h| {
            if h.rank() == 0 {
                h.send(1, 7, Bytes::from_static(b"parting gift")).unwrap();
                Vec::new()
            } else {
                let first = h.recv(0, 7);
                let second = h.recv(0, 7);
                vec![first, second]
            }
        });
        assert_eq!(
            results[1][0].as_ref().unwrap().as_ref(),
            b"parting gift",
            "{}",
            kind.label()
        );
        assert_eq!(
            results[1][1],
            Err(FabricError::Disconnected { peer: 0 }),
            "{}",
            kind.label()
        );
    }
}

/// The barrier synchronizes all ranks on every backend.
#[test]
fn barrier_synchronizes_every_backend() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    for kind in kinds() {
        let topo = Topology::new(1, 4);
        let counter = AtomicUsize::new(0);
        Fabric::run_on(kind, topo, |h| {
            counter.fetch_add(1, Ordering::SeqCst);
            h.barrier();
            assert_eq!(counter.load(Ordering::SeqCst), 4, "{}", kind.label());
            h.barrier();
        });
        counter.store(0, Ordering::SeqCst);
    }
}

/// A simulated kill latches, posts on the liveness board, and peers'
/// deadline-sliced receives fail fast with `Disconnected` — the chaos
/// machinery is transport-agnostic.
#[test]
fn kill_latch_fails_peers_fast_on_every_backend() {
    for kind in kinds() {
        let plan = FaultPlan::seeded(33)
            .kill_after(0, 1)
            .with_recv_deadline(Duration::from_secs(5));
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults_on(kind, topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::from_static(b"a")).unwrap();
                let err = h.send(1, 1, Bytes::from_static(b"b")).unwrap_err();
                assert!(h.is_dead());
                h.barrier();
                h.barrier(); // hold the endpoint open while rank 1 probes
                Some(err)
            } else {
                h.recv(0, 0).unwrap();
                h.barrier();
                let t0 = Instant::now();
                let err = h.recv(0, 1).unwrap_err();
                let waited = t0.elapsed();
                h.barrier();
                assert!(
                    waited < Duration::from_millis(1500),
                    "{}: fast-fail took {waited:?}",
                    kind.label()
                );
                Some(err)
            }
        });
        assert_eq!(
            results[1],
            Some(FabricError::Disconnected { peer: 0 }),
            "{}",
            kind.label()
        );
    }
}

/// A link flap fails sends typed for the window, tears the physical
/// stream down at window entry (a TCP peer observes EOF and the
/// recovery re-handshakes with a fresh `HELLO`), and traffic delivered
/// before the flap survives while post-flap traffic resumes cleanly.
#[test]
fn link_flaps_fail_typed_then_recover_on_every_backend() {
    for kind in kinds() {
        // Outbound sends 1 and 2 on the 0 -> 1 link flap; 0 and 3 pass.
        let chaos = ChaosPlan::seeded(41).flap_window(0, 1, 1, 3);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_chaos_on(kind, topo, chaos, None, |mut h| {
            if h.rank() == 0 {
                h.send(1, 5, Bytes::from_static(b"before")).unwrap();
                h.barrier(); // rank 1 drains "before" ahead of the teardown
                let e1 = h.send(1, 5, Bytes::from_static(b"flapped")).unwrap_err();
                let e2 = h.send(1, 5, Bytes::from_static(b"flapped")).unwrap_err();
                h.send(1, 5, Bytes::from_static(b"after")).unwrap();
                h.barrier();
                vec![Ok(e1), Ok(e2)]
            } else {
                let before = h.recv_timeout(0, 5, Duration::from_secs(10));
                h.barrier();
                let after = h.recv_timeout(0, 5, Duration::from_secs(10));
                h.barrier();
                vec![Err(before), Err(after)]
            }
        });
        for err in &results[0] {
            assert_eq!(
                *err,
                Ok(FabricError::Disconnected { peer: 1 }),
                "{}: flapped send must fail typed",
                kind.label()
            );
        }
        let got: Vec<_> = results[1]
            .iter()
            .map(|r| match r {
                Err(Ok(b)) => b.as_ref().to_vec(),
                other => panic!("{}: unexpected recv result {other:?}", kind.label()),
            })
            .collect();
        assert_eq!(
            got,
            vec![b"before".to_vec(), b"after".to_vec()],
            "{}: pre-flap data must survive and post-flap traffic resume",
            kind.label()
        );
    }
}

/// An asymmetric blackhole eats one direction only: the muted sender's
/// sends report success but never arrive (the receiver sees pure
/// silence and a typed `Timeout`), the reverse direction still
/// delivers, and the link recovers when the window closes.
#[test]
fn asymmetric_loss_silences_one_direction_only() {
    for kind in kinds() {
        // The first two outbound sends on 0 -> 1 vanish; 1 -> 0 is clean.
        let chaos = ChaosPlan::seeded(42).blackhole_window(0, 1, 0, 2);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_chaos_on(kind, topo, chaos, None, |mut h| {
            if h.rank() == 0 {
                h.send(1, 6, Bytes::from_static(b"eaten")).unwrap();
                h.send(1, 6, Bytes::from_static(b"eaten too")).unwrap();
                let reply = h.recv_timeout(1, 6, Duration::from_secs(10)).unwrap();
                assert_eq!(
                    reply.as_ref(),
                    b"reply",
                    "{}: the reverse direction must deliver",
                    kind.label()
                );
                h.barrier();
                h.send(1, 6, Bytes::from_static(b"recovered")).unwrap();
                h.barrier();
                None
            } else {
                let silent = h
                    .recv_timeout(0, 6, Duration::from_millis(200))
                    .unwrap_err();
                h.send(0, 6, Bytes::from_static(b"reply")).unwrap();
                h.barrier();
                let healed = h.recv_timeout(0, 6, Duration::from_secs(10)).unwrap();
                assert_eq!(
                    healed.as_ref(),
                    b"recovered",
                    "{}: the link must deliver once the window closes",
                    kind.label()
                );
                h.barrier();
                Some(silent)
            }
        });
        assert!(
            matches!(
                results[1],
                Some(FabricError::Timeout {
                    peer: 0,
                    tag: 6,
                    ..
                })
            ),
            "{}: a blackholed direction must look like silence, got {:?}",
            kind.label(),
            results[1]
        );
    }
}

/// `slow_rank` gray-failure shaping charges wall-clock on **every link
/// touching the marked rank, in both directions**, while links between
/// healthy ranks stay fast — on every backend. Shaping is sender-side,
/// so the slow cost lands in the sender's own `send` call, which is what
/// the placement controller's stall probes measure.
#[test]
fn slow_rank_shapes_only_its_links_on_every_backend() {
    for kind in kinds() {
        // 40 ms latency, no bandwidth ceiling: big enough to dominate any
        // scheduler noise, small enough to keep the suite fast.
        let chaos = ChaosPlan::seeded(44).slow_rank(1, Duration::from_millis(40), 0.0);
        let topo = Topology::new(1, 3);
        let results = Fabric::run_with_chaos_on(kind, topo, chaos, None, |mut h| {
            let me = h.rank();
            let timed_send = |h: &mut schemoe_cluster::RankHandle, dst: usize| {
                let t0 = Instant::now();
                h.send(dst, 3, Bytes::from_static(b"probe")).unwrap();
                t0.elapsed()
            };
            let out = match me {
                0 => {
                    let to_slow = timed_send(&mut h, 1);
                    let to_fast = timed_send(&mut h, 2);
                    vec![to_slow, to_fast]
                }
                1 => {
                    let from_slow = timed_send(&mut h, 2);
                    vec![from_slow]
                }
                _ => Vec::new(),
            };
            // Drain so no backend tears a link down mid-send.
            match me {
                1 => {
                    h.recv_timeout(0, 3, Duration::from_secs(10)).unwrap();
                }
                2 => {
                    h.recv_timeout(0, 3, Duration::from_secs(10)).unwrap();
                    h.recv_timeout(1, 3, Duration::from_secs(10)).unwrap();
                }
                _ => {}
            }
            h.barrier();
            out
        });
        let to_slow = results[0][0];
        let to_fast = results[0][1];
        let from_slow = results[1][0];
        assert!(
            to_slow >= Duration::from_millis(40),
            "{}: send toward the slow rank took {to_slow:?}",
            kind.label()
        );
        assert!(
            from_slow >= Duration::from_millis(40),
            "{}: send from the slow rank took {from_slow:?}",
            kind.label()
        );
        assert!(
            to_fast < Duration::from_millis(40),
            "{}: healthy link was shaped ({to_fast:?})",
            kind.label()
        );
    }
}

/// A refused link fails sends typed while leaving the existing stream
/// intact — the peer observes nothing — and a caller that simply
/// retries gets through once the refusal window closes, the
/// connect-with-retry contract every backend must honour.
#[test]
fn refused_links_recover_through_retry_on_every_backend() {
    for kind in kinds() {
        // The first two outbound sends on 0 -> 1 are refused dials.
        let chaos = ChaosPlan::seeded(43).refuse_window(0, 1, 0, 2);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_chaos_on(kind, topo, chaos, None, |mut h| {
            if h.rank() == 0 {
                let mut refusals = 0usize;
                loop {
                    match h.send(1, 4, Bytes::from_static(b"through")) {
                        Ok(()) => break,
                        Err(FabricError::Disconnected { peer: 1 }) => refusals += 1,
                        Err(other) => {
                            panic!("{}: refusal surfaced as {other:?}", kind.label())
                        }
                    }
                    assert!(refusals <= 8, "{}: retry never got through", kind.label());
                }
                h.barrier();
                refusals
            } else {
                let msg = h.recv_timeout(0, 4, Duration::from_secs(10)).unwrap();
                assert_eq!(
                    msg.as_ref(),
                    b"through",
                    "{}: the retried send must deliver",
                    kind.label()
                );
                h.barrier();
                0
            }
        });
        assert_eq!(
            results[0],
            2,
            "{}: exactly the windowed dials are refused",
            kind.label()
        );
    }
}
