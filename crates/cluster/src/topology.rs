//! Cluster shape and rank arithmetic.

use serde::{Deserialize, Serialize};

/// A global GPU rank in `0..world_size`.
pub type Rank = usize;

/// A homogeneous cluster of `nodes` machines with `gpus_per_node` GPUs each.
///
/// Ranks are assigned node-major: rank `r` lives on node `r / gpus_per_node`
/// with local index `r % gpus_per_node`, matching the paper's testbed layout
/// and typical MPI rank-by-node ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: usize,
    gpus_per_node: usize,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, gpus_per_node: usize) -> Self {
        assert!(nodes > 0, "at least one node required");
        assert!(gpus_per_node > 0, "at least one GPU per node required");
        Topology {
            nodes,
            gpus_per_node,
        }
    }

    /// The paper's evaluation cluster: 8 nodes × 4 GPUs (§6.1, Table 3).
    pub fn paper_testbed() -> Self {
        Topology::new(8, 4)
    }

    /// Number of nodes `N`.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// GPUs per node `M`.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Total GPU count `P = N × M`.
    pub fn world_size(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// The node hosting `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: Rank) -> usize {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        rank / self.gpus_per_node
    }

    /// The within-node index of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn local_rank(&self, rank: Rank) -> usize {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        rank % self.gpus_per_node
    }

    /// Whether two ranks share a node (so their traffic is intra-node).
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The global rank of `(node, local)`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range.
    pub fn rank_of(&self, node: usize, local: usize) -> Rank {
        assert!(node < self.nodes, "node {node} out of range");
        assert!(
            local < self.gpus_per_node,
            "local rank {local} out of range"
        );
        node * self.gpus_per_node + local
    }

    /// All ranks on `node`, in local order.
    pub fn node_ranks(&self, node: usize) -> Vec<Rank> {
        (0..self.gpus_per_node)
            .map(|l| self.rank_of(node, l))
            .collect()
    }

    /// Iterator over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = Rank> {
        0..self.world_size()
    }

    /// Ranks with the same local index on every node (a "rail"): the peer
    /// group that 2D-hierarchical A2A uses for its inter-node phase.
    pub fn rail_ranks(&self, local: usize) -> Vec<Rank> {
        assert!(
            local < self.gpus_per_node,
            "local rank {local} out of range"
        );
        (0..self.nodes).map(|n| self.rank_of(n, local)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_is_8x4() {
        let t = Topology::paper_testbed();
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.gpus_per_node(), 4);
        assert_eq!(t.world_size(), 32);
    }

    #[test]
    fn rank_arithmetic_round_trips() {
        let t = Topology::new(3, 4);
        for r in t.ranks() {
            assert_eq!(t.rank_of(t.node_of(r), t.local_rank(r)), r);
        }
    }

    #[test]
    fn same_node_groups_consecutive_ranks() {
        let t = Topology::new(2, 4);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert!(t.same_node(4, 7));
    }

    #[test]
    fn node_ranks_and_rails_partition_the_world() {
        let t = Topology::new(3, 2);
        assert_eq!(t.node_ranks(1), vec![2, 3]);
        assert_eq!(t.rail_ranks(0), vec![0, 2, 4]);
        assert_eq!(t.rail_ranks(1), vec![1, 3, 5]);
        // Every rank appears in exactly one node group and one rail.
        let mut seen = vec![0usize; t.world_size()];
        for n in 0..t.nodes() {
            for r in t.node_ranks(n) {
                seen[r] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        Topology::new(2, 2).node_of(4);
    }
}
