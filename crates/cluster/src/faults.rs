//! Deterministic, seeded fault injection for the in-process fabric.
//!
//! A [`FaultPlan`] describes *what goes wrong* on a fabric run: per-link
//! message drop/delay/corruption probabilities, per-rank kill points
//! (`kill_after(n_sends)`), and the liveness deadline that turns a lost
//! message into a loud [`FabricError::Timeout`](crate::FabricError::Timeout)
//! instead of a hang.
//!
//! # Determinism
//!
//! Every fault decision is a pure function of
//! `(seed, src, dst, per-link message index, fault kind)` — no RNG state,
//! no wall clock, no thread identity. Two runs of the same program under
//! the same plan therefore inject *bit-identical* fault sequences
//! regardless of thread interleaving: the n-th message from rank `i` to
//! rank `j` is dropped (or delayed, or corrupted) in one run iff it is in
//! every run. Chaos failures reproduce from nothing but the seed.
//!
//! # Wire framing
//!
//! While a plan is installed every payload travels inside a
//! length + epoch + CRC32 frame
//! (`[len u32-le][epoch u32-le][crc32 u32-le][payload]`). The CRC covers
//! the epoch *and* the payload, so a flipped epoch is indistinguishable
//! from a flipped payload bit — both surface as
//! [`FabricError::Corrupt`](crate::FabricError::Corrupt). The epoch is the
//! membership epoch of the sender at send time; receivers reject frames
//! whose epoch is *older* than their own as
//! [`FabricError::StaleEpoch`](crate::FabricError::StaleEpoch), closing
//! the split-brain window where a rank buried by the gossip vote keeps
//! talking as if nothing happened. Frames stamped [`EPOCH_ANY`] bypass the
//! staleness check — that is the stamp control-plane traffic (rejoin
//! invites and acknowledgements) uses, because by definition it crosses an
//! epoch boundary. With no plan installed the frame (and its cost) does
//! not exist.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;

use crate::topology::Rank;

/// Fault probabilities of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability a message silently vanishes (the receiver's deadline
    /// turns the loss into a `Timeout`).
    pub drop_prob: f64,
    /// Probability a message is delayed by [`delay`](Self::delay) before
    /// delivery (the sender blocks, modelling a stalled NIC engine).
    pub delay_prob: f64,
    /// The stall applied to delayed messages.
    pub delay: Duration,
    /// Probability a delivered message has one payload bit flipped (the
    /// receiver's checksum turns the damage into a `Corrupt`).
    pub corrupt_prob: f64,
}

/// What the plan decided for one concrete message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver untouched.
    Deliver,
    /// Silently discard; the receiver never sees it.
    Drop,
    /// Stall the sender for the duration, then deliver.
    Delay(Duration),
    /// Deliver with one payload bit flipped.
    Corrupt,
}

/// A seeded, replayable description of everything that goes wrong on a run.
///
/// Install it with [`Fabric::run_with_faults`](crate::Fabric::run_with_faults).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    default_link: LinkFaults,
    links: HashMap<(Rank, Rank), LinkFaults>,
    kills: HashMap<Rank, u64>,
    revives: HashMap<Rank, u64>,
    recv_deadline: Option<Duration>,
    board_poll: Option<Duration>,
}

impl FaultPlan {
    /// A plan with the given replay seed and no faults configured yet.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the default per-link drop probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.default_link.drop_prob = p;
        self
    }

    /// Sets the default per-link delay probability and stall duration.
    pub fn with_delay(mut self, p: f64, delay: Duration) -> Self {
        self.default_link.delay_prob = p;
        self.default_link.delay = delay;
        self
    }

    /// Sets the default per-link corruption probability.
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        self.default_link.corrupt_prob = p;
        self
    }

    /// Overrides the fault rates of one directed link `src -> dst`.
    pub fn with_link(mut self, src: Rank, dst: Rank, faults: LinkFaults) -> Self {
        self.links.insert((src, dst), faults);
        self
    }

    /// Kills `rank` after it has completed `n_sends` sends: the `n+1`-th
    /// send (and every later send or receive) fails with
    /// `Disconnected { peer: rank }` on the dead rank itself, and peers see
    /// its silence as timeouts or, once its thread exits, disconnects.
    pub fn kill_after(mut self, rank: Rank, n_sends: u64) -> Self {
        self.kills.insert(rank, n_sends);
        self
    }

    /// Revives `rank` once it has *attempted* `n_sends` sends in total
    /// (denied sends while dead count too, so the revival point is a pure
    /// function of the rank's own control flow, not of wall clock).
    /// Requires a matching [`kill_after`](Self::kill_after) with a smaller
    /// threshold; a revive without a kill is inert.
    pub fn revive_after(mut self, rank: Rank, n_sends: u64) -> Self {
        self.revives.insert(rank, n_sends);
        self
    }

    /// Default liveness deadline applied to every plain `recv` while this
    /// plan is installed, so dropped messages and dead peers surface as
    /// [`Timeout`](crate::FabricError::Timeout) instead of hanging.
    pub fn with_recv_deadline(mut self, deadline: Duration) -> Self {
        self.recv_deadline = Some(deadline);
        self
    }

    /// The configured default receive deadline, if any.
    pub fn recv_deadline(&self) -> Option<Duration> {
        self.recv_deadline
    }

    /// Overrides the liveness-board poll slice: how often a deadlined
    /// receive interrupts its wait to check whether the awaited peer has
    /// posted its own death on the shared board. Smaller slices notice a
    /// death faster at the cost of more wakeups; the default is 5 ms.
    pub fn with_board_poll(mut self, slice: Duration) -> Self {
        self.board_poll = Some(slice);
        self
    }

    /// The liveness-board poll slice receives wait between death checks.
    pub fn board_poll(&self) -> Duration {
        self.board_poll.unwrap_or(Duration::from_millis(5))
    }

    /// The send count after which `rank` dies, if a kill is scheduled.
    pub fn kill_threshold(&self, rank: Rank) -> Option<u64> {
        self.kills.get(&rank).copied()
    }

    /// The attempted-send count after which `rank` revives, if scheduled.
    pub fn revive_threshold(&self, rank: Rank) -> Option<u64> {
        self.revives.get(&rank).copied()
    }

    /// Whether `rank` is alive after `attempts` attempted sends: dead in
    /// the window `[kill, revive)` and alive everywhere else. Pure in
    /// `(plan, rank, attempts)` — liveness replays bit-identically because
    /// it depends only on the rank's own send counter.
    pub fn rank_alive(&self, rank: Rank, attempts: u64) -> bool {
        match self.kill_threshold(rank) {
            None => true,
            Some(kill) => {
                attempts < kill
                    || self
                        .revive_threshold(rank)
                        .is_some_and(|revive| attempts >= revive.max(kill))
            }
        }
    }

    /// The fault rates of the directed link `src -> dst`.
    pub fn link(&self, src: Rank, dst: Rank) -> &LinkFaults {
        self.links.get(&(src, dst)).unwrap_or(&self.default_link)
    }

    /// Decides the fate of the `msg_index`-th message on `src -> dst`.
    ///
    /// Pure in `(seed, src, dst, msg_index)`: the same arguments always
    /// return the same decision. Drop takes precedence over corrupt, which
    /// takes precedence over delay; each uses an independent roll so the
    /// configured probabilities apply marginally.
    pub fn decide(&self, src: Rank, dst: Rank, msg_index: u64) -> FaultDecision {
        let lf = self.link(src, dst);
        if lf.drop_prob > 0.0 && self.roll(src, dst, msg_index, 0) < lf.drop_prob {
            return FaultDecision::Drop;
        }
        if lf.corrupt_prob > 0.0 && self.roll(src, dst, msg_index, 1) < lf.corrupt_prob {
            return FaultDecision::Corrupt;
        }
        if lf.delay_prob > 0.0 && self.roll(src, dst, msg_index, 2) < lf.delay_prob {
            return FaultDecision::Delay(lf.delay);
        }
        FaultDecision::Deliver
    }

    /// A uniform roll in `[0, 1)` keyed by the message identity and fault
    /// kind (splitmix64 finalizer over the packed key).
    fn roll(&self, src: Rank, dst: Rank, msg_index: u64, kind: u64) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64) << 48)
            .wrapping_add((dst as u64) << 32)
            .wrapping_add(msg_index.wrapping_mul(4).wrapping_add(kind));
        let h = splitmix64(key);
        // 53 high bits -> uniform double in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The splitmix64 finalizer: a strong 64-bit mix with no state.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

/// Feeds `data` into an in-progress CRC32 (state starts at `0xFFFF_FFFF`,
/// finalize by bitwise NOT). Lets the frame checksum cover the epoch and
/// the payload without concatenating them.
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    static TABLE: [u32; 256] = build_crc_table();
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Byte length of the frame header (`len` + `epoch` + `crc32`).
pub const FRAME_HEADER: usize = 12;

/// Epoch stamp that bypasses the receiver's staleness check.
///
/// Control-plane traffic (rejoin invites, acknowledgements, state-transfer
/// chunks) crosses an epoch boundary by construction, so it travels with
/// this wildcard stamp instead of a concrete epoch.
pub const EPOCH_ANY: u32 = u32::MAX;

/// Wraps `payload` in a `[len][epoch][crc32][payload]` frame. The CRC
/// covers the epoch and the payload.
pub fn frame(payload: &[u8], epoch: u32) -> Bytes {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    let crc = !crc32_update(crc32_update(0xFFFF_FFFF, &epoch.to_le_bytes()), payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    Bytes::from(out)
}

/// Frames `payload`, then flips one bit so the receiver's checksum fails.
///
/// The flipped bit is in the payload when there is one (keyed by
/// `msg_index` so different corruptions hit different bits), and in the
/// checksum itself for empty payloads.
pub fn frame_corrupted(payload: &[u8], epoch: u32, msg_index: u64) -> Bytes {
    let mut out = frame(payload, epoch).to_vec();
    let target = if payload.is_empty() {
        8 // first checksum byte
    } else {
        FRAME_HEADER + (splitmix64(msg_index) as usize % payload.len())
    };
    out[target] ^= 1 << (msg_index % 8) as u8;
    Bytes::from(out)
}

/// Validates and strips a `[len][epoch][crc32][payload]` frame.
///
/// Returns `None` on a short frame, a length mismatch, or a checksum
/// mismatch — the caller maps this to
/// [`FabricError::Corrupt`](crate::FabricError::Corrupt). On success
/// returns the sender's epoch stamp alongside the payload; comparing it
/// against the local epoch (and surfacing
/// [`FabricError::StaleEpoch`](crate::FabricError::StaleEpoch)) is the
/// caller's job — this layer only guarantees the stamp is undamaged.
pub fn deframe(framed: &Bytes) -> Option<(u32, Bytes)> {
    if framed.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(framed[0..4].try_into().expect("4 bytes")) as usize;
    let epoch = u32::from_le_bytes(framed[4..8].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(framed[8..12].try_into().expect("4 bytes"));
    if framed.len() - FRAME_HEADER != len {
        return None;
    }
    let payload = framed.slice(FRAME_HEADER..framed.len());
    let computed = !crc32_update(crc32_update(0xFFFF_FFFF, &epoch.to_le_bytes()), &payload);
    if computed != crc {
        return None;
    }
    Some((epoch, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"hello fabric".as_slice();
        let framed = frame(payload, 3);
        assert_eq!(framed.len(), payload.len() + FRAME_HEADER);
        let (epoch, got) = deframe(&framed).unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(got.as_ref(), payload);
        // Empty payloads frame too, and the wildcard stamp survives.
        let (epoch, got) = deframe(&frame(b"", EPOCH_ANY)).unwrap();
        assert_eq!(epoch, EPOCH_ANY);
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn corrupted_frames_are_detected() {
        for idx in 0..32u64 {
            let bad = frame_corrupted(b"some tensor bytes", 1, idx);
            assert!(deframe(&bad).is_none(), "corruption at index {idx} missed");
        }
        // Even an empty payload's corruption is caught (checksum bit flip).
        assert!(deframe(&frame_corrupted(b"", 0, 3)).is_none());
    }

    #[test]
    fn a_flipped_epoch_fails_the_checksum() {
        let mut out = frame(b"payload", 7).to_vec();
        out[4] ^= 1; // low epoch byte
        assert!(deframe(&Bytes::from(out)).is_none());
    }

    #[test]
    fn truncated_and_length_mismatched_frames_are_rejected() {
        let framed = frame(b"abcdef", 0);
        assert!(deframe(&framed.slice(0..4)).is_none());
        assert!(deframe(&framed.slice(0..framed.len() - 1)).is_none());
        assert!(deframe(&Bytes::new()).is_none());
    }

    #[test]
    fn decisions_are_pure_in_the_key() {
        let plan = FaultPlan::seeded(42)
            .with_drop_prob(0.3)
            .with_corrupt_prob(0.2)
            .with_delay(0.2, Duration::from_micros(50));
        for src in 0..4 {
            for dst in 0..4 {
                for idx in 0..64 {
                    assert_eq!(
                        plan.decide(src, dst, idx),
                        plan.decide(src, dst, idx),
                        "decision not stable for ({src},{dst},{idx})"
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_give_different_fault_sequences() {
        let a = FaultPlan::seeded(1).with_drop_prob(0.5);
        let b = FaultPlan::seeded(2).with_drop_prob(0.5);
        let seq =
            |p: &FaultPlan| -> Vec<FaultDecision> { (0..256).map(|i| p.decide(0, 1, i)).collect() };
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::seeded(7).with_drop_prob(0.25);
        let n = 10_000;
        let drops = (0..n)
            .filter(|&i| plan.decide(0, 1, i) == FaultDecision::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate} far from 0.25");
    }

    #[test]
    fn link_overrides_shadow_the_default() {
        let plan = FaultPlan::seeded(9)
            .with_drop_prob(1.0)
            .with_link(0, 1, LinkFaults::default());
        assert_eq!(plan.decide(0, 1, 0), FaultDecision::Deliver);
        assert_eq!(plan.decide(1, 0, 0), FaultDecision::Drop);
    }

    #[test]
    fn kill_threshold_and_deadline_accessors() {
        let plan = FaultPlan::seeded(3)
            .kill_after(2, 100)
            .with_recv_deadline(Duration::from_secs(1));
        assert_eq!(plan.kill_threshold(2), Some(100));
        assert_eq!(plan.kill_threshold(0), None);
        assert_eq!(plan.recv_deadline(), Some(Duration::from_secs(1)));
    }

    #[test]
    fn board_poll_defaults_to_five_ms_and_overrides() {
        assert_eq!(FaultPlan::seeded(1).board_poll(), Duration::from_millis(5));
        let plan = FaultPlan::seeded(1).with_board_poll(Duration::from_millis(250));
        assert_eq!(plan.board_poll(), Duration::from_millis(250));
    }

    #[test]
    fn liveness_is_a_pure_window_of_the_attempt_counter() {
        let plan = FaultPlan::seeded(3).kill_after(5, 10).revive_after(5, 14);
        // No kill scheduled: always alive.
        assert!(plan.rank_alive(0, 0));
        assert!(plan.rank_alive(0, u64::MAX));
        // Dead exactly on [kill, revive).
        assert!(plan.rank_alive(5, 9));
        assert!(!plan.rank_alive(5, 10));
        assert!(!plan.rank_alive(5, 13));
        assert!(plan.rank_alive(5, 14));
        assert!(plan.rank_alive(5, 100));
        // Kill without revive: dead forever.
        let forever = FaultPlan::seeded(3).kill_after(5, 10);
        assert!(!forever.rank_alive(5, 10));
        assert!(!forever.rank_alive(5, u64::MAX));
        // A revive threshold at or below the kill threshold makes the dead
        // window `[kill, max(revive, kill))` empty: the rank never dies.
        let odd = FaultPlan::seeded(3).kill_after(5, 10).revive_after(5, 4);
        assert!(odd.rank_alive(5, 9));
        assert!(odd.rank_alive(5, 10));
        assert_eq!(odd.revive_threshold(5), Some(4));
    }
}
