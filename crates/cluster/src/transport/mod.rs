//! Interchangeable byte transports beneath the rank fabric.
//!
//! [`RankHandle`](crate::fabric::RankHandle) owns everything *semantic*
//! about fabric traffic — tag demultiplexing and parking, CRC/epoch
//! framing, fault injection, deadlines, counters. A [`Transport`] owns
//! everything *physical*: moving an opaque `(tag, payload)` record from
//! one rank's endpoint to another's, a rendezvous barrier, and a cluster
//! liveness board. Three implementations ship:
//!
//! * [`channel`] — the reference impl: ranks are threads in one process,
//!   links are unbounded channels. Zero syscalls, zero framing; this is
//!   the backend every deterministic chaos replay is defined against.
//! * [`shm`] — ranks are OS processes on one host; every directed link is
//!   a single-producer single-consumer ring buffer in a `/dev/shm`-backed
//!   file, and the liveness board is a shared file of per-rank slots.
//! * [`tcp`] — ranks are processes on one or many hosts; every directed
//!   link is a framed TCP stream, with rank 0 hosting a line-oriented
//!   rendezvous service that maps ranks to socket addresses.
//!
//! The trait contract is deliberately narrow so the semantics proven on
//! the channel backend carry over verbatim: per-link FIFO (records from
//! `src` arrive at `dst` in send order), at-most-once delivery, and a
//! monotone liveness board where a posted death means "no record will
//! ever arrive on this link again until the rank is re-admitted".

use std::time::Duration;

use bytes::Bytes;

use crate::topology::Rank;

pub mod channel;
pub mod chaos;
#[cfg(unix)]
pub mod shm;
pub mod tcp;

pub use channel::ChannelTransport;
pub use chaos::{ChaosDecision, ChaosLink, ChaosPlan, ChaosTransport, NOMINAL_BW};
#[cfg(unix)]
pub use shm::ShmTransport;
pub use tcp::{BootstrapError, TcpTransport};

/// Which backend carries fabric traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process threads over unbounded channels (the reference impl).
    Channel,
    /// One-host processes over shared-memory ring buffers.
    Shm,
    /// Processes over framed TCP streams with rank-0 rendezvous.
    Tcp,
}

/// Environment variable selecting the default backend for
/// [`Fabric::run`](crate::fabric::Fabric::run) and friends. CI sets this
/// per matrix leg so the whole unit + proptest suite exercises every
/// backend without a single test changing.
pub const TRANSPORT_ENV: &str = "SCHEMOE_TRANSPORT";

impl TransportKind {
    /// All backends, in conformance-suite order.
    pub const ALL: [TransportKind; 3] = [
        TransportKind::Channel,
        TransportKind::Shm,
        TransportKind::Tcp,
    ];

    /// Parses a backend name (`channel` / `shm` / `tcp`).
    pub fn parse(name: &str) -> Option<TransportKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "channel" => Some(TransportKind::Channel),
            "shm" => Some(TransportKind::Shm),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }

    /// The backend named by [`TRANSPORT_ENV`], defaulting to `Channel`
    /// when unset or unrecognized.
    pub fn from_env() -> TransportKind {
        std::env::var(TRANSPORT_ENV)
            .ok()
            .and_then(|v| TransportKind::parse(&v))
            .unwrap_or(TransportKind::Channel)
    }

    /// Stable lowercase label (artifact names, CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Shm => "shm",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// The peer's endpoint is gone: its process exited, its socket closed,
/// or its channel endpoints were dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkClosed;

/// Why a raw receive produced no record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawRecvError {
    /// The timeout expired with the link open but silent.
    Timeout,
    /// The link is closed and drained: no record will ever arrive.
    Disconnected,
}

/// A rank's endpoint into one transport backend.
///
/// Implementations take `&self` and use interior mutability: a handle is
/// owned by one rank but may hop between that rank's threads (the overlap
/// executor moves it behind a mutex), so `Send` is required while `Sync`
/// is not.
///
/// Tags are opaque routing bytes to the transport *except* values within
/// [`RESERVED_TAG_BASE`]`..=u64::MAX`, which backends may use for internal
/// control records (death notices, barrier traffic). The fabric never
/// emits tags in that range.
pub trait Transport: Send {
    /// World size this endpoint was built for.
    fn world_size(&self) -> usize;

    /// Queues `payload` to `to` under `tag`. Per-link FIFO; never blocks
    /// on the receiver except for transient backpressure (a full ring).
    fn send_raw(&self, to: Rank, tag: u64, payload: Bytes) -> Result<(), LinkClosed>;

    /// Returns the next `(tag, payload)` record from `from`, whatever its
    /// tag — tag matching and parking live above the transport. `None`
    /// blocks indefinitely; `Some(t)` gives up after `t`.
    fn recv_raw(&self, from: Rank, timeout: Option<Duration>)
        -> Result<(u64, Bytes), RawRecvError>;

    /// Blocks until every rank has reached the same barrier call.
    fn barrier(&self);

    /// Posts `rank`'s death on the cluster liveness board. When `rank`
    /// is this endpoint's own rank the posting must become visible to
    /// every peer's board.
    fn post_death(&self, rank: Rank);

    /// Whether the board currently lists `rank` as dead.
    fn peer_dead(&self, rank: Rank) -> bool;

    /// Clears `rank`'s board entry (the rejoin protocol re-admitting it).
    fn clear_death(&self, rank: Rank);

    /// True when every payload must travel CRC/epoch-framed even without
    /// a fault plan: real wires can damage bytes, so the `[len][epoch]
    /// [crc32]` frame goes on the wire verbatim for the shm and tcp
    /// backends.
    fn always_framed(&self) -> bool;

    /// True when a buried peer can physically come back — as a respawned
    /// OS process dialing in through rendezvous — without a fault plan
    /// scheduling its revival. Gates the survivors' rejoin polling.
    fn reconnectable(&self) -> bool;

    /// Tears down the physical stream to `to`, if the backend has one,
    /// so the peer observes EOF and the next send re-handshakes on a
    /// fresh connection. The chaos decorator calls this on flap-window
    /// entry; backends without per-link connections (channels, shared
    /// memory) have nothing to tear and keep the default no-op.
    fn reset_link(&self, _to: Rank) {}
}

/// Lowest tag value reserved for transport-internal control records.
pub const RESERVED_TAG_BASE: u64 = u64::MAX - 15;

/// Deferred construction of one rank's transport endpoint.
///
/// Channel endpoints are ready the moment the mesh is built, but the shm
/// and tcp backends must finish their handshakes *on the rank's own
/// thread* (a tcp endpoint blocks in rendezvous until all ranks have
/// registered), so [`Fabric::run`](crate::fabric::Fabric::run) hands each
/// rank thread a bootstrap to establish rather than a finished endpoint.
pub enum TransportBootstrap {
    /// A ready in-process channel endpoint.
    Channel(ChannelTransport),
    /// A shared-memory session to attach to.
    #[cfg(unix)]
    Shm(shm::ShmBootstrap),
    /// A rendezvous to dial.
    Tcp(tcp::TcpBootstrap),
}

impl TransportBootstrap {
    /// Completes the handshake and returns the live endpoint.
    pub fn establish(self) -> Box<dyn Transport> {
        match self {
            TransportBootstrap::Channel(t) => Box::new(t),
            #[cfg(unix)]
            TransportBootstrap::Shm(b) => Box::new(b.attach()),
            TransportBootstrap::Tcp(b) => Box::new(
                b.connect()
                    .unwrap_or_else(|e| panic!("tcp transport bootstrap: {e}")),
            ),
        }
    }
}

/// Builds one bootstrap per rank for an in-process run over `kind`.
pub fn mesh(kind: TransportKind, world: usize) -> Vec<TransportBootstrap> {
    match kind {
        TransportKind::Channel => channel::mesh(world)
            .into_iter()
            .map(TransportBootstrap::Channel)
            .collect(),
        #[cfg(unix)]
        TransportKind::Shm => shm::mesh(world)
            .into_iter()
            .map(TransportBootstrap::Shm)
            .collect(),
        #[cfg(not(unix))]
        TransportKind::Shm => panic!("the shm transport requires a unix host"),
        TransportKind::Tcp => tcp::mesh(world)
            .into_iter()
            .map(TransportBootstrap::Tcp)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip_through_parse() {
        for kind in TransportKind::ALL {
            assert_eq!(TransportKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(TransportKind::parse("TCP"), Some(TransportKind::Tcp));
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
    }
}
