//! TCP transport: one framed stream per directed link, rank 0 hosting
//! rendezvous.
//!
//! Bootstrap is a two-step handshake. Every rank binds a data listener
//! on an ephemeral port, dials the rendezvous address, and sends one
//! line — `JOIN <rank> <host:port>` — then blocks until the service
//! replies `MAP <addr0> <addr1> ...` with the full rank→address map,
//! which it does the moment all ranks have registered. A persistent
//! rendezvous (the multi-process launcher's mode) keeps serving after
//! the initial map so a respawned rank can re-register under a fresh
//! port and learn the survivors' addresses.
//!
//! Data connections are made lazily: the first send to a peer dials its
//! data listener and opens with a `HELLO` record carrying the sender's
//! rank and listener address (which also teaches the acceptor a
//! rejoiner's new address). Each record on the wire is
//! `[tag u64-le][len u32-le][payload]`; the payload is exactly the
//! fabric's `[len][epoch][crc32]` frame, verbatim. A reader thread per
//! incoming connection demultiplexes records into per-source queues;
//! when its stream closes — the peer dropped its endpoint, exited, or
//! was SIGKILLed — the reader posts the source dead on the local
//! liveness board, turning real socket death into the same typed
//! fast-fail a latched `kill_after` gives in-process.
//!
//! Tags at the top of the [`RESERVED_TAG_BASE`] range carry transport
//! control: death notices (propagating the simulated-kill board between
//! processes) and the rank-0-coordinated barrier (`ARRIVE`/`RELEASE`).

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use super::{LinkClosed, RawRecvError, Transport, RESERVED_TAG_BASE};
use crate::faults::splitmix64;
use crate::topology::Rank;

/// Control tags (all within the reserved range).
const CTRL_DEATH: u64 = u64::MAX;
const CTRL_ARRIVE: u64 = u64::MAX - 1;
const CTRL_RELEASE: u64 = u64::MAX - 2;
const CTRL_HELLO: u64 = u64::MAX - 3;

/// Receive poll slice: how often a blocked receive re-checks the local
/// liveness board so a posted death cuts the wait short.
const RECV_POLL: Duration = Duration::from_millis(5);

/// Sanity cap on record payloads (a damaged length prefix must not
/// allocate the moon).
const MAX_RECORD: u32 = 1 << 30;

/// Dial schedule for lazy *data* connections: quick, because a send to
/// a genuinely dead peer must fail fast enough not to stall the
/// cluster, but with enough retry to ride out a peer whose listener is
/// mid-rebind (a respawning rank).
const DATA_DIAL_ATTEMPTS: u32 = 3;
const DATA_DIAL_BASE: Duration = Duration::from_millis(5);
const DATA_DIAL_CAP: Duration = Duration::from_millis(40);

/// Dial schedule for the *rendezvous* bootstrap: patient, because at
/// cluster start the rendezvous process may simply not have bound yet,
/// and a respawned worker may race a restarting rendezvous.
const RENDEZVOUS_DIAL_ATTEMPTS: u32 = 8;
const RENDEZVOUS_DIAL_BASE: Duration = Duration::from_millis(50);
const RENDEZVOUS_DIAL_CAP: Duration = Duration::from_secs(2);

/// The backoff stall before retry `attempt + 1`: exponential from
/// `base`, capped at `cap`, with splitmix64 jitter in `[half, full]` so
/// a thundering herd of redialing ranks decorrelates. Pure in
/// `(attempt, base, cap, seed)`.
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration, seed: u64) -> Duration {
    let exp = base
        .saturating_mul(1u32 << attempt.min(16))
        .min(cap)
        .max(Duration::from_micros(1));
    let frac = (splitmix64(seed.wrapping_add(attempt as u64)) >> 11) as f64 / (1u64 << 53) as f64;
    exp.div_f64(2.0) + exp.div_f64(2.0).mul_f64(frac)
}

/// Dials `addr` with bounded exponential backoff. Returns the last
/// connect error once `attempts` are exhausted.
fn dial_with_backoff(
    addr: &str,
    attempts: u32,
    base: Duration,
    cap: Duration,
    seed: u64,
) -> std::io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < attempts {
                    std::thread::sleep(backoff_delay(attempt, base, cap, seed));
                }
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Why standing up a TCP endpoint failed — typed, so a worker process
/// can report (and a launcher can distinguish) a dead rendezvous from a
/// local bind failure instead of dying on a bare `expect`.
#[derive(Debug)]
pub enum BootstrapError {
    /// Binding the local data listener failed.
    Bind(std::io::Error),
    /// The rendezvous address never accepted, even after backoff.
    Rendezvous {
        /// The address that was dialed.
        addr: String,
        /// How many connect attempts were made.
        attempts: u32,
        /// The final attempt's error.
        last: std::io::Error,
    },
    /// The rendezvous accepted but the JOIN/MAP exchange failed.
    Handshake(std::io::Error),
    /// The MAP reply did not cover the expected world.
    BadMap {
        /// Entries received.
        got: usize,
        /// Entries required (the world size).
        want: usize,
    },
}

impl fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootstrapError::Bind(e) => write!(f, "binding data listener: {e}"),
            BootstrapError::Rendezvous {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "rendezvous {addr} unreachable after {attempts} attempts: {last}"
            ),
            BootstrapError::Handshake(e) => write!(f, "rendezvous handshake: {e}"),
            BootstrapError::BadMap { got, want } => {
                write!(f, "rendezvous map has {got} entries, want {want}")
            }
        }
    }
}

impl std::error::Error for BootstrapError {}

struct Msg {
    tag: u64,
    payload: Bytes,
}

/// State shared between the endpoint, its acceptor, and reader threads.
struct Shared {
    world: usize,
    /// Local liveness board: protocol state, fed by `post_death` (local
    /// latches and peers' `CTRL_DEATH` notices), cleared on re-admission.
    /// Consulted only through [`Transport::peer_dead`] so the fabric's
    /// `board_poll` slicing governs when a posted death is noticed —
    /// exactly as on the channel backend.
    dead: Vec<AtomicBool>,
    /// Socket state: the incoming stream from this rank closed (EOF,
    /// reset, or torn record). The tcp analogue of a dropped channel
    /// sender; cleared when a fresh `HELLO` re-establishes the link.
    closed: Vec<AtomicBool>,
    /// Per-source connection generation, bumped on every `HELLO`. A
    /// reader thread only gets to mark its source `closed` at EOF if its
    /// generation is still current; without this, a killed process's
    /// lingering stream can EOF *after* its respawned successor's `HELLO`
    /// cleared the flag, permanently wedging the link as closed.
    /// Transitions are serialized under the `addrs` lock.
    conn_gen: Vec<AtomicU64>,
    /// Per-source inbox senders; readers fetch their clone here so a
    /// rejoiner's fresh connection feeds the same queue.
    inbox_tx: Vec<Sender<Msg>>,
    /// Barrier arrivals, collected by rank 0.
    arrive_tx: Sender<(Rank, u64)>,
    /// Barrier releases, awaited by ranks != 0.
    release_tx: Sender<u64>,
    /// Rank → data-listener address, updated by `HELLO` records.
    addrs: Mutex<Vec<String>>,
    /// Set by `Drop` so the acceptor exits on its wake-up connection.
    shutdown: AtomicBool,
}

/// A rendezvous to dial as one rank.
pub struct TcpBootstrap {
    rendezvous: String,
    rank: Rank,
    world: usize,
    reconnectable: bool,
    rendezvous_attempts: u32,
}

impl TcpBootstrap {
    /// A bootstrap for a worker process dialing `rendezvous`.
    /// `reconnectable` marks sessions whose dead ranks may return as
    /// respawned processes (the launcher's mode).
    pub fn new(rendezvous: impl Into<String>, rank: Rank, world: usize) -> Self {
        TcpBootstrap {
            rendezvous: rendezvous.into(),
            rank,
            world,
            reconnectable: true,
            rendezvous_attempts: RENDEZVOUS_DIAL_ATTEMPTS,
        }
    }

    /// Overrides the rendezvous dial budget (tests shrink it so a dead
    /// address fails in milliseconds instead of seconds).
    pub fn with_rendezvous_attempts(mut self, attempts: u32) -> Self {
        self.rendezvous_attempts = attempts.max(1);
        self
    }

    /// Registers with rendezvous and stands up the endpoint.
    pub fn connect(self) -> Result<TcpTransport, BootstrapError> {
        TcpTransport::connect(self)
    }
}

/// Spawns an in-process rendezvous service for `world` ranks and
/// returns one bootstrap per rank. The service thread exits after the
/// initial map broadcast.
pub fn mesh(world: usize) -> Vec<TcpBootstrap> {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind rendezvous");
    let addr = listener.local_addr().expect("rendezvous addr").to_string();
    std::thread::spawn(move || serve_rendezvous(listener, world, false));
    (0..world)
        .map(|rank| TcpBootstrap {
            rendezvous: addr.clone(),
            rank,
            world,
            reconnectable: false,
            rendezvous_attempts: RENDEZVOUS_DIAL_ATTEMPTS,
        })
        .collect()
}

/// Runs the rendezvous service: collects `JOIN <rank> <addr>` lines
/// until all `world` ranks have registered, then sends every waiter the
/// full `MAP`. In `persistent` mode the service keeps accepting after
/// the initial broadcast, answering late (re)joining ranks immediately
/// with the current map — run it on a thread for the life of rank 0's
/// process.
pub fn serve_rendezvous(listener: TcpListener, world: usize, persistent: bool) {
    serve_rendezvous_with_store(listener, world, persistent, None)
}

/// [`serve_rendezvous`] with an optional on-disk rank→addr store.
///
/// Every accepted JOIN is persisted (atomic tmp + rename, one `RANK
/// ADDR` line per registered rank), and a service started over an
/// existing store begins *pre-filled*: a restarted rendezvous process
/// immediately serves the surviving map to rejoiners instead of
/// wedging on ranks that will never re-register — this is what removes
/// the rank-0 rendezvous as a single point of failure.
pub fn serve_rendezvous_with_store(
    listener: TcpListener,
    world: usize,
    persistent: bool,
    store: Option<PathBuf>,
) {
    let mut addrs: Vec<Option<String>> = store
        .as_deref()
        .map(|p| load_store(p, world))
        .unwrap_or_else(|| vec![None; world]);
    let mut waiting: Vec<TcpStream> = Vec::new();
    // A store that already covers the world means the initial broadcast
    // happened in a previous incarnation: answer every join immediately.
    let mut initial_served = addrs.iter().all(Option::is_some);
    for conn in listener.incoming() {
        let Ok(conn) = conn else { continue };
        let mut reader = BufReader::new(conn.try_clone().expect("clone rendezvous conn"));
        let mut line = String::new();
        if reader.read_line(&mut line).is_err() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some("JOIN"), Some(rank), Some(addr)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(rank) = rank.parse::<usize>() else {
            continue;
        };
        if rank >= world {
            continue;
        }
        addrs[rank] = Some(addr.to_string());
        if let Some(path) = store.as_deref() {
            persist_store(path, &addrs);
        }
        if initial_served {
            let _ = reply_map(conn, &addrs);
            continue;
        }
        waiting.push(conn);
        if addrs.iter().all(Option::is_some) {
            for c in waiting.drain(..) {
                let _ = reply_map(c, &addrs);
            }
            initial_served = true;
            if !persistent {
                return;
            }
        }
    }
}

/// Reads a rank→addr store written by [`persist_store`]. Unknown ranks
/// and damaged lines are skipped, so a torn or stale file degrades to a
/// partial (or empty) prefill rather than an error.
fn load_store(path: &Path, world: usize) -> Vec<Option<String>> {
    let mut addrs = vec![None; world];
    let Ok(text) = std::fs::read_to_string(path) else {
        return addrs;
    };
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let (Some(rank), Some(addr)) = (parts.next(), parts.next()) else {
            continue;
        };
        if let Ok(r) = rank.parse::<usize>() {
            if r < world {
                addrs[r] = Some(addr.to_string());
            }
        }
    }
    addrs
}

/// Atomically replaces the store with the current map through the
/// shared durable-commit helper (write-tmp → fsync → rename → fsync
/// parent) — a crashed rendezvous never leaves a half-written store
/// behind, and a committed one survives power loss.
fn persist_store(path: &Path, addrs: &[Option<String>]) {
    let mut text = String::new();
    for (r, a) in addrs.iter().enumerate() {
        if let Some(a) = a {
            text.push_str(&format!("{r} {a}\n"));
        }
    }
    let _ = crate::storage::write_atomic(&crate::storage::RealFs, path, text.as_bytes());
}

fn reply_map(mut conn: TcpStream, addrs: &[Option<String>]) -> std::io::Result<()> {
    let mut line = String::from("MAP");
    for a in addrs {
        line.push(' ');
        line.push_str(a.as_deref().unwrap_or("?"));
    }
    line.push('\n');
    conn.write_all(line.as_bytes())
}

fn write_record(stream: &mut TcpStream, tag: u64, payload: &[u8]) -> std::io::Result<()> {
    let mut header = [0u8; 12];
    header[..8].copy_from_slice(&tag.to_le_bytes());
    header[8..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    stream.write_all(&header)?;
    stream.write_all(payload)
}

fn read_record(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u64, Vec<u8>)> {
    let mut header = [0u8; 12];
    reader.read_exact(&mut header)?;
    let tag = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[8..].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "record length out of range",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Demultiplexes one incoming connection. `src` becomes known from the
/// leading `HELLO`; every subsequent record routes by tag.
fn run_reader(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let mut src: Option<Rank> = None;
    let mut my_gen = 0u64;
    while let Ok((tag, payload)) = read_record(&mut reader) {
        match tag {
            CTRL_HELLO => {
                let Some((r, addr)) = decode_hello(&payload) else {
                    return;
                };
                if r >= shared.world {
                    return;
                }
                {
                    let mut addrs = shared.addrs.lock();
                    my_gen = shared.conn_gen[r].fetch_add(1, Ordering::AcqRel) + 1;
                    addrs[r] = addr;
                    shared.closed[r].store(false, Ordering::Release);
                }
                src = Some(r);
            }
            CTRL_DEATH => {
                if let Some(&r) = payload.first() {
                    let r = r as usize;
                    if r < shared.world {
                        shared.dead[r].store(true, Ordering::Release);
                    }
                }
            }
            CTRL_ARRIVE | CTRL_RELEASE => {
                let Some(s) = src else { return };
                let gen = u64::from_le_bytes(payload.as_slice().try_into().unwrap_or([0; 8]));
                if tag == CTRL_ARRIVE {
                    let _ = shared.arrive_tx.send((s, gen));
                } else {
                    let _ = shared.release_tx.send(gen);
                }
            }
            _ => {
                let Some(s) = src else { return };
                let _ = shared.inbox_tx[s].send(Msg {
                    tag,
                    payload: Bytes::from(payload),
                });
            }
        }
    }
    // The stream closed: the peer dropped its endpoint, exited, or was
    // killed. Anything it sent is already queued, so marking the link
    // closed means drained receives fail typed instead of stalling
    // deadlines — the socket-reset analogue of a dropped channel. Only
    // the *current* connection may do this: a killed process's stream
    // can EOF after its respawned successor already said `HELLO`, and
    // that stale reader must not re-close the fresh link.
    if let Some(s) = src {
        let _addrs = shared.addrs.lock();
        if shared.conn_gen[s].load(Ordering::Acquire) == my_gen {
            shared.closed[s].store(true, Ordering::Release);
        }
    }
}

fn encode_hello(rank: Rank, addr: &str) -> Vec<u8> {
    let mut v = rank.to_le_bytes().to_vec();
    v.extend_from_slice(addr.as_bytes());
    v
}

fn decode_hello(payload: &[u8]) -> Option<(Rank, String)> {
    let rank_bytes: [u8; 8] = payload.get(..8)?.try_into().ok()?;
    let addr = String::from_utf8(payload.get(8..)?.to_vec()).ok()?;
    Some((usize::from_le_bytes(rank_bytes), addr))
}

/// One rank's endpoint into a TCP mesh.
pub struct TcpTransport {
    rank: Rank,
    world: usize,
    reconnectable: bool,
    listen_addr: String,
    /// Lazily-dialed outgoing streams, one per peer.
    out: Vec<Mutex<Option<TcpStream>>>,
    inbox_rx: Vec<Receiver<Msg>>,
    arrive_rx: Receiver<(Rank, u64)>,
    release_rx: Receiver<u64>,
    barrier_gen: Cell<u64>,
    /// Arrivals from barrier generations ahead of this endpoint's.
    early_arrivals: Cell<HashMap<u64, usize>>,
    shared: Arc<Shared>,
}

impl TcpTransport {
    fn connect(b: TcpBootstrap) -> Result<TcpTransport, BootstrapError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(BootstrapError::Bind)?;
        let listen_addr = listener
            .local_addr()
            .map_err(BootstrapError::Bind)?
            .to_string();

        // Register and learn the full rank → address map. The rendezvous
        // process may still be binding (cluster start) or restarting
        // (rejoin after rank-0 respawn), so dial with patient backoff
        // and surface exhaustion as a typed error, not a panic.
        let mut rendezvous = dial_with_backoff(
            &b.rendezvous,
            b.rendezvous_attempts,
            RENDEZVOUS_DIAL_BASE,
            RENDEZVOUS_DIAL_CAP,
            b.rank as u64,
        )
        .map_err(|last| BootstrapError::Rendezvous {
            addr: b.rendezvous.clone(),
            attempts: b.rendezvous_attempts,
            last,
        })?;
        rendezvous
            .write_all(format!("JOIN {} {}\n", b.rank, listen_addr).as_bytes())
            .map_err(BootstrapError::Handshake)?;
        let mut line = String::new();
        BufReader::new(rendezvous)
            .read_line(&mut line)
            .map_err(BootstrapError::Handshake)?;
        let addrs: Vec<String> = line
            .split_whitespace()
            .skip(1)
            .map(str::to_string)
            .collect();
        if addrs.len() != b.world {
            return Err(BootstrapError::BadMap {
                got: addrs.len(),
                want: b.world,
            });
        }

        let mut inbox_tx = Vec::with_capacity(b.world);
        let mut inbox_rx = Vec::with_capacity(b.world);
        for _ in 0..b.world {
            let (tx, rx) = unbounded();
            inbox_tx.push(tx);
            inbox_rx.push(rx);
        }
        let (arrive_tx, arrive_rx) = unbounded();
        let (release_tx, release_rx) = unbounded();
        let shared = Arc::new(Shared {
            world: b.world,
            dead: (0..b.world).map(|_| AtomicBool::new(false)).collect(),
            closed: (0..b.world).map(|_| AtomicBool::new(false)).collect(),
            conn_gen: (0..b.world).map(|_| AtomicU64::new(0)).collect(),
            inbox_tx,
            arrive_tx,
            release_tx,
            addrs: Mutex::new(addrs),
            shutdown: AtomicBool::new(false),
        });

        let acceptor_shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if acceptor_shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let Ok(conn) = conn else { continue };
                let reader_shared = Arc::clone(&acceptor_shared);
                std::thread::spawn(move || run_reader(conn, reader_shared));
            }
        });

        let t = TcpTransport {
            rank: b.rank,
            world: b.world,
            reconnectable: b.reconnectable,
            listen_addr,
            out: (0..b.world).map(|_| Mutex::new(None)).collect(),
            inbox_rx,
            arrive_rx,
            release_rx,
            barrier_gen: Cell::new(0),
            early_arrivals: Cell::new(HashMap::new()),
            shared,
        };
        // Dial the full mesh eagerly: one stream per directed link from
        // the start, so a peer that exits without ever sending still
        // closes an established stream — its EOF is what turns into the
        // typed `Disconnected` a dropped channel gives in-process.
        for r in 0..t.world {
            if r != t.rank {
                let mut slot = t.out[r].lock();
                if slot.is_none() {
                    *slot = t.dial(r).ok();
                }
            }
        }
        Ok(t)
    }

    /// The address this endpoint's data listener is bound to.
    pub fn listen_addr(&self) -> &str {
        &self.listen_addr
    }

    fn dial(&self, to: Rank) -> std::io::Result<TcpStream> {
        let addr = self.shared.addrs.lock()[to].clone();
        // Quick bounded backoff: enough to ride out a peer mid-rebind
        // (a respawning rank re-binding its listener), fast enough that
        // a genuinely dead peer fails typed in tens of milliseconds.
        let mut stream = dial_with_backoff(
            &addr,
            DATA_DIAL_ATTEMPTS,
            DATA_DIAL_BASE,
            DATA_DIAL_CAP,
            ((self.rank as u64) << 32) | to as u64,
        )?;
        stream.set_nodelay(true)?;
        write_record(
            &mut stream,
            CTRL_HELLO,
            &encode_hello(self.rank, &self.listen_addr),
        )?;
        Ok(stream)
    }

    /// Writes one record to `to`, dialing or re-dialing as needed. A
    /// record that fails mid-write is retried whole on a fresh stream
    /// (the torn half died with the old socket).
    fn write_to(&self, to: Rank, tag: u64, payload: &[u8]) -> Result<(), LinkClosed> {
        let mut slot = self.out[to].lock();
        for attempt in 0..2 {
            if slot.is_none() {
                match self.dial(to) {
                    Ok(s) => *slot = Some(s),
                    Err(_) => return Err(LinkClosed),
                }
            }
            let stream = slot.as_mut().expect("dialed above");
            match write_record(stream, tag, payload) {
                Ok(()) => return Ok(()),
                Err(_) if attempt == 0 => *slot = None,
                Err(_) => return Err(LinkClosed),
            }
        }
        Err(LinkClosed)
    }
}

impl Transport for TcpTransport {
    fn world_size(&self) -> usize {
        self.world
    }

    fn send_raw(&self, to: Rank, tag: u64, payload: Bytes) -> Result<(), LinkClosed> {
        debug_assert!(tag < RESERVED_TAG_BASE, "fabric tag in reserved range");
        if to == self.rank {
            // Loop self-sends back locally, as the channel mesh does.
            return self.shared.inbox_tx[to]
                .send(Msg { tag, payload })
                .map_err(|_| LinkClosed);
        }
        self.write_to(to, tag, &payload)
    }

    fn recv_raw(
        &self,
        from: Rank,
        timeout: Option<Duration>,
    ) -> Result<(u64, Bytes), RawRecvError> {
        let rx = &self.inbox_rx[from];
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let slice = match deadline {
                None => RECV_POLL,
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(RawRecvError::Timeout);
                    }
                    RECV_POLL.min(remaining)
                }
            };
            match rx.recv_timeout(slice) {
                Ok(msg) => return Ok((msg.tag, msg.payload)),
                Err(RecvTimeoutError::Disconnected) => return Err(RawRecvError::Disconnected),
                Err(RecvTimeoutError::Timeout) => {
                    if from != self.rank && self.shared.closed[from].load(Ordering::Acquire) {
                        // Drained and posted dead: re-check the queue
                        // once (a record may have landed between the
                        // slice expiring and the board read), then give
                        // the typed fast-fail.
                        match rx.try_recv() {
                            Some(msg) => return Ok((msg.tag, msg.payload)),
                            None => return Err(RawRecvError::Disconnected),
                        }
                    }
                }
            }
        }
    }

    fn barrier(&self) {
        let gen = self.barrier_gen.get() + 1;
        self.barrier_gen.set(gen);
        if self.world == 1 {
            return;
        }
        if self.rank == 0 {
            let mut early = self.early_arrivals.take();
            let mut arrived = 1 + early.remove(&gen).unwrap_or(0);
            while arrived < self.world {
                let (_, g) = self.arrive_rx.recv().expect("arrive channel open");
                if g == gen {
                    arrived += 1;
                } else {
                    *early.entry(g).or_insert(0) += 1;
                }
            }
            self.early_arrivals.set(early);
            for r in 1..self.world {
                let _ = self.write_to(r, CTRL_RELEASE, &gen.to_le_bytes());
            }
        } else {
            let _ = self.write_to(0, CTRL_ARRIVE, &gen.to_le_bytes());
            loop {
                let g = self.release_rx.recv().expect("release channel open");
                if g >= gen {
                    return;
                }
            }
        }
    }

    fn post_death(&self, rank: Rank) {
        if rank >= self.world {
            return;
        }
        self.shared.dead[rank].store(true, Ordering::Release);
        if rank == self.rank {
            // A simulated kill latched locally: tell every peer's board,
            // the cross-process analogue of the shared atomic flag.
            for r in 0..self.world {
                if r != self.rank {
                    let _ = self.write_to(r, CTRL_DEATH, &[rank as u8]);
                }
            }
        }
    }

    fn peer_dead(&self, rank: Rank) -> bool {
        rank < self.world && self.shared.dead[rank].load(Ordering::Acquire)
    }

    fn clear_death(&self, rank: Rank) {
        if rank < self.world {
            self.shared.dead[rank].store(false, Ordering::Release);
        }
    }

    fn always_framed(&self) -> bool {
        true
    }

    fn reconnectable(&self) -> bool {
        self.reconnectable
    }

    fn reset_link(&self, to: Rank) {
        // Drop the outbound stream: the peer's reader observes a real
        // EOF, and the next send re-dials and re-HELLOs on a fresh
        // connection (bumping the peer's generation) — a genuine link
        // flap, not a simulated one.
        if to < self.world && to != self.rank {
            *self.out[to].lock() = None;
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Close every outgoing stream (peers' readers see EOF), then
        // poke our own listener so the acceptor observes the flag.
        for slot in &self.out {
            *slot.lock() = None;
        }
        let _ = TcpStream::connect(&self.listen_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_grow_exponentially_within_jitter_bounds() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(2);
        let mut prev_nominal = Duration::ZERO;
        for attempt in 0..8 {
            let nominal = base.saturating_mul(1u32 << attempt).min(cap);
            let d = backoff_delay(attempt, base, cap, 42);
            assert!(
                d >= nominal.div_f64(2.0) && d <= nominal,
                "attempt {attempt}: delay {d:?} outside [half, full] of {nominal:?}"
            );
            assert!(nominal >= prev_nominal, "schedule must be monotone");
            prev_nominal = nominal;
        }
        // Pure in the key: same attempt + seed, same delay.
        assert_eq!(
            backoff_delay(3, base, cap, 9),
            backoff_delay(3, base, cap, 9)
        );
        assert_ne!(
            backoff_delay(3, base, cap, 9),
            backoff_delay(3, base, cap, 10)
        );
    }

    #[test]
    fn dead_rendezvous_fails_typed_not_panicking() {
        // A listener bound then dropped: the port actively refuses.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = match TcpBootstrap::new(dead.clone(), 0, 2)
            .with_rendezvous_attempts(2)
            .connect()
        {
            Ok(_) => panic!("dead rendezvous must fail"),
            Err(e) => e,
        };
        match err {
            BootstrapError::Rendezvous { addr, attempts, .. } => {
                assert_eq!(addr, dead);
                assert_eq!(attempts, 2);
            }
            other => panic!("want Rendezvous error, got {other}"),
        }
    }

    #[test]
    fn dial_backoff_rides_out_a_late_binding_listener() {
        // Reserve a port, free it, and rebind it only after a delay —
        // the first connect attempts refuse, a later one lands.
        let (addr, listener) = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            (l.local_addr().unwrap(), l)
        };
        drop(listener);
        let addr_str = addr.to_string();
        let rebind = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let l = TcpListener::bind(addr).expect("rebind reserved port");
            let _ = l.accept();
        });
        let got = dial_with_backoff(
            &addr_str,
            6,
            Duration::from_millis(20),
            Duration::from_millis(200),
            7,
        );
        assert!(got.is_ok(), "backoff dial should land once bound: {got:?}");
        rebind.join().unwrap();
    }

    #[test]
    fn rendezvous_store_round_trips_and_prefills_a_restart() {
        let dir = std::env::temp_dir().join(format!("schemoe-rdv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("rendezvous.map");
        let _ = std::fs::remove_file(&store);

        // First incarnation: both ranks join, map is broadcast and
        // persisted, service exits (non-persistent).
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let rdv1 = l1.local_addr().unwrap().to_string();
        let s1 = store.clone();
        let serve1 =
            std::thread::spawn(move || serve_rendezvous_with_store(l1, 2, false, Some(s1)));
        let join = |rdv: String, rank: usize, addr: &str| -> String {
            let mut c = TcpStream::connect(&rdv).unwrap();
            c.write_all(format!("JOIN {rank} {addr}\n").as_bytes())
                .unwrap();
            let mut line = String::new();
            BufReader::new(c).read_line(&mut line).unwrap();
            line
        };
        let j0 = std::thread::spawn({
            let rdv = rdv1.clone();
            move || join(rdv, 0, "10.0.0.1:5000")
        });
        let map1 = join(rdv1, 1, "10.0.0.2:5001");
        assert_eq!(map1.trim(), "MAP 10.0.0.1:5000 10.0.0.2:5001");
        j0.join().unwrap();
        serve1.join().unwrap();
        assert_eq!(
            load_store(&store, 2),
            vec![
                Some("10.0.0.1:5000".to_string()),
                Some("10.0.0.2:5001".to_string())
            ]
        );

        // Second incarnation over the same store: pre-filled, so a
        // single rejoiner is answered immediately with the full map
        // (its own entry updated to the fresh address).
        let l2 = TcpListener::bind("127.0.0.1:0").unwrap();
        let rdv2 = l2.local_addr().unwrap().to_string();
        let s2 = store.clone();
        std::thread::spawn(move || serve_rendezvous_with_store(l2, 2, true, Some(s2)));
        let map2 = join(rdv2, 1, "10.0.0.2:6001");
        assert_eq!(map2.trim(), "MAP 10.0.0.1:5000 10.0.0.2:6001");
        assert_eq!(
            load_store(&store, 2),
            vec![
                Some("10.0.0.1:5000".to_string()),
                Some("10.0.0.2:6001".to_string())
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_stores_degrade_to_partial_prefill() {
        let dir = std::env::temp_dir().join(format!("schemoe-rdv-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("rendezvous.map");
        std::fs::write(&store, "0 1.2.3.4:1\ngarbage\n9 out.of:range\n1\n").unwrap();
        assert_eq!(
            load_store(&store, 2),
            vec![Some("1.2.3.4:1".to_string()), None]
        );
        assert_eq!(load_store(&dir.join("missing.map"), 2), vec![None, None]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
