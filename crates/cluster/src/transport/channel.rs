//! Reference transport: ranks are threads, links are unbounded channels.
//!
//! This is the original in-process fabric interconnect, unchanged in
//! behavior: one channel per ordered rank pair so sends never block, a
//! [`std::sync::Barrier`] shared by the mesh, and a process-local
//! liveness board of atomics. Payloads travel as the fabric hands them
//! over — framing only happens above the transport, when a fault plan
//! asks for it — so channel-backed runs stay bit-identical to every
//! pre-trait chaos replay.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use super::{LinkClosed, RawRecvError, Transport};
use crate::topology::Rank;

struct Msg {
    tag: u64,
    payload: Bytes,
}

/// One rank's endpoint into an in-process channel mesh.
pub struct ChannelTransport {
    senders: Vec<Sender<Msg>>,
    receivers: Vec<Receiver<Msg>>,
    barrier: Arc<Barrier>,
    dead_board: Arc<Vec<AtomicBool>>,
}

/// Builds the full p×p channel mesh and returns one endpoint per rank.
pub fn mesh(world: usize) -> Vec<ChannelTransport> {
    // channel[i][j]: endpoint pair carrying messages from i to j.
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = Vec::with_capacity(world);
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..world)
        .map(|_| (0..world).map(|_| None).collect::<Vec<_>>())
        .collect();
    for i in 0..world {
        let mut row = Vec::with_capacity(world);
        for j in 0..world {
            let (tx, rx) = unbounded();
            row.push(Some(tx));
            receivers[j][i] = Some(rx);
        }
        senders.push(row);
    }
    let barrier = Arc::new(Barrier::new(world));
    let dead_board = Arc::new(
        (0..world)
            .map(|_| AtomicBool::new(false))
            .collect::<Vec<_>>(),
    );
    senders
        .into_iter()
        .zip(receivers)
        .map(|(sender_row, receiver_row)| ChannelTransport {
            senders: sender_row.into_iter().map(|s| s.expect("filled")).collect(),
            receivers: receiver_row
                .into_iter()
                .map(|r| r.expect("filled"))
                .collect(),
            barrier: Arc::clone(&barrier),
            dead_board: Arc::clone(&dead_board),
        })
        .collect()
}

impl Transport for ChannelTransport {
    fn world_size(&self) -> usize {
        self.senders.len()
    }

    fn send_raw(&self, to: Rank, tag: u64, payload: Bytes) -> Result<(), LinkClosed> {
        self.senders[to]
            .send(Msg { tag, payload })
            .map_err(|_| LinkClosed)
    }

    fn recv_raw(
        &self,
        from: Rank,
        timeout: Option<Duration>,
    ) -> Result<(u64, Bytes), RawRecvError> {
        match timeout {
            None => self.receivers[from]
                .recv()
                .map(|m| (m.tag, m.payload))
                .map_err(|_| RawRecvError::Disconnected),
            Some(t) => self.receivers[from]
                .recv_timeout(t)
                .map(|m| (m.tag, m.payload))
                .map_err(|e| match e {
                    RecvTimeoutError::Timeout => RawRecvError::Timeout,
                    RecvTimeoutError::Disconnected => RawRecvError::Disconnected,
                }),
        }
    }

    fn barrier(&self) {
        self.barrier.wait();
    }

    fn post_death(&self, rank: Rank) {
        if rank < self.dead_board.len() {
            self.dead_board[rank].store(true, Ordering::Release);
        }
    }

    fn peer_dead(&self, rank: Rank) -> bool {
        rank < self.dead_board.len() && self.dead_board[rank].load(Ordering::Acquire)
    }

    fn clear_death(&self, rank: Rank) {
        if rank < self.dead_board.len() {
            self.dead_board[rank].store(false, Ordering::Release);
        }
    }

    fn always_framed(&self) -> bool {
        false
    }

    fn reconnectable(&self) -> bool {
        false
    }
}
