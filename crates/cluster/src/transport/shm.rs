//! Shared-memory transport: one host, ranks as OS processes, links as
//! single-producer single-consumer ring buffers in `/dev/shm`.
//!
//! A session is a directory of plain files on a tmpfs (falling back to
//! the system temp dir when `/dev/shm` is absent):
//!
//! * `board` — one 64-byte slot per rank: a dead flag (the cluster
//!   liveness board), a done flag (set when the rank's endpoint drops,
//!   the analogue of a dropped channel), a barrier generation counter,
//!   and the attached process id.
//! * `link_{src}_{dst}` — one ring per directed link: a producer cursor
//!   (`head`, bytes ever written) at offset 0, a consumer cursor
//!   (`tail`, bytes ever read) at offset 64 — separate cache lines —
//!   and a byte-wrapped data region from offset 128. Records are
//!   `[tag u64-le][len u64-le][payload]`.
//!
//! Ranks access the files with positioned reads and writes
//! ([`std::os::unix::fs::FileExt`]); on a tmpfs these hit the shared
//! page cache directly, so the files *are* the shared memory — no
//! copies touch a disk. (A true `mmap` would shave the syscall per
//! access, but needs `libc`, which this workspace does not vendor; the
//! page-cache path keeps the backend std-only.) Cursors are 8-byte
//! aligned single-word writes, which Linux performs atomically through
//! the page cache, and each ring has exactly one producer and one
//! consumer, so `head`/`tail` publication needs no locks: a producer
//! writes payload bytes first and publishes `head` last, a consumer
//! reads payload first and publishes `tail` last.
//!
//! Real process death is detected by liveness-probing the registered
//! pid via `/proc/<pid>`: a vanished producer turns the link into
//! [`RawRecvError::Disconnected`], the same typed signal a dropped
//! channel gives in-process. Ring capacity defaults to 8 MiB per link
//! (sparse until touched) and is overridable via `SCHEMOE_SHM_RING_CAP`.

use std::cell::Cell;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use super::{LinkClosed, RawRecvError, Transport};
use crate::topology::Rank;

/// Per-rank slot size in the board file.
const SLOT: u64 = 64;
/// Slot offsets: dead flag, done flag, barrier generation, pid.
const SLOT_DEAD: u64 = 0;
const SLOT_DONE: u64 = 1;
const SLOT_GEN: u64 = 8;
const SLOT_PID: u64 = 16;

/// Ring file offsets: producer cursor, consumer cursor, data region.
const HEAD_OFF: u64 = 0;
const TAIL_OFF: u64 = 64;
const DATA_OFF: u64 = 128;
/// Record header: `[tag u64][len u64]`.
const REC_HEADER: u64 = 16;

/// Poll interval while a ring is empty or full.
const POLL: Duration = Duration::from_micros(100);
/// Empty polls between `/proc/<pid>` liveness probes (~6 ms apart).
const PID_PROBE_EVERY: u32 = 64;

/// Default per-link ring capacity; the file is sparse until touched.
const DEFAULT_RING_CAP: u64 = 8 * 1024 * 1024;

fn ring_cap() -> u64 {
    std::env::var("SCHEMOE_SHM_RING_CAP")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(DEFAULT_RING_CAP, |c| c.max(4096))
}

fn board_path(dir: &Path) -> PathBuf {
    dir.join("board")
}

fn link_path(dir: &Path, src: Rank, dst: Rank) -> PathBuf {
    dir.join(format!("link_{src}_{dst}"))
}

/// Creates a session directory with the board and all p×p link rings.
/// The launcher calls this once before spawning workers; in-process
/// meshes call it through [`mesh`].
pub fn init_session(dir: &Path, world: usize) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let board = File::create(board_path(dir))?;
    board.set_len(world as u64 * SLOT)?;
    let cap = ring_cap();
    for src in 0..world {
        for dst in 0..world {
            let ring = File::create(link_path(dir, src, dst))?;
            ring.set_len(DATA_OFF + cap)?;
        }
    }
    Ok(())
}

/// The base directory for fresh sessions: a tmpfs when available.
pub fn session_base() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    }
}

/// Removes the session directory when the last in-process endpoint
/// drops.
struct SessionGuard {
    dir: PathBuf,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// A shared-memory session to attach to as one rank.
pub struct ShmBootstrap {
    dir: PathBuf,
    rank: Rank,
    world: usize,
    guard: Option<Arc<SessionGuard>>,
}

impl ShmBootstrap {
    /// Attaches to an existing session (created by [`init_session`]).
    /// Used by spawned worker processes; `dir` outlives the bootstrap.
    pub fn new(dir: impl Into<PathBuf>, rank: Rank, world: usize) -> Self {
        ShmBootstrap {
            dir: dir.into(),
            rank,
            world,
            guard: None,
        }
    }

    /// Opens the session files and registers this process.
    pub fn attach(self) -> ShmTransport {
        ShmTransport::attach(self).expect("shm session attach")
    }
}

/// Builds an in-process session and returns one bootstrap per rank. The
/// session directory is removed when the last endpoint drops.
pub fn mesh(world: usize) -> Vec<ShmBootstrap> {
    static NEXT_SESSION: AtomicU64 = AtomicU64::new(0);
    let n = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
    let dir = session_base().join(format!("schemoe-{}-{}", std::process::id(), n));
    init_session(&dir, world).expect("shm session init");
    let guard = Arc::new(SessionGuard { dir: dir.clone() });
    (0..world)
        .map(|rank| ShmBootstrap {
            dir: dir.clone(),
            rank,
            world,
            guard: Some(Arc::clone(&guard)),
        })
        .collect()
}

fn read_u64(file: &File, off: u64) -> u64 {
    let mut buf = [0u8; 8];
    file.read_exact_at(&mut buf, off).expect("shm read");
    u64::from_le_bytes(buf)
}

fn write_u64(file: &File, off: u64, v: u64) {
    file.write_all_at(&v.to_le_bytes(), off).expect("shm write");
}

fn read_flag(file: &File, off: u64) -> bool {
    let mut buf = [0u8; 1];
    file.read_exact_at(&mut buf, off).expect("shm read");
    buf[0] != 0
}

fn write_flag(file: &File, off: u64, v: bool) {
    file.write_all_at(&[v as u8], off).expect("shm write");
}

/// One directed link's ring file plus its capacity.
struct Ring {
    file: File,
    cap: u64,
}

impl Ring {
    fn open(path: &Path) -> io::Result<Ring> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        assert!(len > DATA_OFF, "ring file too small: {path:?}");
        Ok(Ring {
            file,
            cap: len - DATA_OFF,
        })
    }

    /// Copies `bytes` into the data region at logical cursor `pos`,
    /// wrapping at the capacity boundary.
    fn write_wrapped(&self, pos: u64, bytes: &[u8]) {
        let off = pos % self.cap;
        let first = ((self.cap - off) as usize).min(bytes.len());
        self.file
            .write_all_at(&bytes[..first], DATA_OFF + off)
            .expect("shm ring write");
        if first < bytes.len() {
            self.file
                .write_all_at(&bytes[first..], DATA_OFF)
                .expect("shm ring write");
        }
    }

    /// Reads `len` bytes from the data region at logical cursor `pos`.
    fn read_wrapped(&self, pos: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        let off = pos % self.cap;
        let first = ((self.cap - off) as usize).min(len);
        self.file
            .read_exact_at(&mut buf[..first], DATA_OFF + off)
            .expect("shm ring read");
        if first < len {
            self.file
                .read_exact_at(&mut buf[first..], DATA_OFF)
                .expect("shm ring read");
        }
        buf
    }

    /// Appends one record if the ring has room; `false` means full.
    fn try_push(&self, tag: u64, payload: &[u8]) -> bool {
        let rec = REC_HEADER + payload.len() as u64;
        assert!(
            rec <= self.cap,
            "record of {} bytes exceeds the {}-byte ring; raise SCHEMOE_SHM_RING_CAP",
            payload.len(),
            self.cap
        );
        let head = read_u64(&self.file, HEAD_OFF);
        let tail = read_u64(&self.file, TAIL_OFF);
        if head - tail + rec > self.cap {
            return false;
        }
        let mut header = [0u8; REC_HEADER as usize];
        header[..8].copy_from_slice(&tag.to_le_bytes());
        header[8..].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        self.write_wrapped(head, &header);
        self.write_wrapped(head + REC_HEADER, payload);
        // Publish last: a consumer that observes the new head is
        // guaranteed to observe the record bytes (positioned writes from
        // one process are ordered through the page cache).
        write_u64(&self.file, HEAD_OFF, head + rec);
        true
    }

    /// Removes and returns the next record, if any.
    fn try_pop(&self) -> Option<(u64, Bytes)> {
        let head = read_u64(&self.file, HEAD_OFF);
        let tail = read_u64(&self.file, TAIL_OFF);
        if head == tail {
            return None;
        }
        let header = self.read_wrapped(tail, REC_HEADER as usize);
        let tag = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(header[8..].try_into().expect("8 bytes")) as usize;
        let payload = self.read_wrapped(tail + REC_HEADER, len);
        write_u64(&self.file, TAIL_OFF, tail + REC_HEADER + len as u64);
        Some((tag, Bytes::from(payload)))
    }
}

/// One rank's endpoint into a shared-memory session.
pub struct ShmTransport {
    rank: Rank,
    world: usize,
    board: File,
    /// Rings this rank produces into (`rank -> j`).
    send_rings: Vec<Ring>,
    /// Rings this rank consumes from (`i -> rank`).
    recv_rings: Vec<Ring>,
    /// Barrier generation this endpoint has entered.
    barrier_gen: Cell<u64>,
    /// Per-peer empty-poll counters driving pid liveness probes.
    probe_countdown: Vec<Cell<u32>>,
    _guard: Option<Arc<SessionGuard>>,
}

impl ShmTransport {
    fn attach(b: ShmBootstrap) -> io::Result<ShmTransport> {
        let board = OpenOptions::new()
            .read(true)
            .write(true)
            .open(board_path(&b.dir))?;
        let send_rings = (0..b.world)
            .map(|j| Ring::open(&link_path(&b.dir, b.rank, j)))
            .collect::<io::Result<Vec<_>>>()?;
        let recv_rings = (0..b.world)
            .map(|i| Ring::open(&link_path(&b.dir, i, b.rank)))
            .collect::<io::Result<Vec<_>>>()?;
        let slot = b.rank as u64 * SLOT;
        // A respawned process re-attaching as a rejoiner resumes the
        // slot: it is producing again (clear done) but stays on the dead
        // board until the rejoin protocol re-admits it.
        write_flag(&board, slot + SLOT_DONE, false);
        write_u64(&board, slot + SLOT_PID, std::process::id() as u64);
        let gen = read_u64(&board, slot + SLOT_GEN);
        Ok(ShmTransport {
            rank: b.rank,
            world: b.world,
            board,
            send_rings,
            recv_rings,
            barrier_gen: Cell::new(gen),
            probe_countdown: (0..b.world).map(|_| Cell::new(PID_PROBE_EVERY)).collect(),
            _guard: b.guard,
        })
    }

    fn slot(&self, rank: Rank) -> u64 {
        rank as u64 * SLOT
    }

    fn done(&self, rank: Rank) -> bool {
        read_flag(&self.board, self.slot(rank) + SLOT_DONE)
    }

    /// True when `rank`'s registered process has vanished from the host.
    /// Skipped for in-process peers (same pid) and unregistered slots.
    fn process_gone(&self, rank: Rank) -> bool {
        let pid = read_u64(&self.board, self.slot(rank) + SLOT_PID);
        if pid == 0 || pid == std::process::id() as u64 {
            return false;
        }
        !Path::new(&format!("/proc/{pid}")).exists()
    }
}

impl Transport for ShmTransport {
    fn world_size(&self) -> usize {
        self.world
    }

    fn send_raw(&self, to: Rank, tag: u64, payload: Bytes) -> Result<(), LinkClosed> {
        let ring = &self.send_rings[to];
        loop {
            if ring.try_push(tag, &payload) {
                return Ok(());
            }
            // Backpressure: the ring is full. A consumer that is done or
            // whose process is gone will never drain it.
            if self.done(to) || self.process_gone(to) {
                return Err(LinkClosed);
            }
            std::thread::sleep(POLL);
        }
    }

    fn recv_raw(
        &self,
        from: Rank,
        timeout: Option<Duration>,
    ) -> Result<(u64, Bytes), RawRecvError> {
        let ring = &self.recv_rings[from];
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(rec) = ring.try_pop() {
                return Ok(rec);
            }
            // Empty and the producer will never push again: the typed
            // fast-fail a dropped channel gives in-process.
            if self.done(from) {
                return Err(RawRecvError::Disconnected);
            }
            let countdown = &self.probe_countdown[from];
            countdown.set(countdown.get().saturating_sub(1));
            if countdown.get() == 0 {
                countdown.set(PID_PROBE_EVERY);
                if self.process_gone(from) {
                    // A SIGKILLed producer: post it dead so every peer's
                    // deadline checks fail fast, then surface the same
                    // signal its closed channel would have.
                    self.post_death(from);
                    write_flag(&self.board, self.slot(from) + SLOT_DONE, true);
                    return Err(RawRecvError::Disconnected);
                }
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(RawRecvError::Timeout);
                }
            }
            std::thread::sleep(POLL);
        }
    }

    fn barrier(&self) {
        let gen = self.barrier_gen.get() + 1;
        self.barrier_gen.set(gen);
        write_u64(&self.board, self.slot(self.rank) + SLOT_GEN, gen);
        for r in 0..self.world {
            while read_u64(&self.board, self.slot(r) + SLOT_GEN) < gen {
                std::thread::sleep(POLL);
            }
        }
    }

    fn post_death(&self, rank: Rank) {
        if rank < self.world {
            write_flag(&self.board, self.slot(rank) + SLOT_DEAD, true);
        }
    }

    fn peer_dead(&self, rank: Rank) -> bool {
        rank < self.world && read_flag(&self.board, self.slot(rank) + SLOT_DEAD)
    }

    fn clear_death(&self, rank: Rank) {
        if rank < self.world {
            write_flag(&self.board, self.slot(rank) + SLOT_DEAD, false);
        }
    }

    fn always_framed(&self) -> bool {
        true
    }

    fn reconnectable(&self) -> bool {
        true
    }
}

impl Drop for ShmTransport {
    fn drop(&mut self) {
        // The analogue of dropping channel endpoints: peers' receives
        // drain what was queued, then fail typed instead of hanging.
        write_flag(&self.board, self.slot(self.rank) + SLOT_DONE, true);
    }
}
