//! Network chaos at the transport boundary: a decorator that injects
//! seeded, replayable *socket-level* faults into any [`Transport`].
//!
//! The frame-level [`FaultPlan`](crate::faults::FaultPlan) models damage
//! to individual messages — drops, bit flips, stalls — but it cannot
//! express the failure class real networks are actually made of: the
//! *link* misbehaving. A [`ChaosPlan`] describes exactly that vocabulary:
//!
//! * **Blackholes** — a directed link silently eats every send for an
//!   index window. Two opposing windows make a symmetric partition
//!   ([`partition`](ChaosPlan::partition)); a single window makes an
//!   **asymmetric** one (A→B delivers while B→A vanishes), the failure
//!   mode that splits gossip protocols worst.
//! * **Flaps** — the link *closes*: sends fail typed with [`LinkClosed`]
//!   for the window, and on entry the decorator tears down the physical
//!   stream ([`Transport::reset_link`]) so a real TCP peer observes EOF
//!   and the post-window recovery travels a genuinely fresh connection
//!   (new `HELLO`, bumped generation).
//! * **Refusals** — dialing fails: sends error typed for the window but
//!   the existing stream is left alone, modelling a peer whose listener
//!   is up-and-refusing rather than gone.
//! * **Shaping** — per-link fixed latency and bandwidth ceilings charge
//!   wall-clock on delivered sends, and a per-link loss probability
//!   drops individual records by seeded lottery.
//!
//! # Determinism
//!
//! Every decision is a pure function of `(seed, src, dst, per-link
//! outbound index, fault kind)` — the same splitmix64 discipline as
//! [`crate::faults`], no RNG state and no wall clock — so a chaos
//! campaign replays bit-identically from nothing but its seed. The one
//! deliberate exception is [`heal_after`](ChaosPlan::heal_after): a
//! wall-clock switch that ends *all* chaos after a duration, used by the
//! multi-process launcher where rank processes have no shared send
//! counter to key a deterministic heal on. Deterministic campaigns use
//! index windows and leave it unset.
//!
//! Faults are applied on the *sender's* side only: the decorator never
//! touches `recv_raw`, so a blackholed link looks to the receiver like
//! pure silence — exactly what its liveness deadline is for.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use super::{LinkClosed, RawRecvError, Transport};
use crate::topology::Rank;

/// Shaping parameters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosLink {
    /// Probability an individual delivered send silently vanishes.
    pub loss_prob: f64,
    /// Fixed latency charged to every delivered send (the sender
    /// blocks, modelling propagation delay).
    pub latency: Duration,
    /// Bandwidth ceiling in bytes/second; delivered sends additionally
    /// block for `len / bytes_per_sec`. `None` means unshaped.
    pub bytes_per_sec: Option<u64>,
}

/// What the plan decided for one concrete send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDecision {
    /// Deliver (possibly shaped — see [`ChaosPlan::shaping_delay`]).
    Deliver,
    /// Silently discard; the sender believes the send succeeded.
    Blackhole,
    /// Fail typed with [`LinkClosed`] and tear down the physical stream
    /// on window entry, so the peer observes EOF.
    FlapClose,
    /// Fail typed with [`LinkClosed`], stream left intact (a refused
    /// dial, not a torn link).
    Refuse,
}

/// A seeded, replayable description of how the *network* misbehaves.
///
/// Windows are half-open index ranges `[start, end)` over the directed
/// link's outbound send counter — the n-th send from `src` to `dst`
/// meets the same fate in every run.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    seed: u64,
    blackholes: HashMap<(Rank, Rank), Vec<(u64, u64)>>,
    flaps: HashMap<(Rank, Rank), Vec<(u64, u64)>>,
    refusals: HashMap<(Rank, Rank), Vec<(u64, u64)>>,
    links: HashMap<(Rank, Rank), ChaosLink>,
    /// Rank-wide shaping: applied to every link touching the rank (either
    /// direction) that has no explicit `links` entry.
    slow_ranks: HashMap<Rank, ChaosLink>,
    heal_after: Option<Duration>,
}

/// Reference bandwidth [`ChaosPlan::slow_rank`] divides by its
/// `bw_factor`: 1 GiB/s, a healthy datacenter NIC.
pub const NOMINAL_BW: u64 = 1 << 30;

impl ChaosPlan {
    /// A plan with the given replay seed and no chaos configured yet.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Blackholes the directed link `src -> dst` for sends with index in
    /// `[start, end)`. The opposite direction is untouched — this is the
    /// asymmetric-partition primitive.
    pub fn blackhole_window(mut self, src: Rank, dst: Rank, start: u64, end: u64) -> Self {
        self.blackholes
            .entry((src, dst))
            .or_default()
            .push((start, end));
        self
    }

    /// Symmetric partition: blackholes *both* directions of every
    /// cross-group link between `a` and `b` for the index window
    /// `[start, end)`. Traffic within each group is untouched.
    pub fn partition(mut self, a: &[Rank], b: &[Rank], start: u64, end: u64) -> Self {
        for &x in a {
            for &y in b {
                self.blackholes
                    .entry((x, y))
                    .or_default()
                    .push((start, end));
                self.blackholes
                    .entry((y, x))
                    .or_default()
                    .push((start, end));
            }
        }
        self
    }

    /// Flaps the directed link: sends in `[start, end)` fail with
    /// [`LinkClosed`], and the underlying stream is torn down on window
    /// entry so a connection-oriented backend re-handshakes after.
    pub fn flap_window(mut self, src: Rank, dst: Rank, start: u64, end: u64) -> Self {
        self.flaps.entry((src, dst)).or_default().push((start, end));
        self
    }

    /// Refuses the directed link: sends in `[start, end)` fail with
    /// [`LinkClosed`] but the existing stream is left alone.
    pub fn refuse_window(mut self, src: Rank, dst: Rank, start: u64, end: u64) -> Self {
        self.refusals
            .entry((src, dst))
            .or_default()
            .push((start, end));
        self
    }

    /// Sets the loss/latency/bandwidth shaping of one directed link.
    pub fn with_link(mut self, src: Rank, dst: Rank, link: ChaosLink) -> Self {
        self.links.insert((src, dst), link);
        self
    }

    /// Gray-failure primitive: shapes **every link touching `rank`**, in
    /// both directions, with the given fixed latency and a bandwidth
    /// ceiling of [`NOMINAL_BW`]` / bw_factor` (`bw_factor <= 0` leaves
    /// bandwidth unshaped). The rank stays up and correct — it is merely
    /// slow to talk to, the classic gray failure a liveness probe misses.
    /// Explicit [`with_link`](Self::with_link) entries take precedence on
    /// their links.
    pub fn slow_rank(mut self, rank: Rank, latency: Duration, bw_factor: f64) -> Self {
        let bytes_per_sec = (bw_factor > 0.0).then(|| (NOMINAL_BW as f64 / bw_factor) as u64);
        self.slow_ranks.insert(
            rank,
            ChaosLink {
                loss_prob: 0.0,
                latency,
                bytes_per_sec,
            },
        );
        self
    }

    /// The shaping in force on `src -> dst`: the explicit link entry if
    /// one exists, else the rank-wide entry of whichever endpoint is
    /// marked slow (source first).
    fn link_for(&self, src: Rank, dst: Rank) -> Option<&ChaosLink> {
        self.links
            .get(&(src, dst))
            .or_else(|| self.slow_ranks.get(&src))
            .or_else(|| self.slow_ranks.get(&dst))
    }

    /// Wall-clock heal: all chaos ends `after` the decorator's
    /// construction. **Not deterministic** — launcher-only; seeded
    /// campaigns should close their windows by index instead.
    pub fn heal_after(mut self, after: Duration) -> Self {
        self.heal_after = Some(after);
        self
    }

    /// The configured wall-clock heal, if any.
    pub fn heal_deadline(&self) -> Option<Duration> {
        self.heal_after
    }

    fn in_window(
        windows: &HashMap<(Rank, Rank), Vec<(u64, u64)>>,
        key: (Rank, Rank),
        idx: u64,
    ) -> bool {
        windows
            .get(&key)
            .is_some_and(|ws| ws.iter().any(|&(s, e)| idx >= s && idx < e))
    }

    /// True when `idx` is the first index of some flap window on the
    /// link — the one send that tears the physical stream down.
    fn flap_entry(&self, src: Rank, dst: Rank, idx: u64) -> bool {
        self.flaps
            .get(&(src, dst))
            .is_some_and(|ws| ws.iter().any(|&(s, e)| idx == s && s < e))
    }

    /// Decides the fate of the `idx`-th send on `src -> dst`. Pure in
    /// `(plan, src, dst, idx)`. Precedence: flap > refuse > blackhole >
    /// loss lottery.
    pub fn decide(&self, src: Rank, dst: Rank, idx: u64) -> ChaosDecision {
        let key = (src, dst);
        if Self::in_window(&self.flaps, key, idx) {
            return ChaosDecision::FlapClose;
        }
        if Self::in_window(&self.refusals, key, idx) {
            return ChaosDecision::Refuse;
        }
        if Self::in_window(&self.blackholes, key, idx) {
            return ChaosDecision::Blackhole;
        }
        if let Some(link) = self.link_for(src, dst) {
            if link.loss_prob > 0.0 && self.roll(src, dst, idx) < link.loss_prob {
                return ChaosDecision::Blackhole;
            }
        }
        ChaosDecision::Deliver
    }

    /// The shaping stall charged to a delivered send of `len` bytes on
    /// `src -> dst` (fixed latency plus bandwidth serialization).
    pub fn shaping_delay(&self, src: Rank, dst: Rank, len: usize) -> Duration {
        let Some(link) = self.link_for(src, dst) else {
            return Duration::ZERO;
        };
        let bw = link.bytes_per_sec.map_or(Duration::ZERO, |bps| {
            Duration::from_secs_f64(len as f64 / bps.max(1) as f64)
        });
        link.latency + bw
    }

    /// A uniform roll in `[0, 1)` keyed by the send identity — the same
    /// splitmix64 finalizer discipline as the frame-level fault plan,
    /// with a distinct kind lane so the two lotteries never correlate.
    fn roll(&self, src: Rank, dst: Rank, idx: u64) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64) << 48)
            .wrapping_add((dst as u64) << 32)
            .wrapping_add(idx.wrapping_mul(4).wrapping_add(3));
        let h = splitmix64(key);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The splitmix64 finalizer (duplicated from `faults` to keep this
/// module free-standing; both must stay bit-identical).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wraps any transport endpoint in a [`ChaosPlan`].
///
/// One decorator per rank, wrapping that rank's endpoint; faults apply
/// to *outbound* sends only, keyed by a per-destination send counter, so
/// the two directions of a link are independent (asymmetric partitions
/// fall out for free). Everything else — receives, the barrier, the
/// liveness board — delegates untouched.
pub struct ChaosTransport {
    inner: Box<dyn Transport>,
    rank: Rank,
    plan: Arc<ChaosPlan>,
    /// Per-destination outbound send index.
    counters: Vec<AtomicU64>,
    /// Construction instant, anchoring the wall-clock heal.
    start: Instant,
}

impl ChaosTransport {
    /// Wraps `inner` (rank `rank`'s endpoint) in `plan`.
    pub fn new(inner: Box<dyn Transport>, rank: Rank, plan: Arc<ChaosPlan>) -> Self {
        let world = inner.world_size();
        ChaosTransport {
            inner,
            rank,
            plan,
            counters: (0..world).map(|_| AtomicU64::new(0)).collect(),
            start: Instant::now(),
        }
    }

    fn healed(&self) -> bool {
        self.plan
            .heal_deadline()
            .is_some_and(|d| self.start.elapsed() >= d)
    }
}

impl Transport for ChaosTransport {
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn send_raw(&self, to: Rank, tag: u64, payload: Bytes) -> Result<(), LinkClosed> {
        let idx = self.counters[to].fetch_add(1, Ordering::Relaxed);
        if to == self.rank || self.healed() {
            return self.inner.send_raw(to, tag, payload);
        }
        match self.plan.decide(self.rank, to, idx) {
            ChaosDecision::Deliver => {
                let stall = self.plan.shaping_delay(self.rank, to, payload.len());
                if !stall.is_zero() {
                    std::thread::sleep(stall);
                }
                self.inner.send_raw(to, tag, payload)
            }
            ChaosDecision::Blackhole => Ok(()),
            ChaosDecision::FlapClose => {
                if self.plan.flap_entry(self.rank, to, idx) {
                    self.inner.reset_link(to);
                }
                Err(LinkClosed)
            }
            ChaosDecision::Refuse => Err(LinkClosed),
        }
    }

    fn recv_raw(
        &self,
        from: Rank,
        timeout: Option<Duration>,
    ) -> Result<(u64, Bytes), RawRecvError> {
        self.inner.recv_raw(from, timeout)
    }

    fn barrier(&self) {
        self.inner.barrier();
    }

    fn post_death(&self, rank: Rank) {
        self.inner.post_death(rank);
    }

    fn peer_dead(&self, rank: Rank) -> bool {
        self.inner.peer_dead(rank)
    }

    fn clear_death(&self, rank: Rank) {
        self.inner.clear_death(rank)
    }

    fn always_framed(&self) -> bool {
        self.inner.always_framed()
    }

    fn reconnectable(&self) -> bool {
        // A chaos-excommunicated rank is never physically gone — its
        // process (or thread) is alive behind a misbehaving link — so
        // survivors must poll for its announce and it may rejoin without
        // a fault plan scheduling a revival.
        true
    }

    fn reset_link(&self, to: Rank) {
        self.inner.reset_link(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel;

    #[test]
    fn decisions_are_pure_in_the_key() {
        let plan = ChaosPlan::seeded(11)
            .blackhole_window(0, 1, 5, 10)
            .flap_window(1, 0, 3, 6)
            .refuse_window(2, 3, 0, 4)
            .with_link(
                0,
                2,
                ChaosLink {
                    loss_prob: 0.4,
                    ..ChaosLink::default()
                },
            );
        for src in 0..4 {
            for dst in 0..4 {
                for idx in 0..64 {
                    assert_eq!(
                        plan.decide(src, dst, idx),
                        plan.decide(src, dst, idx),
                        "decision not stable for ({src},{dst},{idx})"
                    );
                }
            }
        }
    }

    #[test]
    fn windows_are_half_open_and_directional() {
        let plan = ChaosPlan::seeded(1).blackhole_window(0, 1, 5, 10);
        assert_eq!(plan.decide(0, 1, 4), ChaosDecision::Deliver);
        assert_eq!(plan.decide(0, 1, 5), ChaosDecision::Blackhole);
        assert_eq!(plan.decide(0, 1, 9), ChaosDecision::Blackhole);
        assert_eq!(plan.decide(0, 1, 10), ChaosDecision::Deliver);
        // The reverse direction never saw a window.
        assert_eq!(plan.decide(1, 0, 7), ChaosDecision::Deliver);
    }

    #[test]
    fn partition_blackholes_exactly_the_cross_links() {
        let plan = ChaosPlan::seeded(2).partition(&[0, 1], &[2, 3], 0, 100);
        for (src, dst) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            assert_eq!(plan.decide(src, dst, 50), ChaosDecision::Blackhole);
            assert_eq!(plan.decide(dst, src, 50), ChaosDecision::Blackhole);
        }
        // Intra-group links are untouched.
        for (src, dst) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            assert_eq!(plan.decide(src, dst, 50), ChaosDecision::Deliver);
        }
    }

    #[test]
    fn flap_takes_precedence_and_marks_its_entry() {
        let plan = ChaosPlan::seeded(3)
            .flap_window(0, 1, 5, 8)
            .blackhole_window(0, 1, 0, 100);
        assert_eq!(plan.decide(0, 1, 6), ChaosDecision::FlapClose);
        assert!(plan.flap_entry(0, 1, 5));
        assert!(!plan.flap_entry(0, 1, 6));
        assert_eq!(plan.decide(0, 1, 4), ChaosDecision::Blackhole);
    }

    #[test]
    fn loss_rate_is_roughly_honoured_and_seed_dependent() {
        let link = ChaosLink {
            loss_prob: 0.25,
            ..ChaosLink::default()
        };
        let plan = ChaosPlan::seeded(7).with_link(0, 1, link);
        let n = 10_000u64;
        let dropped = (0..n)
            .filter(|&i| plan.decide(0, 1, i) == ChaosDecision::Blackhole)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate} far from 0.25");
        let other = ChaosPlan::seeded(8).with_link(0, 1, link);
        let seq =
            |p: &ChaosPlan| -> Vec<ChaosDecision> { (0..256).map(|i| p.decide(0, 1, i)).collect() };
        assert_ne!(seq(&plan), seq(&other));
    }

    #[test]
    fn shaping_charges_latency_plus_bandwidth() {
        let plan = ChaosPlan::seeded(4).with_link(
            0,
            1,
            ChaosLink {
                latency: Duration::from_millis(2),
                bytes_per_sec: Some(1_000_000),
                ..ChaosLink::default()
            },
        );
        // 1000 bytes at 1 MB/s = 1 ms, plus 2 ms latency.
        assert_eq!(plan.shaping_delay(0, 1, 1000), Duration::from_millis(3));
        assert_eq!(plan.shaping_delay(1, 0, 1000), Duration::ZERO);
    }

    #[test]
    fn slow_rank_shapes_every_touching_link_both_directions() {
        let plan = ChaosPlan::seeded(12).slow_rank(2, Duration::from_millis(5), 8.0);
        // 1 GiB/s / 8 = 128 MiB/s; 128 MiB of payload would take 1 s, so
        // 1 MiB takes ~7.8 ms on top of the 5 ms latency.
        let mib = 1 << 20;
        let d_out = plan.shaping_delay(2, 0, mib);
        let d_in = plan.shaping_delay(1, 2, mib);
        assert_eq!(d_out, d_in);
        assert!(d_out > Duration::from_millis(12), "got {d_out:?}");
        // Links not touching rank 2 are unshaped.
        assert_eq!(plan.shaping_delay(0, 1, mib), Duration::ZERO);
        // Zero-size sends still pay the latency.
        assert_eq!(plan.shaping_delay(0, 2, 0), Duration::from_millis(5));
    }

    #[test]
    fn explicit_link_entries_take_precedence_over_slow_rank() {
        let plan = ChaosPlan::seeded(13)
            .slow_rank(1, Duration::from_millis(10), 0.0)
            .with_link(
                0,
                1,
                ChaosLink {
                    latency: Duration::from_millis(1),
                    ..ChaosLink::default()
                },
            );
        assert_eq!(plan.shaping_delay(0, 1, 0), Duration::from_millis(1));
        assert_eq!(plan.shaping_delay(1, 0, 0), Duration::from_millis(10));
        // bw_factor <= 0 leaves bandwidth unshaped: latency only.
        assert_eq!(plan.shaping_delay(1, 0, 1 << 20), Duration::from_millis(10));
    }

    #[test]
    fn decorator_blackholes_sends_inside_the_window_only() {
        let mesh = channel::mesh(2);
        let mut it = mesh.into_iter();
        let a = ChaosTransport::new(
            Box::new(it.next().unwrap()),
            0,
            Arc::new(ChaosPlan::seeded(5).blackhole_window(0, 1, 1, 3)),
        );
        let b = it.next().unwrap();
        for i in 0..4u64 {
            a.send_raw(1, 7, Bytes::from(vec![i as u8])).unwrap();
        }
        // Indices 1 and 2 vanished; 0 and 3 arrive in order.
        let (_, p0) = b.recv_raw(0, Some(Duration::from_secs(1))).unwrap();
        let (_, p3) = b.recv_raw(0, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(p0.as_ref(), &[0]);
        assert_eq!(p3.as_ref(), &[3]);
        assert_eq!(
            b.recv_raw(0, Some(Duration::from_millis(20))),
            Err(RawRecvError::Timeout)
        );
    }

    #[test]
    fn decorator_fails_typed_during_flap_and_refusal_windows() {
        let mesh = channel::mesh(2);
        let mut it = mesh.into_iter();
        let a = ChaosTransport::new(
            Box::new(it.next().unwrap()),
            0,
            Arc::new(
                ChaosPlan::seeded(6)
                    .flap_window(0, 1, 0, 2)
                    .refuse_window(0, 1, 2, 4),
            ),
        );
        let b = it.next().unwrap();
        for _ in 0..4 {
            assert_eq!(a.send_raw(1, 7, Bytes::from_static(b"x")), Err(LinkClosed));
        }
        a.send_raw(1, 7, Bytes::from_static(b"ok")).unwrap();
        let (_, p) = b.recv_raw(0, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(p.as_ref(), b"ok");
    }

    #[test]
    fn self_sends_and_healed_plans_bypass_chaos() {
        let mesh = channel::mesh(2);
        let mut it = mesh.into_iter();
        let a = ChaosTransport::new(
            Box::new(it.next().unwrap()),
            0,
            Arc::new(
                ChaosPlan::seeded(9)
                    .blackhole_window(0, 0, 0, 100)
                    .blackhole_window(0, 1, 0, 100)
                    .heal_after(Duration::ZERO),
            ),
        );
        let b = it.next().unwrap();
        // heal_after(0) means every fault is already over.
        a.send_raw(1, 7, Bytes::from_static(b"healed")).unwrap();
        let (_, p) = b.recv_raw(0, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(p.as_ref(), b"healed");
        // Self-sends never consult the plan at all.
        a.send_raw(0, 7, Bytes::from_static(b"me")).unwrap();
        let (_, p) = a.recv_raw(0, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(p.as_ref(), b"me");
    }
}
