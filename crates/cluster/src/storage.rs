//! Durable storage: one atomic-commit helper and seeded *filesystem*
//! fault injection ([`ChaosFs`], the storage sibling of
//! [`ChaosTransport`](crate::transport::ChaosTransport)).
//!
//! Every durable artifact the system writes — the rendezvous store, the
//! snapshot shards, the snapshot manifest — goes through one discipline:
//! **write a sibling tmp file, fsync it, rename it over the target, and
//! fsync the parent directory**. A reader therefore observes either the
//! old complete file or the new complete file, never a torn hybrid, and
//! a crash at any instant leaves at worst an orphaned `.tmp` sibling.
//! [`write_atomic`] is that discipline; nothing else in the tree is
//! allowed to hand-roll it.
//!
//! The discipline is only trustworthy if it is *tested against the
//! failures it claims to survive*, which is what [`ChaosFs`] is for. It
//! decorates any [`StorageFs`] and injects the storage fault lattice:
//!
//! * **Torn writes** — only a prefix of the bytes reaches the file and
//!   the write fails as if the process died mid-`write(2)`.
//! * **ENOSPC** — the write fails typed after a partial prefix, the
//!   disk-full case that must not poison previously committed data.
//! * **Bitrot** — the write *succeeds* but one byte is silently flipped:
//!   the corruption class only an end-to-end checksum can catch, which
//!   is why every durable payload is CRC-sealed and parse-verified
//!   before any state is touched.
//! * **Crash-before-rename** — the rename fails and the tmp file is
//!   left orphaned, the exact window the atomic-commit rule exists for:
//!   the target keeps its previous committed content.
//!
//! # Determinism
//!
//! As with [`ChaosPlan`](crate::transport::ChaosPlan), every decision is
//! a pure function of `(seed, salt, per-op-kind index, fault kind)` via
//! the splitmix64 finalizer — no RNG state, no wall clock — so a storage
//! chaos campaign replays bit-identically from its seed. `salt` is the
//! decorator owner's identity (rank, in practice) so different ranks
//! draw independent lotteries from one shared plan, while index
//! *windows* hit every salt alike — the deterministic way to guarantee
//! a campaign exercises, say, a crash-before-rename on the third
//! rename no matter which rank performs it.
//!
//! Faults apply to *mutating* ops only (`write`, `rename`): reads are
//! never altered, so whatever a chaos run leaves on disk is exactly what
//! a later restore observes.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The filesystem surface durable artifacts go through. Object-safe so
/// [`ChaosFs`] can decorate any backend.
pub trait StorageFs: Send + Sync {
    /// Creates (or truncates) `path`, writes `bytes`, and makes the file
    /// itself durable (fsync) before returning.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` over `to` and makes the *directory entry* durable
    /// (fsync of the parent) before returning.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Reads the full contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the entries of `dir`, sorted by file name for determinism.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Recursively creates `dir`.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem, with the fsync discipline the trait promises.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl RealFs {
    fn sync_parent(path: &Path) -> io::Result<()> {
        // Directory fsync is what makes a rename durable on POSIX; on
        // platforms where opening a directory fails, the rename itself
        // is the best available barrier.
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = File::open(parent) {
                    dir.sync_all()?;
                }
            }
        }
        Ok(())
    }
}

impl StorageFs for RealFs {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)?;
        Self::sync_parent(to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        out.sort();
        Ok(out)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}

/// The tmp sibling `write_atomic` stages through: the target's file name
/// with `.tmp` appended (appended, not substituted, so targets with
/// meaningful extensions never collide).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The one durable-commit helper: write-tmp → fsync → rename → fsync
/// parent. On success the target holds exactly `bytes`; on failure the
/// target is untouched (at worst a `.tmp` sibling is orphaned, which
/// readers ignore and a later commit overwrites).
pub fn write_atomic(fs: &dyn StorageFs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    fs.write(&tmp, bytes)?;
    fs.rename(&tmp, path)
}

/// What the plan decided for one concrete write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFate {
    /// Write completes and is durable.
    Ok,
    /// Only a prefix reaches the file; the call fails as a mid-write
    /// crash would.
    Torn,
    /// Disk full: a prefix reaches the file and the call fails typed.
    Enospc,
    /// The write "succeeds" but one byte is silently flipped — the case
    /// only an end-to-end CRC catches.
    Bitrot,
}

/// What the plan decided for one concrete rename.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameFate {
    /// Rename commits.
    Ok,
    /// The process "crashed" before the rename: the call fails and the
    /// tmp file is left orphaned, target untouched.
    Crash,
}

/// A seeded, replayable description of how *storage* misbehaves.
///
/// Windows are half-open index ranges `[start, end)` over the
/// decorator's per-op-kind counter (the n-th write, the n-th rename) and
/// hit every salt alike; the per-kind probability lotteries are keyed by
/// `(seed, salt, kind, idx)` so different ranks draw independently.
#[derive(Debug, Clone, Default)]
pub struct ChaosFsPlan {
    seed: u64,
    torn: Vec<(u64, u64)>,
    enospc: Vec<(u64, u64)>,
    bitrot: Vec<(u64, u64)>,
    crash_rename: Vec<(u64, u64)>,
    torn_prob: f64,
    enospc_prob: f64,
    bitrot_prob: f64,
    crash_rename_prob: f64,
}

/// Lottery lanes, one per fault kind, so the draws never correlate.
const LANE_TORN: u64 = 0;
const LANE_ENOSPC: u64 = 1;
const LANE_BITROT: u64 = 2;
const LANE_CRASH: u64 = 3;
/// Lane for choosing *which* byte bitrot flips.
const LANE_BITPOS: u64 = 4;

impl ChaosFsPlan {
    /// A plan with the given replay seed and no faults configured yet.
    pub fn seeded(seed: u64) -> Self {
        ChaosFsPlan {
            seed,
            ..ChaosFsPlan::default()
        }
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Tears writes with index in `[start, end)`.
    pub fn torn_write_window(mut self, start: u64, end: u64) -> Self {
        self.torn.push((start, end));
        self
    }

    /// Fails writes with index in `[start, end)` with ENOSPC.
    pub fn enospc_window(mut self, start: u64, end: u64) -> Self {
        self.enospc.push((start, end));
        self
    }

    /// Silently flips one byte of writes with index in `[start, end)`.
    pub fn bitrot_window(mut self, start: u64, end: u64) -> Self {
        self.bitrot.push((start, end));
        self
    }

    /// Fails renames with index in `[start, end)`, orphaning the tmp —
    /// the crash-before-rename window.
    pub fn crash_rename_window(mut self, start: u64, end: u64) -> Self {
        self.crash_rename.push((start, end));
        self
    }

    /// Sets the per-write fault lotteries (torn / ENOSPC / bitrot).
    pub fn with_write_probs(mut self, torn: f64, enospc: f64, bitrot: f64) -> Self {
        self.torn_prob = torn;
        self.enospc_prob = enospc;
        self.bitrot_prob = bitrot;
        self
    }

    /// Sets the per-rename crash lottery.
    pub fn with_crash_rename_prob(mut self, p: f64) -> Self {
        self.crash_rename_prob = p;
        self
    }

    fn in_window(windows: &[(u64, u64)], idx: u64) -> bool {
        windows.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Decides the fate of the `idx`-th write by the decorator salted
    /// with `salt`. Pure in `(plan, salt, idx)`. Precedence: torn >
    /// ENOSPC > bitrot; windows before lotteries.
    pub fn decide_write(&self, salt: u64, idx: u64) -> WriteFate {
        if Self::in_window(&self.torn, idx) {
            return WriteFate::Torn;
        }
        if Self::in_window(&self.enospc, idx) {
            return WriteFate::Enospc;
        }
        if Self::in_window(&self.bitrot, idx) {
            return WriteFate::Bitrot;
        }
        if self.torn_prob > 0.0 && self.roll(salt, LANE_TORN, idx) < self.torn_prob {
            return WriteFate::Torn;
        }
        if self.enospc_prob > 0.0 && self.roll(salt, LANE_ENOSPC, idx) < self.enospc_prob {
            return WriteFate::Enospc;
        }
        if self.bitrot_prob > 0.0 && self.roll(salt, LANE_BITROT, idx) < self.bitrot_prob {
            return WriteFate::Bitrot;
        }
        WriteFate::Ok
    }

    /// Decides the fate of the `idx`-th rename. Pure in
    /// `(plan, salt, idx)`.
    pub fn decide_rename(&self, salt: u64, idx: u64) -> RenameFate {
        if Self::in_window(&self.crash_rename, idx) {
            return RenameFate::Crash;
        }
        if self.crash_rename_prob > 0.0 && self.roll(salt, LANE_CRASH, idx) < self.crash_rename_prob
        {
            return RenameFate::Crash;
        }
        RenameFate::Ok
    }

    /// Which byte of a `len`-byte bitrotted write gets flipped. Pure.
    pub fn bitrot_position(&self, salt: u64, idx: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.key(salt, LANE_BITPOS, idx) % len as u64) as usize
    }

    fn key(&self, salt: u64, lane: u64, idx: u64) -> u64 {
        splitmix64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt << 48)
                .wrapping_add(idx.wrapping_mul(8).wrapping_add(lane)),
        )
    }

    /// A uniform roll in `[0, 1)` keyed by the op identity — the same
    /// splitmix64 finalizer discipline as the transport chaos plan.
    fn roll(&self, salt: u64, lane: u64, idx: u64) -> f64 {
        (self.key(salt, lane, idx) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The splitmix64 finalizer (duplicated from `faults` to keep this
/// module free-standing; both must stay bit-identical).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wraps any [`StorageFs`] in a [`ChaosFsPlan`].
///
/// One decorator per writer (per rank, in practice), salted with the
/// writer's identity. Mutating ops consult the plan; reads, listing, and
/// directory creation delegate untouched — whatever chaos leaves on disk
/// is exactly what a restore later observes.
pub struct ChaosFs {
    inner: Box<dyn StorageFs>,
    plan: Arc<ChaosFsPlan>,
    salt: u64,
    writes: AtomicU64,
    renames: AtomicU64,
}

impl ChaosFs {
    /// Wraps `inner` in `plan`, drawing lotteries for writer `salt`.
    pub fn new(inner: Box<dyn StorageFs>, plan: Arc<ChaosFsPlan>, salt: u64) -> Self {
        ChaosFs {
            inner,
            plan,
            salt,
            writes: AtomicU64::new(0),
            renames: AtomicU64::new(0),
        }
    }
}

impl StorageFs for ChaosFs {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let idx = self.writes.fetch_add(1, Ordering::Relaxed);
        match self.plan.decide_write(self.salt, idx) {
            WriteFate::Ok => self.inner.write(path, bytes),
            WriteFate::Torn => {
                let _ = self.inner.write(path, &bytes[..bytes.len() / 2]);
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "chaosfs: torn write (simulated crash mid-write)",
                ))
            }
            WriteFate::Enospc => {
                let _ = self.inner.write(path, &bytes[..bytes.len() / 2]);
                Err(io::Error::other("chaosfs: no space left on device"))
            }
            WriteFate::Bitrot => {
                let mut rotted = bytes.to_vec();
                if !rotted.is_empty() {
                    let pos = self.plan.bitrot_position(self.salt, idx, rotted.len());
                    rotted[pos] ^= 0x40;
                }
                self.inner.write(path, &rotted)
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let idx = self.renames.fetch_add(1, Ordering::Relaxed);
        match self.plan.decide_rename(self.salt, idx) {
            RenameFate::Ok => self.inner.rename(from, to),
            RenameFate::Crash => Err(io::Error::other("chaosfs: crash before rename")),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fresh per-test scratch directory under the system tmp root.
    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("schemoe-storage-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn decisions_are_pure_in_the_key() {
        let plan = ChaosFsPlan::seeded(11)
            .torn_write_window(2, 4)
            .crash_rename_window(1, 2)
            .with_write_probs(0.1, 0.1, 0.1)
            .with_crash_rename_prob(0.2);
        for salt in 0..4u64 {
            for idx in 0..64 {
                assert_eq!(
                    plan.decide_write(salt, idx),
                    plan.decide_write(salt, idx),
                    "write decision not stable for ({salt},{idx})"
                );
                assert_eq!(
                    plan.decide_rename(salt, idx),
                    plan.decide_rename(salt, idx),
                    "rename decision not stable for ({salt},{idx})"
                );
            }
        }
    }

    #[test]
    fn windows_are_half_open_and_precedence_holds() {
        let plan = ChaosFsPlan::seeded(1)
            .torn_write_window(3, 5)
            .enospc_window(4, 6)
            .bitrot_window(5, 7);
        assert_eq!(plan.decide_write(0, 2), WriteFate::Ok);
        assert_eq!(plan.decide_write(0, 3), WriteFate::Torn);
        assert_eq!(plan.decide_write(0, 4), WriteFate::Torn);
        assert_eq!(plan.decide_write(0, 5), WriteFate::Enospc);
        assert_eq!(plan.decide_write(0, 6), WriteFate::Bitrot);
        assert_eq!(plan.decide_write(0, 7), WriteFate::Ok);
    }

    #[test]
    fn lotteries_are_salt_dependent_and_roughly_honoured() {
        let plan = ChaosFsPlan::seeded(7).with_write_probs(0.25, 0.0, 0.0);
        let n = 10_000u64;
        let torn = (0..n)
            .filter(|&i| plan.decide_write(0, i) == WriteFate::Torn)
            .count();
        let rate = torn as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "torn rate {rate} far from 0.25");
        let seq = |salt: u64| -> Vec<WriteFate> {
            (0..256).map(|i| plan.decide_write(salt, i)).collect()
        };
        assert_ne!(seq(0), seq(1), "salts must draw independent lotteries");
    }

    #[test]
    fn torn_write_leaves_a_prefix_and_fails() {
        let dir = scratch("torn");
        let fs = ChaosFs::new(
            Box::new(RealFs),
            Arc::new(ChaosFsPlan::seeded(2).torn_write_window(0, 1)),
            0,
        );
        let path = dir.join("artifact");
        let err = fs.write(&path, &[7u8; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(fs.read(&path).unwrap(), vec![7u8; 32]);
        // The next write is outside the window and heals the file.
        fs.write(&path, &[9u8; 64]).unwrap();
        assert_eq!(fs.read(&path).unwrap(), vec![9u8; 64]);
    }

    #[test]
    fn bitrot_flips_exactly_one_byte_and_reports_success() {
        let dir = scratch("bitrot");
        let fs = ChaosFs::new(
            Box::new(RealFs),
            Arc::new(ChaosFsPlan::seeded(3).bitrot_window(0, 1)),
            0,
        );
        let path = dir.join("artifact");
        let clean = vec![0u8; 128];
        fs.write(&path, &clean).unwrap();
        let rotted = fs.read(&path).unwrap();
        assert_eq!(rotted.len(), clean.len());
        let flipped: Vec<usize> = (0..clean.len())
            .filter(|&i| rotted[i] != clean[i])
            .collect();
        assert_eq!(flipped.len(), 1, "exactly one byte must differ");
    }

    #[test]
    fn crash_before_rename_orphans_tmp_and_keeps_the_old_target() {
        let dir = scratch("crash-rename");
        let path = dir.join("artifact");
        write_atomic(&RealFs, &path, b"generation-1").unwrap();
        let fs = ChaosFs::new(
            Box::new(RealFs),
            Arc::new(ChaosFsPlan::seeded(4).crash_rename_window(0, 1)),
            0,
        );
        assert!(write_atomic(&fs, &path, b"generation-2").is_err());
        // Old committed content survives; the tmp sibling is orphaned.
        assert_eq!(fs.read(&path).unwrap(), b"generation-1");
        assert_eq!(fs.read(&tmp_sibling(&path)).unwrap(), b"generation-2");
        // The next commit is outside the window and goes through.
        write_atomic(&fs, &path, b"generation-3").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"generation-3");
    }

    #[test]
    fn write_atomic_commits_and_leaves_no_tmp_on_success() {
        let dir = scratch("atomic");
        let path = dir.join("store.bin");
        write_atomic(&RealFs, &path, b"payload").unwrap();
        assert_eq!(RealFs.read(&path).unwrap(), b"payload");
        assert!(!tmp_sibling(&path).exists());
        // tmp naming appends rather than replacing the extension, so
        // distinct targets never share a staging file.
        assert_eq!(
            tmp_sibling(Path::new("/x/a.bin")),
            PathBuf::from("/x/a.bin.tmp")
        );
    }

    #[test]
    fn list_is_sorted_and_reads_pass_through_chaos() {
        let dir = scratch("list");
        let fs = ChaosFs::new(Box::new(RealFs), Arc::new(ChaosFsPlan::seeded(5)), 0);
        fs.write(&dir.join("b"), b"b").unwrap();
        fs.write(&dir.join("a"), b"a").unwrap();
        let names: Vec<String> = fs
            .list(&dir)
            .unwrap()
            .iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(fs.read(&dir.join("a")).unwrap(), b"a");
        fs.remove(&dir.join("a")).unwrap();
        assert!(!dir.join("a").exists());
    }
}
