//! Cluster topology, hardware profiles, memory accounting, and the
//! in-process rank fabric.
//!
//! This crate describes *where* things run:
//!
//! * [`Topology`] — an `N`-node cluster with `M` GPUs per node and the
//!   rank arithmetic (which ranks share a node) that every hierarchical
//!   all-to-all algorithm needs.
//! * [`HardwareProfile`] — the cost-model constants of a concrete testbed.
//!   [`HardwareProfile::paper_testbed`] reproduces the ScheMoE paper's
//!   8-node × 4× RTX 2080 Ti cluster (PCIe 3.0 x16 intra-node, shared
//!   100 Gb/s InfiniBand inter-node), calibrated against the paper's own
//!   published measurements.
//! * [`MemoryBudget`] — GPU memory accounting used to predict the
//!   out-of-memory cases the paper reports (Faster-MoE on BERT-Large-MoE,
//!   1DH-A2A at large message sizes, and the OOM-excluded sweep configs).
//! * [`fabric`] — a real message-passing fabric: every rank is a thread,
//!   channels are the interconnect. The functional all-to-all and
//!   distributed MoE layers run on it, so collective correctness is tested
//!   with real data movement rather than mocks.
//! * [`faults`] — deterministic, seeded fault injection for the fabric:
//!   per-link drop/delay/corrupt rates, per-rank kill and revive points,
//!   and the epoch-stamped CRC32 wire framing that turns bit damage into
//!   typed [`FabricError::Corrupt`] errors and stale-membership traffic
//!   into [`FabricError::StaleEpoch`]. Chaos runs replay bit-identically
//!   from the seed alone.

pub mod fabric;
pub mod faults;
pub mod hardware;
pub mod memory;
pub mod storage;
pub mod topology;
pub mod transport;

pub use fabric::{AdaptiveDeadline, Fabric, FabricError, RankHandle, WireModel};
pub use faults::{FaultDecision, FaultPlan, LinkFaults, EPOCH_ANY};
pub use hardware::HardwareProfile;
pub use memory::MemoryBudget;
pub use storage::{write_atomic, ChaosFs, ChaosFsPlan, RealFs, RenameFate, StorageFs, WriteFate};
pub use topology::{Rank, Topology};
pub use transport::{
    ChaosDecision, ChaosLink, ChaosPlan, ChaosTransport, Transport, TransportBootstrap,
    TransportKind, NOMINAL_BW,
};
