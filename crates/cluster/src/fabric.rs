//! The message-passing fabric: ranks over an interchangeable transport.
//!
//! The fabric is the *functional* interconnect of ScheMoE-RS. Every rank of
//! a [`Topology`] holds a [`RankHandle`]; point-to-point messages are
//! [`Bytes`] payloads carried by a [`Transport`] backend — in-process
//! channels by default, shared-memory rings or TCP streams when selected
//! (see [`TransportKind`]). Collectives and the distributed MoE layer are
//! built purely from [`RankHandle::send`] / [`RankHandle::recv`] /
//! [`RankHandle::barrier`], mirroring how the real system builds A2A out of
//! NCCL send/recv pairs.
//!
//! The handle owns every fabric *semantic* — tag demultiplexing with
//! out-of-order parking, CRC/epoch framing, the seeded fault lottery,
//! liveness deadlines, and traffic counters — so those behaviors are
//! identical on every backend and a chaos replay's fault sequence does not
//! depend on what carries the bytes.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use schemoe_obs as obs;

use crate::faults::{self, FaultDecision, FaultPlan};
use crate::topology::{Rank, Topology};
use crate::transport::{self, ChaosPlan, ChaosTransport, RawRecvError, Transport, TransportKind};

/// Errors surfaced by fabric communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The peer's thread exited (its channel endpoints were dropped).
    Disconnected {
        /// The unreachable peer.
        peer: Rank,
    },
    /// A rank index was outside the topology.
    InvalidRank {
        /// The offending rank.
        rank: Rank,
        /// The world size it had to be below.
        world_size: usize,
    },
    /// A `recv_timeout` deadline expired with no matching message. The peer
    /// thread is still alive (its channel is open) but silent — the failure
    /// mode a plain `recv` would turn into an indefinite hang.
    Timeout {
        /// The peer that never delivered.
        peer: Rank,
        /// The tag that was awaited.
        tag: u64,
        /// How long the receiver waited.
        waited: Duration,
    },
    /// A message arrived but failed its length/CRC32 wire frame (see
    /// [`crate::faults`]): the payload was damaged in transit.
    Corrupt {
        /// The sender of the damaged frame.
        peer: Rank,
        /// The tag it arrived under.
        tag: u64,
    },
    /// A frame arrived intact but was stamped with a membership epoch older
    /// than the receiver's: the sender has not yet observed a completed
    /// membership transition (a burial or a rejoin). Rejecting the frame
    /// closes the split-brain window where a rank the vote already buried
    /// keeps feeding data into collectives that no longer include it.
    StaleEpoch {
        /// The sender of the stale frame.
        peer: Rank,
        /// The tag it arrived under.
        tag: u64,
        /// The epoch stamped on the frame.
        frame_epoch: u32,
        /// The receiver's current membership epoch.
        local_epoch: u32,
    },
    /// A pipeline worker thread died before its communication task could
    /// record a fabric error (e.g. a panic on the compute lane). Carried so
    /// executor failures still surface as one typed error family.
    Worker {
        /// Human-readable description of the worker failure.
        detail: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            FabricError::InvalidRank { rank, world_size } => {
                write!(f, "rank {rank} out of range for world size {world_size}")
            }
            FabricError::Timeout { peer, tag, waited } => write!(
                f,
                "timed out after {waited:?} waiting for tag {tag} from live peer rank {peer}"
            ),
            FabricError::Corrupt { peer, tag } => {
                write!(f, "corrupt frame (CRC mismatch) from rank {peer} tag {tag}")
            }
            FabricError::StaleEpoch {
                peer,
                tag,
                frame_epoch,
                local_epoch,
            } => write!(
                f,
                "stale frame from rank {peer} tag {tag}: epoch {frame_epoch} < local {local_epoch}"
            ),
            FabricError::Worker { detail } => write!(f, "pipeline worker died: {detail}"),
        }
    }
}

impl std::error::Error for FabricError {}

/// A wall-clock cost model for cross-rank transfers.
///
/// When installed via [`Fabric::run_with_wire`], every send to a *different*
/// rank blocks the sender for `latency + len / bytes_per_sec`, occupying the
/// sending thread the way a real NIC engine is occupied during a transfer.
/// Self-sends stay free. This makes communication/computation overlap
/// observable in wall-clock time on an otherwise instantaneous in-process
/// fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Fixed per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl WireModel {
    /// Time a message of `len` bytes occupies the wire.
    pub fn transfer_time(&self, len: usize) -> Duration {
        self.latency + Duration::from_secs_f64(len as f64 / self.bytes_per_sec)
    }
}

/// Policy for deriving per-link receive deadlines from observed waits.
///
/// With this installed (see [`RankHandle::set_adaptive_deadline`]), a plain
/// `recv` from peer `p` uses `clamp(p99(waits from p) × margin, floor,
/// ceiling)` instead of the static plan deadline — but never *less* than
/// the static deadline, so adaptation only ever grants slack. The point is
/// straggler tolerance under `delay` campaigns: a slow-but-alive link
/// inflates its own p99, its deadline stretches with it, and the peer stops
/// being misclassified as a death suspect; a genuinely dead peer still
/// times out at the (clamped) ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveDeadline {
    /// Multiplier applied to the observed p99 wait.
    pub margin: f64,
    /// Lower clamp — normally the static plan deadline, so adaptation can
    /// only lengthen deadlines, never tighten them below the configured
    /// liveness bound.
    pub floor: Duration,
    /// Upper clamp — the longest deadline adaptation may grant (from
    /// `RecoverySpec`), bounding how long a dead peer can stall a step.
    pub ceiling: Duration,
    /// Observations on a link before its deadline adapts; below this the
    /// static deadline applies unchanged.
    pub min_samples: u64,
}

/// A rank's endpoint into the fabric.
pub struct RankHandle {
    rank: Rank,
    topology: Topology,
    /// The backend carrying raw `(tag, payload)` records between ranks.
    transport: Box<dyn Transport>,
    /// Out-of-order messages parked until a matching tag is requested.
    pending: HashMap<(Rank, u64), Vec<Bytes>>,
    /// Optional wall-clock charge applied to cross-rank sends.
    wire: Option<WireModel>,
    /// This rank's traffic counters (no-ops while the recorder is off).
    counters: Arc<obs::RankCounters>,
    /// Installed fault plan; when present every payload is CRC-framed and
    /// every send consults the plan.
    faults: Option<Arc<FaultPlan>>,
    /// Per-destination message index, the replay key for fault decisions.
    send_seq: Vec<Cell<u64>>,
    /// Total sends this rank has *attempted*, successful or denied (drives
    /// `kill_after` and `revive_after`: liveness is a pure window of this
    /// counter, so kills and revivals replay bit-identically).
    sends_total: Cell<u64>,
    /// Cached liveness: latched when a scheduled `kill_after` fires and
    /// cleared only by an explicit [`try_revive`](Self::try_revive) probe —
    /// crossing the revive threshold alone never silently reopens the pipe.
    ///
    /// The cluster-wide liveness board lives on the transport: a rank
    /// posts its own death there when its kill latches, so peers' receives
    /// can fail fast with `Disconnected` instead of burning their full
    /// deadline on a peer that will provably never send again — the
    /// analogue of a connection reset after a process crash. The board
    /// entry is cleared only when the rejoin protocol re-admits the rank
    /// ([`mark_peer_reachable`](Self::mark_peer_reachable)); a
    /// revived-but-not-yet-readmitted rank is still unreachable as far as
    /// collective traffic is concerned.
    dead: Cell<bool>,
    /// Default liveness deadline applied to plain `recv` calls.
    deadline: Cell<Option<Duration>>,
    /// This rank's current membership epoch, stamped on every outgoing
    /// frame while a fault plan is installed.
    epoch: Cell<u32>,
    /// Optional per-link deadline adaptation policy.
    adaptive: Cell<Option<AdaptiveDeadline>>,
    /// Per-peer receive-wait histograms feeding deadline adaptation.
    /// Recorded only while a fault plan is installed.
    wait_hist: Vec<obs::WaitHistogram>,
}

impl RankHandle {
    /// This handle's global rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The cluster topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// World size shortcut.
    pub fn world_size(&self) -> usize {
        self.topology.world_size()
    }

    /// True once a scheduled `kill_after` has latched this rank dead: every
    /// send or receive fails with `Disconnected { peer: self.rank }` until
    /// an explicit [`try_revive`](Self::try_revive) probe lands past the
    /// scheduled revival. Death latches — merely crossing the revive
    /// threshold while still sending does not reopen the pipe.
    pub fn is_dead(&self) -> bool {
        self.dead.get()
    }

    /// The installed fault plan, if any. The rejoin protocol reads revival
    /// schedules from it — the in-process stand-in for a cluster manager
    /// announcing that a replacement node is being provisioned.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// The default liveness deadline applied to plain [`recv`](Self::recv)
    /// calls (installed by the fault plan, overridable per handle).
    pub fn recv_deadline(&self) -> Option<Duration> {
        self.deadline.get()
    }

    /// Overrides the default liveness deadline. `None` restores indefinite
    /// blocking.
    pub fn set_recv_deadline(&self, deadline: Option<Duration>) {
        self.deadline.set(deadline);
    }

    /// This rank's current membership epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch.get()
    }

    /// Sets the membership epoch (used when a rejoiner adopts the epoch a
    /// donor hands it). Epochs only move forward; lowering is a no-op.
    pub fn set_epoch(&self, epoch: u32) {
        if epoch > self.epoch.get() {
            self.epoch.set(epoch);
        }
    }

    /// Bumps the membership epoch by one and returns the new value. Called
    /// on every completed membership transition (burial or rejoin).
    pub fn advance_epoch(&self) -> u32 {
        let next = self.epoch.get() + 1;
        self.epoch.set(next);
        next
    }

    /// Installs (or clears) the per-link deadline adaptation policy.
    pub fn set_adaptive_deadline(&self, policy: Option<AdaptiveDeadline>) {
        self.adaptive.set(policy);
    }

    /// The currently installed deadline adaptation policy. Long-lived
    /// callers (the FT trainer) snapshot this so they can restore the
    /// handle's deadline state on exit instead of leaking their policy
    /// into whatever runs on the handle next.
    pub fn adaptive_deadline(&self) -> Option<AdaptiveDeadline> {
        self.adaptive.get()
    }

    /// True when a buried peer can physically come back — as a respawned
    /// OS process dialing back in — without a fault plan scheduling its
    /// revival. The rejoin protocol polls announcements from *all* dead
    /// ranks on such transports rather than only plan-scheduled revivals.
    pub fn reconnectable(&self) -> bool {
        self.transport.reconnectable()
    }

    /// The liveness deadline a plain `recv` from `peer` will use right now:
    /// the adapted per-link value when an [`AdaptiveDeadline`] policy is
    /// installed and the link has enough samples, otherwise the static
    /// default. Never shorter than the static default.
    pub fn effective_deadline(&self, peer: Rank) -> Option<Duration> {
        let base = self.deadline.get();
        let Some(policy) = self.adaptive.get() else {
            return base;
        };
        if peer >= self.wait_hist.len() {
            return base;
        }
        let hist = &self.wait_hist[peer];
        if hist.samples() < policy.min_samples {
            return base;
        }
        let Some(p99) = hist.quantile(0.99) else {
            return base;
        };
        let adapted = p99.mul_f64(policy.margin.max(1.0));
        let adapted = adapted.clamp(policy.floor.min(policy.ceiling), policy.ceiling);
        Some(base.map_or(adapted, |b| adapted.max(b)))
    }

    /// A dead rank polling for its scheduled revival. Each call counts as
    /// one attempted send (the probe), so the number of probes to revival
    /// is a pure function of the plan — wall clock never enters. Returns
    /// `true` once the rank is alive again (immediately, if it never died).
    pub fn try_revive(&self) -> bool {
        if !self.dead.get() {
            return true;
        }
        let Some(plan) = &self.faults else {
            return false;
        };
        let attempts = self.sends_total.get();
        self.sends_total.set(attempts + 1);
        if plan.rank_alive(self.rank, attempts) {
            // The pipe reopens, but the liveness board still lists this
            // rank: until the rejoin protocol re-admits it (see
            // [`mark_peer_reachable`](Self::mark_peer_reachable)) it is a
            // limbo member peers must not wait on.
            self.dead.set(false);
            true
        } else {
            false
        }
    }

    /// Clears `peer`'s entry on the cluster liveness board, restoring
    /// normal deadline-based receives from it.
    ///
    /// The rejoin protocol calls this at the moment membership changes:
    /// every survivor for the rank it just re-admitted, and the rejoiner
    /// for itself once the donor's state is applied. Until then a revived
    /// rank stays listed as unreachable — it is alive in limbo but will
    /// not answer data-plane traffic, and peers' receives from it should
    /// keep failing fast rather than stalling out their deadlines.
    pub fn mark_peer_reachable(&self, peer: Rank) {
        if peer < self.world_size() {
            self.transport.clear_death(peer);
        }
    }

    /// Fails fast when this rank has been killed by the fault plan.
    fn check_alive(&self) -> Result<(), FabricError> {
        if self.dead.get() {
            Err(FabricError::Disconnected { peer: self.rank })
        } else {
            Ok(())
        }
    }

    /// True when payloads travel CRC/epoch-framed: always on real-wire
    /// transports (damage is physically possible), and on the channel
    /// backend exactly when a fault plan is installed — so channel runs
    /// without a plan stay byte-identical to the pre-trait fabric.
    fn framed(&self) -> bool {
        self.faults.is_some() || self.transport.always_framed()
    }

    /// Delivers a wire payload to the caller: strips and validates the CRC
    /// frame when framing is on, rejects frames from a stale membership
    /// epoch, and records receive counters.
    fn unpack(&self, from: Rank, tag: u64, payload: Bytes) -> Result<Bytes, FabricError> {
        if !self.framed() {
            self.counters.add_recv(payload.len());
            return Ok(payload);
        }
        match faults::deframe(&payload) {
            Some((frame_epoch, p)) => {
                let local_epoch = self.epoch.get();
                if frame_epoch != faults::EPOCH_ANY && frame_epoch < local_epoch {
                    self.counters.add_stale_epoch();
                    return Err(FabricError::StaleEpoch {
                        peer: from,
                        tag,
                        frame_epoch,
                        local_epoch,
                    });
                }
                self.counters.add_recv(p.len());
                Ok(p)
            }
            None => {
                self.counters.add_corrupt_frame();
                Err(FabricError::Corrupt { peer: from, tag })
            }
        }
    }

    /// Sends `payload` to `to` under `tag`, stamped with this rank's
    /// current membership epoch.
    ///
    /// Never blocks on the receiver (channels are unbounded); under a
    /// [`WireModel`] a cross-rank send does block the *sender* for the
    /// modeled transfer time.
    pub fn send(&self, to: Rank, tag: u64, payload: Bytes) -> Result<(), FabricError> {
        self.send_stamped(to, tag, payload, None)
    }

    /// Sends control-plane traffic stamped [`EPOCH_ANY`](faults::EPOCH_ANY)
    /// so the receiver's staleness check does not apply. Rejoin invites,
    /// acknowledgements, and state-transfer chunks cross an epoch boundary
    /// by construction and must travel on this path.
    pub fn send_control(&self, to: Rank, tag: u64, payload: Bytes) -> Result<(), FabricError> {
        self.send_stamped(to, tag, payload, Some(faults::EPOCH_ANY))
    }

    fn send_stamped(
        &self,
        to: Rank,
        tag: u64,
        payload: Bytes,
        stamp: Option<u32>,
    ) -> Result<(), FabricError> {
        // Liveness first: every call here is one *attempt*, whether or not
        // it is denied, so `kill_after`/`revive_after` fire at points that
        // are pure functions of this rank's own control flow.
        if let Some(plan) = &self.faults {
            let attempts = self.sends_total.get();
            self.sends_total.set(attempts + 1);
            // Death latches: crossing the revive threshold does NOT
            // silently reopen the pipe — only an explicit
            // [`try_revive`](Self::try_revive) probe (the limbo path) can.
            // Otherwise a victim that has not yet noticed its own death
            // would resume sending mid-protocol, and its zombie vote
            // frames would perturb the survivors' burial tally.
            if self.dead.get() || !plan.rank_alive(self.rank, attempts) {
                if !self.dead.get() {
                    // The kill itself is the injected fault; later denied
                    // attempts are consequences, not new injections.
                    self.dead.set(true);
                    self.transport.post_death(self.rank);
                    self.counters.add_fault_injected();
                }
                return Err(FabricError::Disconnected { peer: self.rank });
            }
        } else {
            self.check_alive()?;
        }
        let ws = self.world_size();
        if to >= ws {
            self.counters.add_invalid_rank();
            return Err(FabricError::InvalidRank {
                rank: to,
                world_size: ws,
            });
        }
        if let Some(wire) = self.wire {
            if to != self.rank {
                // The modeled transfer occupies the sending thread; record
                // it as a span so traces show wire time where it is spent.
                let _g = obs::enabled()
                    .then(|| obs::span_sized("send", format!("send->{to}"), payload.len() as f64));
                std::thread::sleep(wire.transfer_time(payload.len()));
            }
        }
        self.counters.add_send(payload.len());
        // Fault decisions apply uniformly to every link — self-sends
        // included — so the fault counters stay consistent across paths.
        let payload = match &self.faults {
            None => {
                if self.transport.always_framed() {
                    // Real wires get the `[len][epoch][crc32]` frame even
                    // without a fault plan: bit damage and stale-epoch
                    // traffic are physically possible there.
                    let epoch = stamp.unwrap_or_else(|| self.epoch.get());
                    faults::frame(&payload, epoch)
                } else {
                    payload
                }
            }
            Some(plan) => {
                let idx = self.send_seq[to].get();
                self.send_seq[to].set(idx + 1);
                let epoch = stamp.unwrap_or_else(|| self.epoch.get());
                match plan.decide(self.rank, to, idx) {
                    FaultDecision::Deliver => faults::frame(&payload, epoch),
                    FaultDecision::Drop => {
                        // The message silently vanishes; the receiver's
                        // deadline turns the loss into a Timeout.
                        self.counters.add_fault_injected();
                        return Ok(());
                    }
                    FaultDecision::Delay(d) => {
                        self.counters.add_fault_injected();
                        std::thread::sleep(d);
                        faults::frame(&payload, epoch)
                    }
                    FaultDecision::Corrupt => {
                        self.counters.add_fault_injected();
                        faults::frame_corrupted(&payload, epoch, idx)
                    }
                }
            }
        };
        self.transport
            .send_raw(to, tag, payload)
            .map_err(|_| FabricError::Disconnected { peer: to })
    }

    /// Receives the next message from `from` with the given `tag`, blocking.
    ///
    /// Messages from the same peer with other tags are parked and delivered
    /// to later `recv` calls, so receive order across tags is free while
    /// order *within* a `(peer, tag)` pair is preserved.
    pub fn recv(&mut self, from: Rank, tag: u64) -> Result<Bytes, FabricError> {
        // Under a fault plan (or an explicit handle deadline) every plain
        // receive is deadline-aware: a lost message or dead peer surfaces
        // as a typed Timeout instead of an indefinite hang. The per-link
        // deadline adapts to observed waits when a policy is installed.
        let effective = if from < self.world_size() {
            self.effective_deadline(from)
        } else {
            self.deadline.get()
        };
        if let Some(deadline) = effective {
            return self.recv_timeout(from, tag, deadline);
        }
        self.check_alive()?;
        let ws = self.world_size();
        if from >= ws {
            self.counters.add_invalid_rank();
            return Err(FabricError::InvalidRank {
                rank: from,
                world_size: ws,
            });
        }
        if let Some(queue) = self.pending.get_mut(&(from, tag)) {
            if !queue.is_empty() {
                let payload = queue.remove(0);
                return self.unpack(from, tag, payload);
            }
        }
        let wait_start = (obs::enabled() || self.faults.is_some()).then(Instant::now);
        loop {
            // A blocking raw receive only fails when the link is closed
            // and drained — the transport contract never surfaces
            // `Timeout` without a deadline.
            let (msg_tag, payload) = self
                .transport
                .recv_raw(from, None)
                .map_err(|_| FabricError::Disconnected { peer: from })?;
            if msg_tag == tag {
                if let Some(t0) = wait_start {
                    let waited = t0.elapsed();
                    self.counters.add_recv_wait(waited);
                    if self.faults.is_some() {
                        self.wait_hist[from].record(waited);
                    }
                }
                return self.unpack(from, tag, payload);
            }
            self.pending
                .entry((from, msg_tag))
                .or_default()
                .push(payload);
        }
    }

    /// Like [`recv`](Self::recv), but gives up after `timeout` with
    /// [`FabricError::Timeout`] if no matching message arrives.
    ///
    /// This is the liveness guard for the overlapped pipeline: a crashed
    /// peer is caught by `Disconnected`, but a peer that is alive yet never
    /// sends (deadlocked, wedged on a mismatched schedule) would hang a
    /// plain `recv` forever. Non-matching tags that arrive while waiting are
    /// parked exactly as in `recv`.
    pub fn recv_timeout(
        &mut self,
        from: Rank,
        tag: u64,
        timeout: Duration,
    ) -> Result<Bytes, FabricError> {
        self.check_alive()?;
        let ws = self.world_size();
        if from >= ws {
            self.counters.add_invalid_rank();
            return Err(FabricError::InvalidRank {
                rank: from,
                world_size: ws,
            });
        }
        if let Some(queue) = self.pending.get_mut(&(from, tag)) {
            if !queue.is_empty() {
                let payload = queue.remove(0);
                return self.unpack(from, tag, payload);
            }
        }
        let wait_start = (obs::enabled() || self.faults.is_some()).then(Instant::now);
        let deadline = Instant::now() + timeout;
        // Under a fault plan the wait is sliced so a peer's death posted on
        // the liveness board mid-wait is noticed promptly; a latched-dead
        // peer will provably never send again (its pipe denies every
        // attempt until an explicit revival probe), so once its channel is
        // drained the receive fails fast with `Disconnected` — the same
        // signal a crashed thread's dropped channel gives — instead of
        // stalling out the full deadline and skewing the caller against
        // its peers.
        let poll = self.faults.as_ref().map(|p| p.board_poll().min(timeout));
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.counters.add_timeout();
                return Err(FabricError::Timeout {
                    peer: from,
                    tag,
                    waited: timeout,
                });
            }
            let slice = poll.map_or(remaining, |p| p.min(remaining));
            match self.transport.recv_raw(from, Some(slice)) {
                Ok((msg_tag, payload)) if msg_tag == tag => {
                    if let Some(t0) = wait_start {
                        let waited = t0.elapsed();
                        self.counters.add_recv_wait(waited);
                        if self.faults.is_some() {
                            self.wait_hist[from].record(waited);
                        }
                    }
                    return self.unpack(from, tag, payload);
                }
                Ok((msg_tag, payload)) => {
                    self.pending
                        .entry((from, msg_tag))
                        .or_default()
                        .push(payload);
                }
                Err(RawRecvError::Timeout) => {
                    // The slice drained nothing: anything the peer sent
                    // before latching dead has already been delivered or
                    // parked, so a posted death means no frame will ever
                    // arrive on this link again.
                    if from != self.rank && self.transport.peer_dead(from) {
                        return Err(FabricError::Disconnected { peer: from });
                    }
                    if poll.is_none() {
                        self.counters.add_timeout();
                        return Err(FabricError::Timeout {
                            peer: from,
                            tag,
                            waited: timeout,
                        });
                    }
                }
                Err(RawRecvError::Disconnected) => {
                    return Err(FabricError::Disconnected { peer: from });
                }
            }
        }
    }

    /// Blocks until every rank has reached the same barrier call.
    pub fn barrier(&self) {
        self.transport.barrier();
    }

    /// Attaches a rank to the fabric over an already-established
    /// transport endpoint — the entry point for multi-process workers,
    /// where each OS process builds its own endpoint (see
    /// [`crate::transport::TransportBootstrap`]) instead of receiving
    /// one from [`Fabric::run`].
    pub fn attach(
        topology: Topology,
        rank: Rank,
        transport: Box<dyn Transport>,
        plan: Option<FaultPlan>,
    ) -> RankHandle {
        assert_eq!(
            transport.world_size(),
            topology.world_size(),
            "transport world size must match the topology"
        );
        RankHandle::from_parts(topology, rank, transport, None, plan.map(Arc::new))
    }

    fn from_parts(
        topology: Topology,
        rank: Rank,
        transport: Box<dyn Transport>,
        wire: Option<WireModel>,
        plan: Option<Arc<FaultPlan>>,
    ) -> RankHandle {
        let p = topology.world_size();
        RankHandle {
            rank,
            topology,
            transport,
            pending: HashMap::new(),
            wire,
            counters: obs::counters_for_rank(rank),
            send_seq: (0..p).map(|_| Cell::new(0)).collect(),
            sends_total: Cell::new(0),
            dead: Cell::new(false),
            deadline: Cell::new(plan.as_ref().and_then(|pl| pl.recv_deadline())),
            epoch: Cell::new(0),
            adaptive: Cell::new(None),
            wait_hist: (0..p).map(|_| obs::WaitHistogram::new()).collect(),
            faults: plan,
        }
    }
}

/// Factory for fabric runs.
pub struct Fabric;

impl Fabric {
    /// Runs `f` once per rank on its own thread and collects the results in
    /// rank order. The transport backend comes from the `SCHEMOE_TRANSPORT`
    /// environment variable (default: in-process channels), which is how CI
    /// runs the whole suite over every backend.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any rank's closure after all threads join.
    pub fn run<T, F>(topology: Topology, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(TransportKind::from_env(), topology, None, None, None, f)
    }

    /// Like [`run`](Self::run), but on an explicit transport backend.
    pub fn run_on<T, F>(kind: TransportKind, topology: Topology, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(kind, topology, None, None, None, f)
    }

    /// Like [`run`](Self::run), but installs a [`WireModel`] so cross-rank
    /// sends cost wall-clock time. Used by overlap benchmarks where an
    /// instantaneous fabric would make serial and overlapped execution
    /// indistinguishable.
    pub fn run_with_wire<T, F>(topology: Topology, wire: WireModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(
            TransportKind::from_env(),
            topology,
            Some(wire),
            None,
            None,
            f,
        )
    }

    /// Like [`run`](Self::run), but installs a seeded [`FaultPlan`]: every
    /// payload travels CRC-framed, sends consult the plan (drop / delay /
    /// corrupt / kill), and plain receives inherit the plan's liveness
    /// deadline. The same plan replays an identical fault sequence on every
    /// run (see [`crate::faults`]).
    pub fn run_with_faults<T, F>(topology: Topology, plan: FaultPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(
            TransportKind::from_env(),
            topology,
            None,
            Some(Arc::new(plan)),
            None,
            f,
        )
    }

    /// Like [`run_with_faults`](Self::run_with_faults), but on an explicit
    /// transport backend (the conformance suite drives every backend
    /// through identical fault scenarios this way).
    pub fn run_with_faults_on<T, F>(
        kind: TransportKind,
        topology: Topology,
        plan: FaultPlan,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(kind, topology, None, Some(Arc::new(plan)), None, f)
    }

    /// Like [`run_with_faults_on`](Self::run_with_faults_on), but
    /// additionally wraps every rank's endpoint in a [`ChaosPlan`]: the
    /// network itself misbehaves (partitions, flaps, refusals, shaping)
    /// beneath whatever frame-level faults `plan` injects. Both plans
    /// are seeded and pure, so the combined campaign replays
    /// bit-identically. Pass `plan: None` only when the closure installs
    /// its own receive deadlines — blackholed links surface as timeouts,
    /// and an undeadlined `recv` would hang instead.
    pub fn run_with_chaos_on<T, F>(
        kind: TransportKind,
        topology: Topology,
        chaos: ChaosPlan,
        plan: Option<FaultPlan>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(
            kind,
            topology,
            None,
            plan.map(Arc::new),
            Some(Arc::new(chaos)),
            f,
        )
    }

    fn run_inner<T, F>(
        kind: TransportKind,
        topology: Topology,
        wire: Option<WireModel>,
        plan: Option<Arc<FaultPlan>>,
        chaos: Option<Arc<ChaosPlan>>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        let p = topology.world_size();
        let bootstraps = transport::mesh(kind, p);
        let f = &f;
        let plan = &plan;
        let chaos = &chaos;
        std::thread::scope(|scope| {
            let joins: Vec<_> = bootstraps
                .into_iter()
                .enumerate()
                .map(|(rank, bootstrap)| {
                    scope.spawn(move || {
                        // Shm and tcp endpoints finish their handshakes
                        // here, on the rank's own thread — a tcp endpoint
                        // blocks in rendezvous until all ranks register.
                        let endpoint = bootstrap.establish();
                        let endpoint: Box<dyn Transport> = match chaos {
                            Some(c) => Box::new(ChaosTransport::new(endpoint, rank, Arc::clone(c))),
                            None => endpoint,
                        };
                        let h =
                            RankHandle::from_parts(topology, rank, endpoint, wire, plan.clone());
                        if obs::enabled() {
                            // Attribute this thread's spans to its rank so
                            // exported traces group by process = rank.
                            obs::set_thread_rank(h.rank());
                            obs::set_thread_name(format!("rank{}", h.rank()));
                        }
                        f(h)
                    })
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates_rank_sum() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let p = h.world_size();
            let next = (h.rank() + 1) % p;
            let prev = (h.rank() + p - 1) % p;
            let mut acc = h.rank() as u64;
            let mut carry = acc;
            for _ in 0..p - 1 {
                h.send(next, 0, Bytes::copy_from_slice(&carry.to_le_bytes()))
                    .unwrap();
                let got = h.recv(prev, 0).unwrap();
                carry = u64::from_le_bytes(got.as_ref().try_into().unwrap());
                acc += carry;
            }
            acc
        });
        // Every rank ends with 0+1+2+3 = 6.
        assert_eq!(results, vec![6, 6, 6, 6]);
    }

    #[test]
    fn tags_demultiplex_out_of_order_sends() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                // Send tag 2 first, then tag 1.
                h.send(1, 2, Bytes::from_static(b"second")).unwrap();
                h.send(1, 1, Bytes::from_static(b"first")).unwrap();
                Vec::new()
            } else {
                // Receive in tag order 1 then 2 despite arrival order.
                let a = h.recv(0, 1).unwrap();
                let b = h.recv(0, 2).unwrap();
                vec![a, b]
            }
        });
        assert_eq!(results[1][0].as_ref(), b"first");
        assert_eq!(results[1][1].as_ref(), b"second");
    }

    #[test]
    fn per_tag_fifo_order_is_preserved() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                for i in 0u8..10 {
                    h.send(1, 7, Bytes::copy_from_slice(&[i])).unwrap();
                }
                Vec::new()
            } else {
                (0..10).map(|_| h.recv(0, 7).unwrap()[0]).collect()
            }
        });
        assert_eq!(results[1], (0u8..10).collect::<Vec<_>>());
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let topo = Topology::new(1, 4);
        let counter = AtomicUsize::new(0);
        Fabric::run(topo, |h| {
            counter.fetch_add(1, Ordering::SeqCst);
            h.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let topo = Topology::new(1, 2);
        Fabric::run(topo, |mut h| {
            assert!(matches!(
                h.send(5, 0, Bytes::new()),
                Err(FabricError::InvalidRank { .. })
            ));
            assert!(matches!(h.recv(9, 0), Err(FabricError::InvalidRank { .. })));
        });
    }

    #[test]
    fn recv_timeout_delivers_when_message_arrives() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                h.send(1, 4, Bytes::from_static(b"ok")).unwrap();
                Bytes::new()
            } else {
                h.recv_timeout(0, 4, Duration::from_secs(5)).unwrap()
            }
        });
        assert_eq!(results[1].as_ref(), b"ok");
    }

    #[test]
    fn recv_timeout_parks_mismatched_tags() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                h.send(1, 9, Bytes::from_static(b"later")).unwrap();
                h.send(1, 8, Bytes::from_static(b"now")).unwrap();
                Vec::new()
            } else {
                let a = h.recv_timeout(0, 8, Duration::from_secs(5)).unwrap();
                // Tag 9 was parked while waiting for tag 8.
                let b = h.recv_timeout(0, 9, Duration::from_secs(5)).unwrap();
                vec![a, b]
            }
        });
        assert_eq!(results[1][0].as_ref(), b"now");
        assert_eq!(results[1][1].as_ref(), b"later");
    }

    #[test]
    fn recv_timeout_expires_on_silent_peer() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                // Stay alive until rank 1 finishes, but never send.
                h.barrier();
                None
            } else {
                let err = h.recv_timeout(0, 1, Duration::from_millis(50)).unwrap_err();
                h.barrier();
                Some(err)
            }
        });
        assert!(matches!(
            results[1],
            Some(FabricError::Timeout {
                peer: 0,
                tag: 1,
                ..
            })
        ));
    }

    #[test]
    fn wire_model_charges_transfer_time() {
        let wire = WireModel {
            latency: Duration::from_millis(10),
            bytes_per_sec: 1000.0,
        };
        assert_eq!(wire.transfer_time(100), Duration::from_millis(110));

        let topo = Topology::new(1, 2);
        let start = Instant::now();
        Fabric::run_with_wire(topo, wire, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::copy_from_slice(&[0u8; 100])).unwrap();
            } else {
                h.recv(0, 0).unwrap();
            }
        });
        assert!(start.elapsed() >= Duration::from_millis(100));
    }

    #[test]
    fn wire_model_self_sends_are_free() {
        let wire = WireModel {
            latency: Duration::from_secs(60),
            bytes_per_sec: 1.0,
        };
        let topo = Topology::new(1, 1);
        let start = Instant::now();
        Fabric::run_with_wire(topo, wire, |mut h| {
            h.send(0, 0, Bytes::from_static(b"self")).unwrap();
            h.recv(0, 0).unwrap()
        });
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn counters_track_traffic_waits_and_timeouts() {
        // The recorder is process-global and other tests in this binary may
        // run concurrently while it is enabled, so assert monotone deltas
        // rather than exact totals.
        let before: u64 = obs::counters_for_rank(0).snapshot().bytes_sent
            + obs::counters_for_rank(1).snapshot().bytes_sent;
        obs::enable();
        let topo = Topology::new(1, 2);
        Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                std::thread::sleep(Duration::from_millis(5));
                h.send(1, 0, Bytes::copy_from_slice(&[0u8; 64])).unwrap();
                h.barrier();
            } else {
                // Blocks ~5 ms: recorded as queue wait.
                h.recv(0, 0).unwrap();
                // A silent peer: recorded as a timeout.
                let _ = h.recv_timeout(0, 9, Duration::from_millis(10));
                h.barrier();
            }
        });
        obs::disable();
        let r0 = obs::counters_for_rank(0).snapshot();
        let r1 = obs::counters_for_rank(1).snapshot();
        assert!(r0.bytes_sent + r1.bytes_sent >= before + 64);
        assert!(r1.bytes_recv >= 64);
        assert!(r1.recv_wait_ns >= 1_000_000, "no queue wait recorded");
        assert!(r1.timeouts >= 1);
    }

    #[test]
    fn fault_plan_framing_is_transparent_when_no_fault_fires() {
        let plan = FaultPlan::seeded(11); // all probabilities zero
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 5, Bytes::from_static(b"framed")).unwrap();
                Bytes::new()
            } else {
                h.recv(0, 5).unwrap()
            }
        });
        assert_eq!(results[1].as_ref(), b"framed");
    }

    #[test]
    fn dropped_message_surfaces_as_timeout_not_hang() {
        // drop_prob = 1: every message vanishes; the plan's deadline makes
        // the plain recv return Timeout.
        let plan = FaultPlan::seeded(12)
            .with_drop_prob(1.0)
            .with_recv_deadline(Duration::from_millis(50));
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 1, Bytes::from_static(b"gone")).unwrap();
                h.barrier();
                None
            } else {
                let err = h.recv(0, 1).unwrap_err();
                h.barrier();
                Some(err)
            }
        });
        assert!(matches!(
            results[1],
            Some(FabricError::Timeout {
                peer: 0,
                tag: 1,
                ..
            })
        ));
    }

    #[test]
    fn corrupted_message_surfaces_as_corrupt() {
        let plan = FaultPlan::seeded(13).with_corrupt_prob(1.0);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 2, Bytes::from_static(b"tensor row")).unwrap();
                None
            } else {
                Some(h.recv(0, 2).unwrap_err())
            }
        });
        assert_eq!(results[1], Some(FabricError::Corrupt { peer: 0, tag: 2 }));
    }

    #[test]
    fn kill_after_fails_the_rank_and_its_peers_fail_fast() {
        // Rank 0 dies after 2 sends: its own third send errors, its death
        // is posted on the liveness board, and rank 1's receive of the
        // message that never left fails fast with `Disconnected` — well
        // before the 2 s deadline — instead of stalling it out. The
        // barrier orders the latch before rank 1's probe so the fast path
        // is deterministic.
        let plan = FaultPlan::seeded(14)
            .kill_after(0, 2)
            .with_recv_deadline(Duration::from_secs(2));
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::from_static(b"a")).unwrap();
                h.send(1, 1, Bytes::from_static(b"b")).unwrap();
                let own = h.send(1, 2, Bytes::from_static(b"c")).unwrap_err();
                assert!(h.is_dead());
                h.barrier();
                // Dead ranks cannot receive either.
                let recv_err = h.recv(1, 9).unwrap_err();
                vec![own, recv_err]
            } else {
                h.recv(0, 0).unwrap();
                h.recv(0, 1).unwrap();
                h.barrier();
                let t0 = Instant::now();
                let err = h.recv(0, 2).unwrap_err();
                assert!(
                    t0.elapsed() < Duration::from_millis(500),
                    "a latched-dead peer must fail receives fast"
                );
                vec![err]
            }
        });
        assert_eq!(results[0][0], FabricError::Disconnected { peer: 0 });
        assert_eq!(results[0][1], FabricError::Disconnected { peer: 0 });
        assert_eq!(results[1][0], FabricError::Disconnected { peer: 0 });
    }

    #[test]
    fn a_custom_board_poll_slice_is_honored() {
        // Same scenario as above, but the plan stretches the liveness-board
        // poll slice to 800 ms: rank 0's death is already posted when rank 1
        // starts waiting, yet the board is only consulted when a slice
        // drains, so the Disconnected cannot surface before the first slice
        // expires — proving the configured slice (not the 5 ms default)
        // governs the wait.
        let plan = FaultPlan::seeded(14)
            .kill_after(0, 2)
            .with_recv_deadline(Duration::from_secs(3))
            .with_board_poll(Duration::from_millis(800));
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::from_static(b"a")).unwrap();
                h.send(1, 1, Bytes::from_static(b"b")).unwrap();
                h.send(1, 2, Bytes::from_static(b"c")).unwrap_err();
                assert!(h.is_dead());
                h.barrier();
                h.barrier(); // hold the channel open while rank 1 waits
                None
            } else {
                h.recv(0, 0).unwrap();
                h.recv(0, 1).unwrap();
                h.barrier();
                let t0 = Instant::now();
                let err = h.recv(0, 2).unwrap_err();
                let waited = t0.elapsed();
                h.barrier();
                assert!(
                    waited >= Duration::from_millis(700),
                    "an 800 ms slice must not notice the death early (waited {waited:?})"
                );
                assert!(
                    waited < Duration::from_millis(2500),
                    "the death must still cut the 3 s deadline short (waited {waited:?})"
                );
                Some(err)
            }
        });
        assert_eq!(results[1], Some(FabricError::Disconnected { peer: 0 }));
    }

    #[test]
    fn delay_fault_stalls_the_sender_but_delivers() {
        let plan = FaultPlan::seeded(15).with_delay(1.0, Duration::from_millis(30));
        let topo = Topology::new(1, 2);
        let start = Instant::now();
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::from_static(b"slow")).unwrap();
                Bytes::new()
            } else {
                h.recv(0, 0).unwrap()
            }
        });
        assert_eq!(results[1].as_ref(), b"slow");
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn fault_counters_record_injections_on_every_path() {
        obs::enable();
        let before_faults = obs::counters_for_rank(0).snapshot().faults_injected;
        let before_corrupt = obs::counters_for_rank(1).snapshot().corrupt_frames;
        let before_invalid = obs::counters_for_rank(0).snapshot().invalid_ranks;
        let plan = FaultPlan::seeded(16).with_corrupt_prob(1.0);
        let topo = Topology::new(1, 2);
        Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                // Self-sends roll fault decisions too: this one corrupts.
                h.send(0, 7, Bytes::from_static(b"self")).unwrap();
                let _ = h.recv(0, 7);
                // InvalidRank paths count consistently with peer sends.
                let _ = h.send(99, 0, Bytes::new());
                let _ = h.recv(99, 0);
                h.send(1, 8, Bytes::from_static(b"peer")).unwrap();
                h.barrier();
            } else {
                let _ = h.recv(0, 8);
                h.barrier();
            }
        });
        obs::disable();
        let r0 = obs::counters_for_rank(0).snapshot();
        let r1 = obs::counters_for_rank(1).snapshot();
        // Two corrupt injections (self + peer) on rank 0's send path.
        assert!(r0.faults_injected >= before_faults + 2);
        assert!(r1.corrupt_frames > before_corrupt);
        assert!(r0.invalid_ranks >= before_invalid + 2);
    }

    #[test]
    fn same_seed_replays_an_identical_fault_sequence() {
        let decisions = |seed: u64| -> Vec<FaultDecision> {
            let plan = FaultPlan::seeded(seed)
                .with_drop_prob(0.3)
                .with_corrupt_prob(0.2);
            (0..128).map(|i| plan.decide(1, 0, i)).collect()
        };
        assert_eq!(decisions(77), decisions(77));
        assert_ne!(decisions(77), decisions(78));
    }

    #[test]
    fn self_send_loops_back() {
        let topo = Topology::new(1, 1);
        let results = Fabric::run(topo, |mut h| {
            h.send(0, 3, Bytes::from_static(b"me")).unwrap();
            h.recv(0, 3).unwrap()
        });
        assert_eq!(results[0].as_ref(), b"me");
    }

    #[test]
    fn stale_epoch_frames_are_rejected_but_control_frames_pass() {
        // Rank 0 sends from epoch 0; rank 1 has already advanced to epoch 1
        // (it observed a membership transition rank 0 has not). The data
        // frame is stale; the control frame bypasses the check; a data
        // frame sent after rank 0 catches up is accepted again.
        let plan = FaultPlan::seeded(21);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                assert_eq!(h.epoch(), 0);
                h.send(1, 1, Bytes::from_static(b"old world")).unwrap();
                h.send_control(1, 2, Bytes::from_static(b"invite")).unwrap();
                h.set_epoch(1);
                h.send(1, 3, Bytes::from_static(b"new world")).unwrap();
                h.barrier();
                None
            } else {
                assert_eq!(h.advance_epoch(), 1);
                let stale = h.recv(0, 1).unwrap_err();
                let control = h.recv(0, 2).unwrap();
                let fresh = h.recv(0, 3).unwrap();
                h.barrier();
                assert_eq!(control.as_ref(), b"invite");
                assert_eq!(fresh.as_ref(), b"new world");
                Some(stale)
            }
        });
        assert_eq!(
            results[1],
            Some(FabricError::StaleEpoch {
                peer: 0,
                tag: 1,
                frame_epoch: 0,
                local_epoch: 1,
            })
        );
    }

    #[test]
    fn frames_from_a_future_epoch_are_accepted() {
        // Epoch bumps are not atomic across ranks: the peer that completes
        // a transition first must not have its traffic bounced by laggards.
        let plan = FaultPlan::seeded(22);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.set_epoch(5);
                h.send(1, 1, Bytes::from_static(b"ahead")).unwrap();
                Bytes::new()
            } else {
                h.recv(0, 1).unwrap()
            }
        });
        assert_eq!(results[1].as_ref(), b"ahead");
    }

    #[test]
    fn epoch_only_moves_forward() {
        let plan = FaultPlan::seeded(23);
        Fabric::run_with_faults(Topology::new(1, 1), plan, |h| {
            h.set_epoch(4);
            h.set_epoch(2); // ignored: epochs are monotone
            assert_eq!(h.epoch(), 4);
            assert_eq!(h.advance_epoch(), 5);
        });
    }

    #[test]
    fn revive_after_reopens_the_pipe_after_deterministic_probes() {
        // Rank 0 dies on its third attempted send and revives on its
        // sixth attempt. Probes are attempts, so exactly
        // revive - (kill + 1) = 2 probes fail before the third succeeds.
        let plan = FaultPlan::seeded(24)
            .kill_after(0, 2)
            .revive_after(0, 5)
            .with_recv_deadline(Duration::from_secs(5));
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::from_static(b"a")).unwrap(); // attempt 0
                h.send(1, 1, Bytes::from_static(b"b")).unwrap(); // attempt 1
                let killed = h.send(1, 2, Bytes::from_static(b"c")); // attempt 2: dies
                assert!(h.is_dead());
                let probes_failed = (0..8).take_while(|_| !h.try_revive()).count();
                assert!(!h.is_dead());
                // Back from the dead: this send is delivered.
                h.send(1, 3, Bytes::from_static(b"reborn")).unwrap();
                h.barrier();
                (killed.unwrap_err(), probes_failed)
            } else {
                h.recv(0, 0).unwrap();
                h.recv(0, 1).unwrap();
                let reborn = h.recv(0, 3).unwrap();
                assert_eq!(reborn.as_ref(), b"reborn");
                h.barrier();
                (FabricError::Disconnected { peer: 99 }, 0)
            }
        });
        assert_eq!(results[0].0, FabricError::Disconnected { peer: 0 });
        // Attempts 3 and 4 are denied probes; attempt 5 revives.
        assert_eq!(results[0].1, 2);
    }

    #[test]
    fn adaptive_deadline_stretches_with_observed_waits_but_stays_clamped() {
        let plan = FaultPlan::seeded(25).with_recv_deadline(Duration::from_secs(2));
        let topo = Topology::new(1, 2);
        Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.barrier();
                // Rank 1 is already blocked in recv; make it wait ~400 ms.
                std::thread::sleep(Duration::from_millis(400));
                h.send(1, 0, Bytes::from_static(b"straggler")).unwrap();
                h.barrier();
            } else {
                let policy = AdaptiveDeadline {
                    margin: 16.0,
                    floor: Duration::from_secs(2),
                    ceiling: Duration::from_millis(2500),
                    min_samples: 1,
                };
                h.set_adaptive_deadline(Some(policy));
                // No samples yet: the static deadline applies unchanged.
                assert_eq!(h.effective_deadline(0), Some(Duration::from_secs(2)));
                h.barrier();
                h.recv(0, 0).unwrap();
                // A ~400 ms wait was observed: its p99 upper bound x16
                // overshoots the ceiling, so the deadline clamps to it.
                // (Robust to scheduler noise: any observed wait above
                // ~157 ms lands here, and the wait only shrinks below that
                // if this thread entered recv over 240 ms late.)
                assert_eq!(h.effective_deadline(0), Some(Duration::from_millis(2500)));
                // A link with no samples keeps the static deadline.
                assert_eq!(h.effective_deadline(1), Some(Duration::from_secs(2)));
                h.barrier();
            }
        });
    }
}
