//! In-process message-passing fabric: ranks are threads, links are channels.
//!
//! The fabric is the *functional* interconnect of ScheMoE-RS. Every rank of
//! a [`Topology`] runs as a thread holding a [`RankHandle`]; point-to-point
//! messages are [`Bytes`] payloads over unbounded crossbeam channels, one
//! per ordered pair of ranks, so sends never block and any tag-matched
//! receive order is safe. Collectives and the distributed MoE layer are
//! built purely from [`RankHandle::send`] / [`RankHandle::recv`] /
//! [`RankHandle::barrier`], mirroring how the real system builds A2A out of
//! NCCL send/recv pairs.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use schemoe_obs as obs;

use crate::faults::{self, FaultDecision, FaultPlan};
use crate::topology::{Rank, Topology};

/// Errors surfaced by fabric communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The peer's thread exited (its channel endpoints were dropped).
    Disconnected {
        /// The unreachable peer.
        peer: Rank,
    },
    /// A rank index was outside the topology.
    InvalidRank {
        /// The offending rank.
        rank: Rank,
        /// The world size it had to be below.
        world_size: usize,
    },
    /// A `recv_timeout` deadline expired with no matching message. The peer
    /// thread is still alive (its channel is open) but silent — the failure
    /// mode a plain `recv` would turn into an indefinite hang.
    Timeout {
        /// The peer that never delivered.
        peer: Rank,
        /// The tag that was awaited.
        tag: u64,
        /// How long the receiver waited.
        waited: Duration,
    },
    /// A message arrived but failed its length/CRC32 wire frame (see
    /// [`crate::faults`]): the payload was damaged in transit.
    Corrupt {
        /// The sender of the damaged frame.
        peer: Rank,
        /// The tag it arrived under.
        tag: u64,
    },
    /// A pipeline worker thread died before its communication task could
    /// record a fabric error (e.g. a panic on the compute lane). Carried so
    /// executor failures still surface as one typed error family.
    Worker {
        /// Human-readable description of the worker failure.
        detail: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            FabricError::InvalidRank { rank, world_size } => {
                write!(f, "rank {rank} out of range for world size {world_size}")
            }
            FabricError::Timeout { peer, tag, waited } => write!(
                f,
                "timed out after {waited:?} waiting for tag {tag} from live peer rank {peer}"
            ),
            FabricError::Corrupt { peer, tag } => {
                write!(f, "corrupt frame (CRC mismatch) from rank {peer} tag {tag}")
            }
            FabricError::Worker { detail } => write!(f, "pipeline worker died: {detail}"),
        }
    }
}

impl std::error::Error for FabricError {}

struct Msg {
    tag: u64,
    payload: Bytes,
}

/// A wall-clock cost model for cross-rank transfers.
///
/// When installed via [`Fabric::run_with_wire`], every send to a *different*
/// rank blocks the sender for `latency + len / bytes_per_sec`, occupying the
/// sending thread the way a real NIC engine is occupied during a transfer.
/// Self-sends stay free. This makes communication/computation overlap
/// observable in wall-clock time on an otherwise instantaneous in-process
/// fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Fixed per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl WireModel {
    /// Time a message of `len` bytes occupies the wire.
    pub fn transfer_time(&self, len: usize) -> Duration {
        self.latency + Duration::from_secs_f64(len as f64 / self.bytes_per_sec)
    }
}

/// A rank's endpoint into the fabric.
pub struct RankHandle {
    rank: Rank,
    topology: Topology,
    senders: Vec<Sender<Msg>>,
    receivers: Vec<Receiver<Msg>>,
    /// Out-of-order messages parked until a matching tag is requested.
    pending: HashMap<(Rank, u64), Vec<Bytes>>,
    barrier: Arc<Barrier>,
    /// Optional wall-clock charge applied to cross-rank sends.
    wire: Option<WireModel>,
    /// This rank's traffic counters (no-ops while the recorder is off).
    counters: Arc<obs::RankCounters>,
    /// Installed fault plan; when present every payload is CRC-framed and
    /// every send consults the plan.
    faults: Option<Arc<FaultPlan>>,
    /// Per-destination message index, the replay key for fault decisions.
    send_seq: Vec<Cell<u64>>,
    /// Total sends this rank has completed (drives `kill_after`).
    sends_total: Cell<u64>,
    /// Set once a scheduled kill fires; all later traffic fails fast.
    dead: Cell<bool>,
    /// Default liveness deadline applied to plain `recv` calls.
    deadline: Cell<Option<Duration>>,
}

impl RankHandle {
    /// This handle's global rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The cluster topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// World size shortcut.
    pub fn world_size(&self) -> usize {
        self.topology.world_size()
    }

    /// True once a scheduled `kill_after` has fired on this rank: every
    /// later send or receive fails with `Disconnected { peer: self.rank }`.
    pub fn is_dead(&self) -> bool {
        self.dead.get()
    }

    /// The default liveness deadline applied to plain [`recv`](Self::recv)
    /// calls (installed by the fault plan, overridable per handle).
    pub fn recv_deadline(&self) -> Option<Duration> {
        self.deadline.get()
    }

    /// Overrides the default liveness deadline. `None` restores indefinite
    /// blocking.
    pub fn set_recv_deadline(&self, deadline: Option<Duration>) {
        self.deadline.set(deadline);
    }

    /// Fails fast when this rank has been killed by the fault plan.
    fn check_alive(&self) -> Result<(), FabricError> {
        if self.dead.get() {
            Err(FabricError::Disconnected { peer: self.rank })
        } else {
            Ok(())
        }
    }

    /// Delivers a wire payload to the caller: strips and validates the CRC
    /// frame when a fault plan is installed, and records receive counters.
    fn unpack(&self, from: Rank, tag: u64, payload: Bytes) -> Result<Bytes, FabricError> {
        if self.faults.is_none() {
            self.counters.add_recv(payload.len());
            return Ok(payload);
        }
        match faults::deframe(&payload) {
            Some(p) => {
                self.counters.add_recv(p.len());
                Ok(p)
            }
            None => {
                self.counters.add_corrupt_frame();
                Err(FabricError::Corrupt { peer: from, tag })
            }
        }
    }

    /// Sends `payload` to `to` under `tag`.
    ///
    /// Never blocks on the receiver (channels are unbounded); under a
    /// [`WireModel`] a cross-rank send does block the *sender* for the
    /// modeled transfer time.
    pub fn send(&self, to: Rank, tag: u64, payload: Bytes) -> Result<(), FabricError> {
        self.check_alive()?;
        let ws = self.world_size();
        if to >= ws {
            self.counters.add_invalid_rank();
            return Err(FabricError::InvalidRank {
                rank: to,
                world_size: ws,
            });
        }
        if let Some(plan) = &self.faults {
            if let Some(limit) = plan.kill_threshold(self.rank) {
                if self.sends_total.get() >= limit {
                    self.dead.set(true);
                    self.counters.add_fault_injected();
                    return Err(FabricError::Disconnected { peer: self.rank });
                }
            }
            self.sends_total.set(self.sends_total.get() + 1);
        }
        if let Some(wire) = self.wire {
            if to != self.rank {
                // The modeled transfer occupies the sending thread; record
                // it as a span so traces show wire time where it is spent.
                let _g = obs::enabled()
                    .then(|| obs::span_sized("send", format!("send->{to}"), payload.len() as f64));
                std::thread::sleep(wire.transfer_time(payload.len()));
            }
        }
        self.counters.add_send(payload.len());
        // Fault decisions apply uniformly to every link — self-sends
        // included — so the fault counters stay consistent across paths.
        let payload = match &self.faults {
            None => payload,
            Some(plan) => {
                let idx = self.send_seq[to].get();
                self.send_seq[to].set(idx + 1);
                match plan.decide(self.rank, to, idx) {
                    FaultDecision::Deliver => faults::frame(&payload),
                    FaultDecision::Drop => {
                        // The message silently vanishes; the receiver's
                        // deadline turns the loss into a Timeout.
                        self.counters.add_fault_injected();
                        return Ok(());
                    }
                    FaultDecision::Delay(d) => {
                        self.counters.add_fault_injected();
                        std::thread::sleep(d);
                        faults::frame(&payload)
                    }
                    FaultDecision::Corrupt => {
                        self.counters.add_fault_injected();
                        faults::frame_corrupted(&payload, idx)
                    }
                }
            }
        };
        self.senders[to]
            .send(Msg { tag, payload })
            .map_err(|_| FabricError::Disconnected { peer: to })
    }

    /// Receives the next message from `from` with the given `tag`, blocking.
    ///
    /// Messages from the same peer with other tags are parked and delivered
    /// to later `recv` calls, so receive order across tags is free while
    /// order *within* a `(peer, tag)` pair is preserved.
    pub fn recv(&mut self, from: Rank, tag: u64) -> Result<Bytes, FabricError> {
        // Under a fault plan (or an explicit handle deadline) every plain
        // receive is deadline-aware: a lost message or dead peer surfaces
        // as a typed Timeout instead of an indefinite hang.
        if let Some(deadline) = self.deadline.get() {
            return self.recv_timeout(from, tag, deadline);
        }
        self.check_alive()?;
        let ws = self.world_size();
        if from >= ws {
            self.counters.add_invalid_rank();
            return Err(FabricError::InvalidRank {
                rank: from,
                world_size: ws,
            });
        }
        if let Some(queue) = self.pending.get_mut(&(from, tag)) {
            if !queue.is_empty() {
                let payload = queue.remove(0);
                return self.unpack(from, tag, payload);
            }
        }
        let wait_start = obs::enabled().then(Instant::now);
        loop {
            let msg = self.receivers[from]
                .recv()
                .map_err(|_| FabricError::Disconnected { peer: from })?;
            if msg.tag == tag {
                if let Some(t0) = wait_start {
                    self.counters.add_recv_wait(t0.elapsed());
                }
                return self.unpack(from, tag, msg.payload);
            }
            self.pending
                .entry((from, msg.tag))
                .or_default()
                .push(msg.payload);
        }
    }

    /// Like [`recv`](Self::recv), but gives up after `timeout` with
    /// [`FabricError::Timeout`] if no matching message arrives.
    ///
    /// This is the liveness guard for the overlapped pipeline: a crashed
    /// peer is caught by `Disconnected`, but a peer that is alive yet never
    /// sends (deadlocked, wedged on a mismatched schedule) would hang a
    /// plain `recv` forever. Non-matching tags that arrive while waiting are
    /// parked exactly as in `recv`.
    pub fn recv_timeout(
        &mut self,
        from: Rank,
        tag: u64,
        timeout: Duration,
    ) -> Result<Bytes, FabricError> {
        self.check_alive()?;
        let ws = self.world_size();
        if from >= ws {
            self.counters.add_invalid_rank();
            return Err(FabricError::InvalidRank {
                rank: from,
                world_size: ws,
            });
        }
        if let Some(queue) = self.pending.get_mut(&(from, tag)) {
            if !queue.is_empty() {
                let payload = queue.remove(0);
                return self.unpack(from, tag, payload);
            }
        }
        let wait_start = obs::enabled().then(Instant::now);
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.counters.add_timeout();
                return Err(FabricError::Timeout {
                    peer: from,
                    tag,
                    waited: timeout,
                });
            }
            match self.receivers[from].recv_timeout(remaining) {
                Ok(msg) if msg.tag == tag => {
                    if let Some(t0) = wait_start {
                        self.counters.add_recv_wait(t0.elapsed());
                    }
                    return self.unpack(from, tag, msg.payload);
                }
                Ok(msg) => {
                    self.pending
                        .entry((from, msg.tag))
                        .or_default()
                        .push(msg.payload);
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.counters.add_timeout();
                    return Err(FabricError::Timeout {
                        peer: from,
                        tag,
                        waited: timeout,
                    });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(FabricError::Disconnected { peer: from });
                }
            }
        }
    }

    /// Blocks until every rank has reached the same barrier call.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Factory for fabric runs.
pub struct Fabric;

impl Fabric {
    /// Runs `f` once per rank on its own thread and collects the results in
    /// rank order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any rank's closure after all threads join.
    pub fn run<T, F>(topology: Topology, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(topology, None, None, f)
    }

    /// Like [`run`](Self::run), but installs a [`WireModel`] so cross-rank
    /// sends cost wall-clock time. Used by overlap benchmarks where an
    /// instantaneous fabric would make serial and overlapped execution
    /// indistinguishable.
    pub fn run_with_wire<T, F>(topology: Topology, wire: WireModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(topology, Some(wire), None, f)
    }

    /// Like [`run`](Self::run), but installs a seeded [`FaultPlan`]: every
    /// payload travels CRC-framed, sends consult the plan (drop / delay /
    /// corrupt / kill), and plain receives inherit the plan's liveness
    /// deadline. The same plan replays an identical fault sequence on every
    /// run (see [`crate::faults`]).
    pub fn run_with_faults<T, F>(topology: Topology, plan: FaultPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        Self::run_inner(topology, None, Some(Arc::new(plan)), f)
    }

    fn run_inner<T, F>(
        topology: Topology,
        wire: Option<WireModel>,
        plan: Option<Arc<FaultPlan>>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(RankHandle) -> T + Sync,
    {
        let p = topology.world_size();
        // channel[i][j]: endpoint pair carrying messages from i to j.
        let mut senders: Vec<Vec<Option<Sender<Msg>>>> = Vec::with_capacity(p);
        let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..p)
            .map(|_| (0..p).map(|_| None).collect::<Vec<_>>())
            .collect();
        for i in 0..p {
            let mut row = Vec::with_capacity(p);
            for j in 0..p {
                let (tx, rx) = unbounded();
                row.push(Some(tx));
                receivers[j][i] = Some(rx);
            }
            senders.push(row);
        }
        let barrier = Arc::new(Barrier::new(p));
        let mut handles: Vec<RankHandle> = Vec::with_capacity(p);
        for (rank, (sender_row, receiver_row)) in senders.into_iter().zip(receivers).enumerate() {
            handles.push(RankHandle {
                rank,
                topology,
                senders: sender_row.into_iter().map(|s| s.expect("filled")).collect(),
                receivers: receiver_row
                    .into_iter()
                    .map(|r| r.expect("filled"))
                    .collect(),
                pending: HashMap::new(),
                barrier: Arc::clone(&barrier),
                wire,
                counters: obs::counters_for_rank(rank),
                faults: plan.clone(),
                send_seq: (0..p).map(|_| Cell::new(0)).collect(),
                sends_total: Cell::new(0),
                dead: Cell::new(false),
                deadline: Cell::new(plan.as_ref().and_then(|pl| pl.recv_deadline())),
            });
        }

        let f = &f;
        std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    scope.spawn(move || {
                        if obs::enabled() {
                            // Attribute this thread's spans to its rank so
                            // exported traces group by process = rank.
                            obs::set_thread_rank(h.rank());
                            obs::set_thread_name(format!("rank{}", h.rank()));
                        }
                        f(h)
                    })
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates_rank_sum() {
        let topo = Topology::new(2, 2);
        let results = Fabric::run(topo, |mut h| {
            let p = h.world_size();
            let next = (h.rank() + 1) % p;
            let prev = (h.rank() + p - 1) % p;
            let mut acc = h.rank() as u64;
            let mut carry = acc;
            for _ in 0..p - 1 {
                h.send(next, 0, Bytes::copy_from_slice(&carry.to_le_bytes()))
                    .unwrap();
                let got = h.recv(prev, 0).unwrap();
                carry = u64::from_le_bytes(got.as_ref().try_into().unwrap());
                acc += carry;
            }
            acc
        });
        // Every rank ends with 0+1+2+3 = 6.
        assert_eq!(results, vec![6, 6, 6, 6]);
    }

    #[test]
    fn tags_demultiplex_out_of_order_sends() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                // Send tag 2 first, then tag 1.
                h.send(1, 2, Bytes::from_static(b"second")).unwrap();
                h.send(1, 1, Bytes::from_static(b"first")).unwrap();
                Vec::new()
            } else {
                // Receive in tag order 1 then 2 despite arrival order.
                let a = h.recv(0, 1).unwrap();
                let b = h.recv(0, 2).unwrap();
                vec![a, b]
            }
        });
        assert_eq!(results[1][0].as_ref(), b"first");
        assert_eq!(results[1][1].as_ref(), b"second");
    }

    #[test]
    fn per_tag_fifo_order_is_preserved() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                for i in 0u8..10 {
                    h.send(1, 7, Bytes::copy_from_slice(&[i])).unwrap();
                }
                Vec::new()
            } else {
                (0..10).map(|_| h.recv(0, 7).unwrap()[0]).collect()
            }
        });
        assert_eq!(results[1], (0u8..10).collect::<Vec<_>>());
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let topo = Topology::new(1, 4);
        let counter = AtomicUsize::new(0);
        Fabric::run(topo, |h| {
            counter.fetch_add(1, Ordering::SeqCst);
            h.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let topo = Topology::new(1, 2);
        Fabric::run(topo, |mut h| {
            assert!(matches!(
                h.send(5, 0, Bytes::new()),
                Err(FabricError::InvalidRank { .. })
            ));
            assert!(matches!(h.recv(9, 0), Err(FabricError::InvalidRank { .. })));
        });
    }

    #[test]
    fn recv_timeout_delivers_when_message_arrives() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                h.send(1, 4, Bytes::from_static(b"ok")).unwrap();
                Bytes::new()
            } else {
                h.recv_timeout(0, 4, Duration::from_secs(5)).unwrap()
            }
        });
        assert_eq!(results[1].as_ref(), b"ok");
    }

    #[test]
    fn recv_timeout_parks_mismatched_tags() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                h.send(1, 9, Bytes::from_static(b"later")).unwrap();
                h.send(1, 8, Bytes::from_static(b"now")).unwrap();
                Vec::new()
            } else {
                let a = h.recv_timeout(0, 8, Duration::from_secs(5)).unwrap();
                // Tag 9 was parked while waiting for tag 8.
                let b = h.recv_timeout(0, 9, Duration::from_secs(5)).unwrap();
                vec![a, b]
            }
        });
        assert_eq!(results[1][0].as_ref(), b"now");
        assert_eq!(results[1][1].as_ref(), b"later");
    }

    #[test]
    fn recv_timeout_expires_on_silent_peer() {
        let topo = Topology::new(1, 2);
        let results = Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                // Stay alive until rank 1 finishes, but never send.
                h.barrier();
                None
            } else {
                let err = h.recv_timeout(0, 1, Duration::from_millis(50)).unwrap_err();
                h.barrier();
                Some(err)
            }
        });
        assert!(matches!(
            results[1],
            Some(FabricError::Timeout {
                peer: 0,
                tag: 1,
                ..
            })
        ));
    }

    #[test]
    fn wire_model_charges_transfer_time() {
        let wire = WireModel {
            latency: Duration::from_millis(10),
            bytes_per_sec: 1000.0,
        };
        assert_eq!(wire.transfer_time(100), Duration::from_millis(110));

        let topo = Topology::new(1, 2);
        let start = Instant::now();
        Fabric::run_with_wire(topo, wire, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::copy_from_slice(&[0u8; 100])).unwrap();
            } else {
                h.recv(0, 0).unwrap();
            }
        });
        assert!(start.elapsed() >= Duration::from_millis(100));
    }

    #[test]
    fn wire_model_self_sends_are_free() {
        let wire = WireModel {
            latency: Duration::from_secs(60),
            bytes_per_sec: 1.0,
        };
        let topo = Topology::new(1, 1);
        let start = Instant::now();
        Fabric::run_with_wire(topo, wire, |mut h| {
            h.send(0, 0, Bytes::from_static(b"self")).unwrap();
            h.recv(0, 0).unwrap()
        });
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn counters_track_traffic_waits_and_timeouts() {
        // The recorder is process-global and other tests in this binary may
        // run concurrently while it is enabled, so assert monotone deltas
        // rather than exact totals.
        let before: u64 = obs::counters_for_rank(0).snapshot().bytes_sent
            + obs::counters_for_rank(1).snapshot().bytes_sent;
        obs::enable();
        let topo = Topology::new(1, 2);
        Fabric::run(topo, |mut h| {
            if h.rank() == 0 {
                std::thread::sleep(Duration::from_millis(5));
                h.send(1, 0, Bytes::copy_from_slice(&[0u8; 64])).unwrap();
                h.barrier();
            } else {
                // Blocks ~5 ms: recorded as queue wait.
                h.recv(0, 0).unwrap();
                // A silent peer: recorded as a timeout.
                let _ = h.recv_timeout(0, 9, Duration::from_millis(10));
                h.barrier();
            }
        });
        obs::disable();
        let r0 = obs::counters_for_rank(0).snapshot();
        let r1 = obs::counters_for_rank(1).snapshot();
        assert!(r0.bytes_sent + r1.bytes_sent >= before + 64);
        assert!(r1.bytes_recv >= 64);
        assert!(r1.recv_wait_ns >= 1_000_000, "no queue wait recorded");
        assert!(r1.timeouts >= 1);
    }

    #[test]
    fn fault_plan_framing_is_transparent_when_no_fault_fires() {
        let plan = FaultPlan::seeded(11); // all probabilities zero
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 5, Bytes::from_static(b"framed")).unwrap();
                Bytes::new()
            } else {
                h.recv(0, 5).unwrap()
            }
        });
        assert_eq!(results[1].as_ref(), b"framed");
    }

    #[test]
    fn dropped_message_surfaces_as_timeout_not_hang() {
        // drop_prob = 1: every message vanishes; the plan's deadline makes
        // the plain recv return Timeout.
        let plan = FaultPlan::seeded(12)
            .with_drop_prob(1.0)
            .with_recv_deadline(Duration::from_millis(50));
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 1, Bytes::from_static(b"gone")).unwrap();
                h.barrier();
                None
            } else {
                let err = h.recv(0, 1).unwrap_err();
                h.barrier();
                Some(err)
            }
        });
        assert!(matches!(
            results[1],
            Some(FabricError::Timeout {
                peer: 0,
                tag: 1,
                ..
            })
        ));
    }

    #[test]
    fn corrupted_message_surfaces_as_corrupt() {
        let plan = FaultPlan::seeded(13).with_corrupt_prob(1.0);
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 2, Bytes::from_static(b"tensor row")).unwrap();
                None
            } else {
                Some(h.recv(0, 2).unwrap_err())
            }
        });
        assert_eq!(results[1], Some(FabricError::Corrupt { peer: 0, tag: 2 }));
    }

    #[test]
    fn kill_after_fails_the_rank_and_its_peers_see_silence() {
        // Rank 0 dies after 2 sends; its own third send errors, and rank 1
        // times out waiting for the message that never left.
        let plan = FaultPlan::seeded(14)
            .kill_after(0, 2)
            .with_recv_deadline(Duration::from_millis(50));
        let topo = Topology::new(1, 2);
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::from_static(b"a")).unwrap();
                h.send(1, 1, Bytes::from_static(b"b")).unwrap();
                let own = h.send(1, 2, Bytes::from_static(b"c")).unwrap_err();
                assert!(h.is_dead());
                // Dead ranks cannot receive either.
                let recv_err = h.recv(1, 9).unwrap_err();
                h.barrier();
                vec![own, recv_err]
            } else {
                h.recv(0, 0).unwrap();
                h.recv(0, 1).unwrap();
                let err = h.recv(0, 2).unwrap_err();
                h.barrier();
                vec![err]
            }
        });
        assert_eq!(results[0][0], FabricError::Disconnected { peer: 0 });
        assert_eq!(results[0][1], FabricError::Disconnected { peer: 0 });
        assert!(matches!(
            results[1][0],
            FabricError::Timeout {
                peer: 0,
                tag: 2,
                ..
            }
        ));
    }

    #[test]
    fn delay_fault_stalls_the_sender_but_delivers() {
        let plan = FaultPlan::seeded(15).with_delay(1.0, Duration::from_millis(30));
        let topo = Topology::new(1, 2);
        let start = Instant::now();
        let results = Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                h.send(1, 0, Bytes::from_static(b"slow")).unwrap();
                Bytes::new()
            } else {
                h.recv(0, 0).unwrap()
            }
        });
        assert_eq!(results[1].as_ref(), b"slow");
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn fault_counters_record_injections_on_every_path() {
        obs::enable();
        let before_faults = obs::counters_for_rank(0).snapshot().faults_injected;
        let before_corrupt = obs::counters_for_rank(1).snapshot().corrupt_frames;
        let before_invalid = obs::counters_for_rank(0).snapshot().invalid_ranks;
        let plan = FaultPlan::seeded(16).with_corrupt_prob(1.0);
        let topo = Topology::new(1, 2);
        Fabric::run_with_faults(topo, plan, |mut h| {
            if h.rank() == 0 {
                // Self-sends roll fault decisions too: this one corrupts.
                h.send(0, 7, Bytes::from_static(b"self")).unwrap();
                let _ = h.recv(0, 7);
                // InvalidRank paths count consistently with peer sends.
                let _ = h.send(99, 0, Bytes::new());
                let _ = h.recv(99, 0);
                h.send(1, 8, Bytes::from_static(b"peer")).unwrap();
                h.barrier();
            } else {
                let _ = h.recv(0, 8);
                h.barrier();
            }
        });
        obs::disable();
        let r0 = obs::counters_for_rank(0).snapshot();
        let r1 = obs::counters_for_rank(1).snapshot();
        // Two corrupt injections (self + peer) on rank 0's send path.
        assert!(r0.faults_injected >= before_faults + 2);
        assert!(r1.corrupt_frames > before_corrupt);
        assert!(r0.invalid_ranks >= before_invalid + 2);
    }

    #[test]
    fn same_seed_replays_an_identical_fault_sequence() {
        let decisions = |seed: u64| -> Vec<FaultDecision> {
            let plan = FaultPlan::seeded(seed)
                .with_drop_prob(0.3)
                .with_corrupt_prob(0.2);
            (0..128).map(|i| plan.decide(1, 0, i)).collect()
        };
        assert_eq!(decisions(77), decisions(77));
        assert_ne!(decisions(77), decisions(78));
    }

    #[test]
    fn self_send_loops_back() {
        let topo = Topology::new(1, 1);
        let results = Fabric::run(topo, |mut h| {
            h.send(0, 3, Bytes::from_static(b"me")).unwrap();
            h.recv(0, 3).unwrap()
        });
        assert_eq!(results[0].as_ref(), b"me");
    }
}
