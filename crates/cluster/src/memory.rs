//! GPU memory accounting for out-of-memory prediction.
//!
//! The paper reports three OOM behaviours that the reproduction must
//! exhibit: sweep configurations excluded for exceeding 11 GB (§6.1),
//! Faster-MoE running out of memory on BERT-Large-MoE (Table 8), and
//! 1DH-A2A running out of memory at large message sizes (Fig. 9c). All
//! three are predicted by summing labelled memory components against the
//! device capacity.

use std::fmt;

/// An itemized GPU memory budget.
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    capacity: u64,
    components: Vec<(String, u64)>,
}

impl MemoryBudget {
    /// Creates a budget against `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        MemoryBudget {
            capacity,
            components: Vec::new(),
        }
    }

    /// Adds a named component of `bytes`.
    pub fn add(&mut self, label: impl Into<String>, bytes: u64) -> &mut Self {
        self.components.push((label.into(), bytes));
        self
    }

    /// Total bytes across all components.
    pub fn total(&self) -> u64 {
        self.components.iter().map(|c| c.1).sum()
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Whether the budget fits in device memory.
    pub fn fits(&self) -> bool {
        self.total() <= self.capacity
    }

    /// Bytes by which the budget exceeds capacity (0 when it fits).
    pub fn overshoot(&self) -> u64 {
        self.total().saturating_sub(self.capacity)
    }

    /// The labelled components, in insertion order.
    pub fn components(&self) -> &[(String, u64)] {
        &self.components
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "memory budget: {:.2} GiB used of {:.2} GiB{}",
            self.total() as f64 / (1 << 30) as f64,
            self.capacity as f64 / (1 << 30) as f64,
            if self.fits() { "" } else { "  ** OOM **" }
        )?;
        for (label, bytes) in &self.components {
            writeln!(
                f,
                "  {:>10.2} MiB  {label}",
                *bytes as f64 / (1 << 20) as f64
            )?;
        }
        Ok(())
    }
}

/// Bytes of a float tensor with `elems` elements at `bits` per element.
pub fn tensor_bytes(elems: u64, bits: u32) -> u64 {
    elems * bits as u64 / 8
}

/// Parameter + gradient + Adam-moment bytes for `params` f32 parameters.
///
/// Training state is 4× the raw parameter bytes (value, gradient, first and
/// second Adam moments), matching standard mixed-state accounting.
pub fn training_state_bytes(params: u64) -> u64 {
    params * 4 * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_budget_fits() {
        let b = MemoryBudget::new(1000);
        assert!(b.fits());
        assert_eq!(b.total(), 0);
        assert_eq!(b.overshoot(), 0);
    }

    #[test]
    fn components_accumulate() {
        let mut b = MemoryBudget::new(1000);
        b.add("weights", 600).add("activations", 300);
        assert_eq!(b.total(), 900);
        assert!(b.fits());
        b.add("buffers", 200);
        assert!(!b.fits());
        assert_eq!(b.overshoot(), 100);
    }

    #[test]
    fn display_flags_oom() {
        let mut b = MemoryBudget::new(1 << 30);
        b.add("huge", 2 << 30);
        let s = format!("{b}");
        assert!(s.contains("OOM"));
        assert!(s.contains("huge"));
    }

    #[test]
    fn helper_math() {
        assert_eq!(tensor_bytes(1000, 32), 4000);
        assert_eq!(tensor_bytes(1000, 16), 2000);
        assert_eq!(tensor_bytes(1000, 8), 1000);
        assert_eq!(training_state_bytes(1_000_000), 16_000_000);
    }
}
