//! Hardware cost-model profiles for simulated clusters.

use schemoe_netsim::cost::{ComputeModel, LinkModel};
use schemoe_netsim::SimTime;

/// The cost-model constants of one concrete cluster.
///
/// A profile captures *effective* (not peak) rates under the contention
/// pattern of an all-to-all: every GPU of a node is sending concurrently,
/// so per-GPU link rates already include the sharing penalty. The paper's
/// analytical model (§7, Eq. 16–17) makes the same simplification: an
/// intra-node send/recv pair costs `t1`, an inter-node pair costs `t2`,
/// and an algorithm's time is determined by how those pairs serialize or
/// overlap.
#[derive(Clone, Debug)]
pub struct HardwareProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Intra-node GPU↔GPU link while inter-node traffic is also in flight
    /// (PCIe shared with the NIC), per concurrently active pair.
    pub intra_link: LinkModel,
    /// Intra-node GPU↔GPU link during an intra-only phase (no NIC traffic
    /// competing for the PCIe root complex). Hierarchical algorithms that
    /// serialize their phases (1DH, 2DH) enjoy this faster rate.
    pub intra_link_exclusive: LinkModel,
    /// Inter-node per-GPU link (effective share of the node NIC).
    pub inter_link: LinkModel,
    /// Device-local copy performed by the self pair `SR(i, i)`.
    pub local_copy: LinkModel,
    /// Per-phase synchronization overhead of hierarchical algorithms
    /// (stream syncs, staging-kernel launches across the node).
    pub phase_sync: SimTime,
    /// Dense-GEMM compute model (expert fflayers, attention projections).
    pub gemm: ComputeModel,
    /// Compression kernel throughput in bytes/second of *input* data.
    pub compress_bps: f64,
    /// Decompression kernel throughput in bytes/second of *output* data.
    pub decompress_bps: f64,
    /// Usable GPU memory in bytes.
    pub gpu_mem_bytes: u64,
    /// Fixed per-layer, per-direction framework overhead (gating, layout
    /// kernels, Python/driver time) observed on the testbed.
    pub layer_overhead: SimTime,
}

impl HardwareProfile {
    /// The ScheMoE paper's testbed (Table 3): 8 nodes × 4 RTX 2080 Ti,
    /// PCIe 3.0 x16 intra-node, 100 Gb/s InfiniBand inter-node.
    ///
    /// Calibration targets (asserted by `calibration` tests in the bench
    /// crate within tolerance):
    ///
    /// * Table 1, row 1 — CT-MoE-12 A2A time ≈ 252.6 ms, step ≈ 497 ms.
    /// * Fig. 9(c) — Pipe-A2A ≈ 1.4× NCCL-A2A and ≈ 2× 2DH-A2A at ≥200 MB.
    /// * Table 10 — Naive ≈ 2.4 s on the B=8, f=1.2, L=2048, H=M=8192
    ///   layer; ZFP compression alone ≈ 1.9× faster.
    ///
    /// Per-message latency terms are large (60–100 µs) because they fold in
    /// protocol overhead *and* the bandwidth lost before a message saturates
    /// its link; in an α–β model a half-saturation size is algebraically
    /// identical to extra latency.
    ///
    /// Note the effective *per-pair* intra-node bandwidth (0.55 GB/s) is
    /// lower than the per-GPU share of the NIC (2.0 GB/s): four GPUs doing
    /// P2P through one PCIe root complex without NVLink contend badly,
    /// which is exactly why Pipe-A2A's intra/inter overlap pays off on this
    /// hardware (total intra time ≈ 0.4× total inter time, Eq. 18).
    pub fn paper_testbed() -> Self {
        HardwareProfile {
            name: "rtx2080ti-8x4-pcie3-ib100".to_string(),
            intra_link: LinkModel::new(60e-6, 0.55e9),
            intra_link_exclusive: LinkModel::new(100e-6, 1.8e9),
            inter_link: LinkModel::new(30e-6, 2.0e9),
            local_copy: LinkModel::new(5e-6, 300e9),
            phase_sync: SimTime::from_ms(1.0),
            gemm: ComputeModel::new(10e-6, 12.0e12),
            compress_bps: 45e9,
            decompress_bps: 50e9,
            gpu_mem_bytes: 11 * 1024 * 1024 * 1024,
            layer_overhead: SimTime::from_ms(9.0),
        }
    }

    /// A DGX-class what-if profile: NVLink intra-node (much faster than the
    /// NIC), used to exercise the paper's §7 discussion that Pipe-A2A's
    /// gain vanishes when `t_intra ≪ t_inter`.
    pub fn nvlink_dgx() -> Self {
        HardwareProfile {
            name: "a100-nvlink-ib200".to_string(),
            intra_link: LinkModel::new(8e-6, 200e9),
            intra_link_exclusive: LinkModel::new(8e-6, 250e9),
            inter_link: LinkModel::new(20e-6, 6e9),
            local_copy: LinkModel::new(3e-6, 1200e9),
            phase_sync: SimTime::from_us(80.0),
            gemm: ComputeModel::new(6e-6, 120e12),
            compress_bps: 200e9,
            decompress_bps: 220e9,
            gpu_mem_bytes: 80 * 1024 * 1024 * 1024,
            layer_overhead: SimTime::from_ms(3.0),
        }
    }

    /// A commodity-Ethernet what-if profile: slow inter-node links make
    /// communication dominate and compression pay off maximally.
    pub fn ethernet_cluster() -> Self {
        HardwareProfile {
            name: "rtx2080ti-eth25".to_string(),
            intra_link: LinkModel::new(60e-6, 0.55e9),
            intra_link_exclusive: LinkModel::new(100e-6, 1.8e9),
            inter_link: LinkModel::new(150e-6, 0.7e9),
            local_copy: LinkModel::new(5e-6, 300e9),
            phase_sync: SimTime::from_ms(1.0),
            gemm: ComputeModel::new(10e-6, 12.0e12),
            compress_bps: 45e9,
            decompress_bps: 50e9,
            gpu_mem_bytes: 11 * 1024 * 1024 * 1024,
            layer_overhead: SimTime::from_ms(9.0),
        }
    }

    /// Time for one intra-node send/recv pair of `bytes` (the paper's `t1`).
    pub fn intra_sr(&self, bytes: u64) -> SimTime {
        self.intra_link.time(bytes)
    }

    /// Time for an intra-node pair during an intra-only phase.
    pub fn intra_sr_exclusive(&self, bytes: u64) -> SimTime {
        self.intra_link_exclusive.time(bytes)
    }

    /// Time for one inter-node send/recv pair of `bytes` (the paper's `t2`).
    pub fn inter_sr(&self, bytes: u64) -> SimTime {
        self.inter_link.time(bytes)
    }

    /// Time for the in-place self copy `SR(i, i)`.
    pub fn self_copy(&self, bytes: u64) -> SimTime {
        self.local_copy.time(bytes)
    }

    /// Time to compress `bytes` of input.
    pub fn compress_time(&self, bytes: u64) -> SimTime {
        self.gemm.memory_bound_time(bytes, self.compress_bps)
    }

    /// Time to decompress back into `bytes` of output.
    pub fn decompress_time(&self, bytes: u64) -> SimTime {
        self.gemm.memory_bound_time(bytes, self.decompress_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_intra_is_slower_than_inter_per_pair() {
        // On PCIe3-without-NVLink testbeds, effective pairwise intra-node
        // bandwidth under contention is below the per-GPU NIC share; the
        // Pipe-A2A analysis depends on their *totals* being comparable.
        let hw = HardwareProfile::paper_testbed();
        let bytes = 50_000_000;
        assert!(hw.intra_sr(bytes) > hw.inter_sr(bytes));
    }

    #[test]
    fn nvlink_profile_reverses_the_relation() {
        let hw = HardwareProfile::nvlink_dgx();
        let bytes = 50_000_000;
        assert!(hw.intra_sr(bytes) < hw.inter_sr(bytes));
    }

    #[test]
    fn self_copy_is_cheapest() {
        let hw = HardwareProfile::paper_testbed();
        let bytes = 10_000_000;
        assert!(hw.self_copy(bytes) < hw.intra_sr(bytes));
        assert!(hw.self_copy(bytes) < hw.inter_sr(bytes));
    }

    #[test]
    fn compression_time_scales_linearly() {
        let hw = HardwareProfile::paper_testbed();
        let t1 = hw.compress_time(100_000_000).as_secs();
        let t2 = hw.compress_time(200_000_000).as_secs();
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn table1_anchor_a2a_time_is_close() {
        // CT-MoE-12 (Table 5): per-GPU A2A payload S = B·L·M·4 bytes with
        // B=136, L=31, M=512, k=1, f=1.0 → 8.63 MB; sequential (NCCL-style)
        // A2A time = 3·t1(S/32) + 28·t2(S/32); 4 A2A per layer per step
        // (2 forward + 2 backward), 12 layers ⇒ ≈ 252.6 ms (Table 1).
        let hw = HardwareProfile::paper_testbed();
        let s: u64 = 136 * 31 * 512 * 4;
        let per_peer = s / 32;
        let one_a2a =
            hw.intra_sr(per_peer) * 3.0 + hw.inter_sr(per_peer) * 28.0 + hw.self_copy(per_peer);
        let total_ms = one_a2a.as_ms() * 4.0 * 12.0;
        let paper = 252.6;
        assert!(
            (total_ms - paper).abs() / paper < 0.25,
            "model {total_ms:.1} ms vs paper {paper} ms"
        );
    }
}
